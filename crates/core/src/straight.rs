//! The "characteristic straight": the locus of `(XTI, EG)` couples a fit
//! cannot distinguish (Fig. 6).

use icvbe_numerics::stats::{linear_regression, LinearRegression};

use crate::ExtractionError;

/// A characteristic straight `EG(XTI)` sampled on an `XTI` grid.
///
/// # Examples
///
/// ```
/// use icvbe_core::straight::CharacteristicStraight;
///
/// let s = CharacteristicStraight::new(vec![(1.0, 1.10), (2.0, 1.12), (3.0, 1.14)])?;
/// assert!((s.slope() - 0.02).abs() < 1e-12);
/// assert!((s.eg_at(2.5) - 1.13).abs() < 1e-12);
/// # Ok::<(), icvbe_core::ExtractionError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CharacteristicStraight {
    points: Vec<(f64, f64)>,
    regression: LinearRegression,
}

impl CharacteristicStraight {
    /// Builds a straight from `(xti, eg)` samples.
    ///
    /// # Errors
    ///
    /// [`ExtractionError::BadData`] if fewer than two samples are given or
    /// the regression is degenerate.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, ExtractionError> {
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        let regression = linear_regression(&xs, &ys)?;
        Ok(CharacteristicStraight { points, regression })
    }

    /// The `(xti, eg)` samples.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Slope `dEG/dXTI` in eV per unit `XTI`.
    #[must_use]
    pub fn slope(&self) -> f64 {
        self.regression.slope
    }

    /// Intercept `EG(XTI = 0)` in eV.
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.regression.intercept
    }

    /// How straight the samples are (1 for a perfect line).
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        self.regression.r_squared
    }

    /// `EG` predicted at an arbitrary `XTI`.
    #[must_use]
    pub fn eg_at(&self, xti: f64) -> f64 {
        self.regression.predict(xti)
    }

    /// Vertical offset (in eV) between two straights, evaluated at `xti` —
    /// the Fig.-6 separation between the sensor-temperature line (C2) and
    /// the computed-temperature line (C3).
    #[must_use]
    pub fn offset_from(&self, other: &CharacteristicStraight, xti: f64) -> f64 {
        self.eg_at(xti) - other.eg_at(xti)
    }

    /// Intersection `(xti, eg)` with another straight, or `None` for
    /// (near-)parallel lines.
    #[must_use]
    pub fn intersection(&self, other: &CharacteristicStraight) -> Option<(f64, f64)> {
        let ds = self.slope() - other.slope();
        if ds.abs() < 1e-12 {
            return None;
        }
        let x = (other.intercept() - self.intercept()) / ds;
        Some((x, self.eg_at(x)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_statistics() {
        let s = CharacteristicStraight::new(
            (0..10).map(|i| (i as f64, 1.1 + 0.02 * i as f64)).collect(),
        )
        .unwrap();
        assert!((s.slope() - 0.02).abs() < 1e-12);
        assert!((s.intercept() - 1.1).abs() < 1e-12);
        assert!((s.r_squared() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn offset_between_parallel_lines() {
        let a = CharacteristicStraight::new(vec![(0.0, 1.10), (1.0, 1.12)]).unwrap();
        let b = CharacteristicStraight::new(vec![(0.0, 1.15), (1.0, 1.17)]).unwrap();
        assert!((b.offset_from(&a, 0.5) - 0.05).abs() < 1e-12);
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn intersection_of_crossing_lines() {
        let a = CharacteristicStraight::new(vec![(0.0, 0.0), (1.0, 1.0)]).unwrap();
        let b = CharacteristicStraight::new(vec![(0.0, 1.0), (1.0, 0.0)]).unwrap();
        let (x, y) = a.intersection(&b).unwrap();
        assert!((x - 0.5).abs() < 1e-12 && (y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_single_point() {
        assert!(CharacteristicStraight::new(vec![(1.0, 1.0)]).is_err());
    }
}
