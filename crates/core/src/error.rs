//! Error type for the extraction routines.

use std::error::Error;
use std::fmt;

use icvbe_numerics::NumericsError;

/// Error produced by extraction routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExtractionError {
    /// The measured data set is unusable (too few points, duplicate
    /// temperatures, non-finite values...).
    BadData {
        /// Human-readable description.
        detail: String,
    },
    /// The extraction equations are degenerate for this data (equal
    /// temperatures, zero dVBE...).
    Degenerate {
        /// Human-readable description.
        detail: String,
    },
    /// An underlying numerical kernel failed.
    Numerics(NumericsError),
}

impl ExtractionError {
    /// Convenience constructor for [`ExtractionError::BadData`].
    #[must_use]
    pub fn bad_data(detail: impl Into<String>) -> Self {
        ExtractionError::BadData {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`ExtractionError::Degenerate`].
    #[must_use]
    pub fn degenerate(detail: impl Into<String>) -> Self {
        ExtractionError::Degenerate {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ExtractionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractionError::BadData { detail } => write!(f, "bad measurement data: {detail}"),
            ExtractionError::Degenerate { detail } => {
                write!(f, "degenerate extraction problem: {detail}")
            }
            ExtractionError::Numerics(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl Error for ExtractionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExtractionError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<NumericsError> for ExtractionError {
    fn from(e: NumericsError) -> Self {
        ExtractionError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ExtractionError::bad_data("x")
            .to_string()
            .contains("bad measurement"));
        assert!(ExtractionError::degenerate("y")
            .to_string()
            .contains("degenerate"));
        let e: ExtractionError = NumericsError::invalid("z").into();
        assert!(e.to_string().contains("numerical"));
    }
}
