//! The classical eq.-13 best-fit extraction.
//!
//! At constant collector current the eq.-13 closed form rearranges to a
//! model *linear* in `(EG, XTI)`:
//!
//! ```text
//! y_i = VBE(T_i) - (T_i/T0) VBE(T0) - (k T_i / q) ln( IC(T_i)/IC(T0) )
//!     = EG * (1 - T_i/T0)  -  XTI * (k T_i / q) ln(T_i/T0)
//! ```
//!
//! so the extraction is a two-column linear least squares. Over the paper's
//! -50..125 °C range those two columns are ~99.9% correlated, which is why
//! noisy silicon data pins down only a *line* in `(XTI, EG)` space — the
//! characteristic straight — rather than a point.

use icvbe_numerics::lsq::{fit_least_squares_with, LsqBackend};
use icvbe_numerics::Matrix;
use icvbe_units::constants::BOLTZMANN_OVER_Q;
use icvbe_units::ElectronVolt;

use crate::data::VbeCurve;
use crate::straight::CharacteristicStraight;
use crate::{ExtractedPair, ExtractionError};

/// Builds the `(design, observations)` of the linearized eq.-13 problem
/// with the reference at `reference_index`. The reference row is excluded
/// (it is identically zero).
fn build_design(
    curve: &VbeCurve,
    reference_index: usize,
) -> Result<(Matrix, Vec<f64>), ExtractionError> {
    let pts = curve.points();
    if reference_index >= pts.len() {
        return Err(ExtractionError::bad_data(format!(
            "reference index {reference_index} out of range ({} points)",
            pts.len()
        )));
    }
    let r = pts[reference_index];
    let t0 = r.temperature.value();
    let mut rows = Vec::with_capacity(pts.len() - 1);
    let mut obs = Vec::with_capacity(pts.len() - 1);
    for (i, p) in pts.iter().enumerate() {
        if i == reference_index {
            continue;
        }
        let t = p.temperature.value();
        let ratio = t / t0;
        let vt = BOLTZMANN_OVER_Q * t;
        let ic_term = vt * (p.ic.value() / r.ic.value()).ln();
        obs.push(p.vbe.value() - ratio * r.vbe.value() - ic_term);
        rows.push(vec![1.0 - ratio, -vt * ratio.ln()]);
    }
    let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    Ok((Matrix::from_rows(&row_refs)?, obs))
}

/// Fits both `EG` and `XTI` by linear least squares (QR backend).
///
/// # Errors
///
/// - [`ExtractionError::BadData`] for an out-of-range reference index.
/// - Propagated numerical failures (rank deficiency for degenerate grids).
pub fn fit_eg_xti(
    curve: &VbeCurve,
    reference_index: usize,
) -> Result<ExtractedPair, ExtractionError> {
    fit_eg_xti_with(curve, reference_index, LsqBackend::Qr)
}

/// Fits both parameters with an explicit least-squares backend (the
/// normal-equations variant exists as a conditioning ablation).
///
/// # Errors
///
/// Same contract as [`fit_eg_xti`].
pub fn fit_eg_xti_with(
    curve: &VbeCurve,
    reference_index: usize,
    backend: LsqBackend,
) -> Result<ExtractedPair, ExtractionError> {
    let (design, obs) = build_design(curve, reference_index)?;
    let fit = fit_least_squares_with(&design, &obs, backend)?;
    Ok(ExtractedPair {
        eg: ElectronVolt::new(fit.coefficients()[0]),
        xti: fit.coefficients()[1],
        rms_residual_volts: fit.rms_residual(),
    })
}

/// Fits `EG` alone with `XTI` held fixed — one point of the characteristic
/// straight.
///
/// # Errors
///
/// Same contract as [`fit_eg_xti`].
pub fn fit_eg_for_xti(
    curve: &VbeCurve,
    reference_index: usize,
    xti: f64,
) -> Result<ExtractedPair, ExtractionError> {
    let (design, obs) = build_design(curve, reference_index)?;
    // Move the XTI column to the right-hand side and solve 1-column LSQ.
    let rows = design.rows();
    let mut col = Matrix::zeros(rows, 1);
    let mut rhs = vec![0.0; rows];
    for i in 0..rows {
        col[(i, 0)] = design[(i, 0)];
        rhs[i] = obs[i] - xti * design[(i, 1)];
    }
    let fit = fit_least_squares_with(&col, &rhs, LsqBackend::Qr)?;
    Ok(ExtractedPair {
        eg: ElectronVolt::new(fit.coefficients()[0]),
        xti,
        rms_residual_volts: fit.rms_residual(),
    })
}

/// Sweeps `XTI` over `xti_grid`, fitting `EG` at each value, over one or
/// several constant-current curves (the paper uses IC from 1e-8 to 1e-5 A).
/// The `EG` reported at each grid point is the mean over the curves.
///
/// # Errors
///
/// - [`ExtractionError::BadData`] for an empty grid or curve list.
/// - Propagates per-curve fit failures.
pub fn characteristic_straight(
    curves: &[VbeCurve],
    reference_index: usize,
    xti_grid: &[f64],
) -> Result<CharacteristicStraight, ExtractionError> {
    if curves.is_empty() {
        return Err(ExtractionError::bad_data("no curves supplied"));
    }
    if xti_grid.is_empty() {
        return Err(ExtractionError::bad_data("empty XTI grid"));
    }
    let mut points = Vec::with_capacity(xti_grid.len());
    for &xti in xti_grid {
        let mut sum = 0.0;
        for curve in curves {
            sum += fit_eg_for_xti(curve, reference_index, xti)?.eg.value();
        }
        points.push((xti, sum / curves.len() as f64));
    }
    CharacteristicStraight::new(points)
}

/// The correlation coefficient between the two design columns — the
/// quantitative version of "EG and XTI cannot be extracted separately".
///
/// # Errors
///
/// Propagates design-construction failures.
pub fn design_column_correlation(
    curve: &VbeCurve,
    reference_index: usize,
) -> Result<f64, ExtractionError> {
    let (design, _) = build_design(curve, reference_index)?;
    let n = design.rows();
    let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for i in 0..n {
        let a = design[(i, 0)];
        let b = design[(i, 1)];
        sa += a;
        sb += b;
        saa += a * a;
        sbb += b * b;
        sab += a * b;
    }
    let nf = n as f64;
    let cov = sab - sa * sb / nf;
    let va = saa - sa * sa / nf;
    let vb = sbb - sb * sb / nf;
    if va <= 0.0 || vb <= 0.0 {
        return Err(ExtractionError::degenerate(
            "zero-variance design column (all temperatures equal?)",
        ));
    }
    Ok(cov / (va * vb).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use icvbe_devphys::saturation::SpiceIsLaw;
    use icvbe_devphys::vbe::vbe_for_current;
    use icvbe_units::{Ampere, Kelvin};

    const EG_TRUE: f64 = 1.1324;
    const XTI_TRUE: f64 = 2.58;

    fn law() -> SpiceIsLaw {
        SpiceIsLaw::new(
            Ampere::new(2e-17),
            Kelvin::new(298.15),
            ElectronVolt::new(EG_TRUE),
            XTI_TRUE,
        )
    }

    fn synthetic_curve(ic: f64) -> VbeCurve {
        let law = law();
        let ic = Ampere::new(ic);
        let points: Vec<_> = (0..8)
            .map(|i| {
                let t = Kelvin::new(223.15 + 25.0 * i as f64);
                (t, vbe_for_current(&law, ic, t), ic)
            })
            .collect();
        VbeCurve::from_points(points).unwrap()
    }

    #[test]
    fn recovers_exact_parameters_from_clean_data() {
        let curve = synthetic_curve(1e-6);
        let fit = fit_eg_xti(&curve, 3).unwrap();
        assert!((fit.eg.value() - EG_TRUE).abs() < 1e-9, "EG = {}", fit.eg);
        assert!((fit.xti - XTI_TRUE).abs() < 1e-6, "XTI = {}", fit.xti);
        assert!(fit.rms_residual_volts < 1e-12);
    }

    #[test]
    fn both_backends_agree_on_clean_data() {
        let curve = synthetic_curve(1e-7);
        let qr = fit_eg_xti_with(&curve, 3, LsqBackend::Qr).unwrap();
        let ne = fit_eg_xti_with(&curve, 3, LsqBackend::NormalEquations).unwrap();
        assert!((qr.eg.value() - ne.eg.value()).abs() < 1e-7);
        assert!((qr.xti - ne.xti).abs() < 1e-3);
    }

    #[test]
    fn fixed_xti_at_truth_recovers_eg() {
        let curve = synthetic_curve(1e-6);
        let fit = fit_eg_for_xti(&curve, 3, XTI_TRUE).unwrap();
        assert!((fit.eg.value() - EG_TRUE).abs() < 1e-10);
    }

    #[test]
    fn characteristic_straight_passes_through_truth() {
        let curves: Vec<VbeCurve> = [1e-8, 1e-7, 1e-6, 1e-5].map(synthetic_curve).to_vec();
        let grid: Vec<f64> = (0..13).map(|i| 0.5 + 0.5 * i as f64).collect();
        let straight = characteristic_straight(&curves, 3, &grid).unwrap();
        // The straight must pass (to high accuracy) through (XTI*, EG*).
        let eg_at_truth = straight.eg_at(XTI_TRUE);
        assert!(
            (eg_at_truth - EG_TRUE).abs() < 1e-6,
            "straight misses truth: {eg_at_truth}"
        );
        // Negative slope: a larger assumed XTI is compensated by a smaller
        // EG (both eq.-13 columns pull VBE(T) the same way, so the fit
        // trades one for the other; ~-27 meV per unit XTI on this grid).
        assert!(straight.slope() < -0.01 && straight.slope() > -0.05);
        assert!(straight.r_squared() > 0.999, "straight is really a line");
    }

    #[test]
    fn design_columns_are_heavily_correlated() {
        let curve = synthetic_curve(1e-6);
        let rho = design_column_correlation(&curve, 3).unwrap().abs();
        assert!(
            rho > 0.99,
            "correlation {rho} — the paper's core difficulty"
        );
    }

    #[test]
    fn vbe_measurement_error_biases_eg() {
        // A 1% VBE scale error must shift extracted EG by percents — the
        // "8% on EG" claim of section 3 (order of magnitude check here;
        // the exact number is workload dependent).
        let curve = synthetic_curve(1e-6);
        let perturbed = curve.with_vbe_scale_error(0.01);
        let fit = fit_eg_xti(&perturbed, 3).unwrap();
        let rel = (fit.eg.value() - EG_TRUE).abs() / EG_TRUE;
        assert!(rel > 0.002, "EG moved only {rel}");
    }

    #[test]
    fn out_of_range_reference_is_rejected() {
        let curve = synthetic_curve(1e-6);
        assert!(fit_eg_xti(&curve, 99).is_err());
    }

    #[test]
    fn empty_grid_is_rejected() {
        let curve = synthetic_curve(1e-6);
        assert!(characteristic_straight(&[curve], 3, &[]).is_err());
        assert!(characteristic_straight(&[], 3, &[1.0]).is_err());
    }
}
