//! Measurement data types: `VBE(T)` characteristics and `IC(VBE)` families.

use icvbe_units::{Ampere, Kelvin, Volt};

use crate::ExtractionError;

/// One `VBE` measurement: temperature, base-emitter voltage, and the
/// collector current the device actually carried (the paper's eqs. 17-20
/// correct for bias drift using exactly this record).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VbePoint {
    /// Temperature of the measurement.
    pub temperature: Kelvin,
    /// Measured base-emitter voltage.
    pub vbe: Volt,
    /// Collector current at this point.
    pub ic: Ampere,
}

/// A `VBE(T)` characteristic at nominally constant collector current.
///
/// Invariants (enforced at construction): at least three points, strictly
/// increasing temperatures, all values finite, all currents positive.
#[derive(Debug, Clone, PartialEq)]
pub struct VbeCurve {
    points: Vec<VbePoint>,
}

impl VbeCurve {
    /// Builds a curve from `(temperature, vbe, ic)` tuples.
    ///
    /// # Errors
    ///
    /// [`ExtractionError::BadData`] if fewer than three points are given,
    /// temperatures are not strictly increasing, or any value is
    /// non-finite/unphysical.
    pub fn from_points(
        points: impl IntoIterator<Item = (Kelvin, Volt, Ampere)>,
    ) -> Result<Self, ExtractionError> {
        let points: Vec<VbePoint> = points
            .into_iter()
            .map(|(temperature, vbe, ic)| VbePoint {
                temperature,
                vbe,
                ic,
            })
            .collect();
        if points.len() < 3 {
            return Err(ExtractionError::bad_data(format!(
                "need at least 3 VBE(T) points, got {}",
                points.len()
            )));
        }
        for p in &points {
            if !p.temperature.value().is_finite()
                || p.temperature.value() <= 0.0
                || !p.vbe.value().is_finite()
                || !p.ic.value().is_finite()
                || p.ic.value() <= 0.0
            {
                return Err(ExtractionError::bad_data(format!(
                    "unphysical point at {}: vbe {}, ic {}",
                    p.temperature, p.vbe, p.ic
                )));
            }
        }
        if points
            .windows(2)
            .any(|w| w[0].temperature.value() >= w[1].temperature.value())
        {
            return Err(ExtractionError::bad_data(
                "temperatures must be strictly increasing",
            ));
        }
        Ok(VbeCurve { points })
    }

    /// The measurement points in temperature order.
    #[must_use]
    pub fn points(&self) -> &[VbePoint] {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve is empty (never true for a validated curve).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Index of the point closest to `temperature` — used to pick the
    /// reference point T0 for the eq.-13 fit.
    #[must_use]
    pub fn closest_index(&self, temperature: Kelvin) -> usize {
        let mut best = 0;
        let mut dist = f64::INFINITY;
        for (i, p) in self.points.iter().enumerate() {
            let d = (p.temperature.value() - temperature.value()).abs();
            if d < dist {
                dist = d;
                best = i;
            }
        }
        best
    }

    /// Returns a copy with every `VBE` multiplied by `1 + relative_error` —
    /// the perturbation used by the paper's "1% on VBE(T)" sensitivity
    /// claim.
    #[must_use]
    pub fn with_vbe_scale_error(&self, relative_error: f64) -> VbeCurve {
        let points = self
            .points
            .iter()
            .map(|p| VbePoint {
                temperature: p.temperature,
                vbe: Volt::new(p.vbe.value() * (1.0 + relative_error)),
                ic: p.ic,
            })
            .collect();
        VbeCurve { points }
    }

    /// Returns a copy with every temperature shifted by `delta` kelvin
    /// (sensor calibration error).
    #[must_use]
    pub fn with_temperature_offset(&self, delta: f64) -> VbeCurve {
        let points = self
            .points
            .iter()
            .map(|p| VbePoint {
                temperature: Kelvin::new(p.temperature.value() + delta),
                vbe: p.vbe,
                ic: p.ic,
            })
            .collect();
        VbeCurve { points }
    }
}

/// One constant-temperature `IC(VBE)` sweep (a member of the Fig.-5
/// family).
#[derive(Debug, Clone, PartialEq)]
pub struct IcVbeSweep {
    /// Temperature of the sweep.
    pub temperature: Kelvin,
    /// Swept base-emitter voltages, strictly increasing.
    pub vbe: Vec<Volt>,
    /// Measured collector currents, parallel to `vbe`.
    pub ic: Vec<Ampere>,
}

impl IcVbeSweep {
    /// Builds a sweep, validating lengths and ordering.
    ///
    /// # Errors
    ///
    /// [`ExtractionError::BadData`] for mismatched lengths, fewer than two
    /// points, or non-increasing `VBE`.
    pub fn new(
        temperature: Kelvin,
        vbe: Vec<Volt>,
        ic: Vec<Ampere>,
    ) -> Result<Self, ExtractionError> {
        if vbe.len() != ic.len() {
            return Err(ExtractionError::bad_data(format!(
                "VBE/IC length mismatch: {} vs {}",
                vbe.len(),
                ic.len()
            )));
        }
        if vbe.len() < 2 {
            return Err(ExtractionError::bad_data("sweep needs at least two points"));
        }
        if vbe.windows(2).any(|w| w[0].value() >= w[1].value()) {
            return Err(ExtractionError::bad_data("VBE must be strictly increasing"));
        }
        Ok(IcVbeSweep {
            temperature,
            vbe,
            ic,
        })
    }

    /// Interpolates (in `ln IC`) the `VBE` at which the sweep crosses the
    /// target current — how a constant-current `VBE(T)` characteristic is
    /// read out of a swept family.
    ///
    /// # Errors
    ///
    /// [`ExtractionError::Degenerate`] if `target` is outside the swept
    /// current range.
    pub fn vbe_at_current(&self, target: Ampere) -> Result<Volt, ExtractionError> {
        let t = target.value();
        if t <= 0.0 {
            return Err(ExtractionError::degenerate(
                "target current must be positive",
            ));
        }
        let ln_t = t.ln();
        for w in 0..self.ic.len() - 1 {
            let (i0, i1) = (self.ic[w].value(), self.ic[w + 1].value());
            if i0 <= 0.0 || i1 <= 0.0 {
                continue;
            }
            let (l0, l1) = (i0.ln(), i1.ln());
            if (l0 <= ln_t && ln_t <= l1) || (l1 <= ln_t && ln_t <= l0) {
                let f = if l1 == l0 {
                    0.0
                } else {
                    (ln_t - l0) / (l1 - l0)
                };
                let v = self.vbe[w].value() + f * (self.vbe[w + 1].value() - self.vbe[w].value());
                return Ok(Volt::new(v));
            }
        }
        Err(ExtractionError::degenerate(format!(
            "current {target} not covered by the sweep"
        )))
    }
}

/// A family of `IC(VBE)` sweeps across temperature (the full Fig. 5).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IcVbeFamily {
    sweeps: Vec<IcVbeSweep>,
}

impl IcVbeFamily {
    /// Builds a family from sweeps sorted by temperature.
    ///
    /// # Errors
    ///
    /// [`ExtractionError::BadData`] if fewer than two sweeps are given or
    /// they are not in strictly increasing temperature order.
    pub fn new(sweeps: Vec<IcVbeSweep>) -> Result<Self, ExtractionError> {
        if sweeps.len() < 2 {
            return Err(ExtractionError::bad_data(
                "family needs at least two sweeps",
            ));
        }
        if sweeps
            .windows(2)
            .any(|w| w[0].temperature.value() >= w[1].temperature.value())
        {
            return Err(ExtractionError::bad_data(
                "sweeps must be in strictly increasing temperature order",
            ));
        }
        Ok(IcVbeFamily { sweeps })
    }

    /// The member sweeps.
    #[must_use]
    pub fn sweeps(&self) -> &[IcVbeSweep] {
        &self.sweeps
    }

    /// Extracts the constant-current `VBE(T)` characteristic at `ic` from
    /// the family — the paper's route from Fig. 5 to the eq.-13 fit.
    ///
    /// # Errors
    ///
    /// Propagates interpolation failures and curve validation.
    pub fn vbe_curve_at(&self, ic: Ampere) -> Result<VbeCurve, ExtractionError> {
        let mut points = Vec::with_capacity(self.sweeps.len());
        for s in &self.sweeps {
            points.push((s.temperature, s.vbe_at_current(ic)?, ic));
        }
        VbeCurve::from_points(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_curve() -> VbeCurve {
        VbeCurve::from_points([
            (Kelvin::new(250.0), Volt::new(0.70), Ampere::new(1e-6)),
            (Kelvin::new(300.0), Volt::new(0.60), Ampere::new(1e-6)),
            (Kelvin::new(350.0), Volt::new(0.50), Ampere::new(1e-6)),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_too_few_points() {
        let r = VbeCurve::from_points([
            (Kelvin::new(250.0), Volt::new(0.7), Ampere::new(1e-6)),
            (Kelvin::new(300.0), Volt::new(0.6), Ampere::new(1e-6)),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_unsorted_temperatures() {
        let r = VbeCurve::from_points([
            (Kelvin::new(300.0), Volt::new(0.6), Ampere::new(1e-6)),
            (Kelvin::new(250.0), Volt::new(0.7), Ampere::new(1e-6)),
            (Kelvin::new(350.0), Volt::new(0.5), Ampere::new(1e-6)),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_nonpositive_current() {
        let r = VbeCurve::from_points([
            (Kelvin::new(250.0), Volt::new(0.7), Ampere::new(0.0)),
            (Kelvin::new(300.0), Volt::new(0.6), Ampere::new(1e-6)),
            (Kelvin::new(350.0), Volt::new(0.5), Ampere::new(1e-6)),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn closest_index_picks_reference() {
        let c = simple_curve();
        assert_eq!(c.closest_index(Kelvin::new(298.15)), 1);
        assert_eq!(c.closest_index(Kelvin::new(0.0)), 0);
        assert_eq!(c.closest_index(Kelvin::new(1000.0)), 2);
    }

    #[test]
    fn perturbations_apply() {
        let c = simple_curve();
        let scaled = c.with_vbe_scale_error(0.01);
        assert!((scaled.points()[0].vbe.value() - 0.707).abs() < 1e-12);
        let shifted = c.with_temperature_offset(-2.0);
        assert!((shifted.points()[0].temperature.value() - 248.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_interpolates_vbe_at_current() {
        let s = IcVbeSweep::new(
            Kelvin::new(300.0),
            vec![Volt::new(0.5), Volt::new(0.6), Volt::new(0.7)],
            vec![Ampere::new(1e-8), Ampere::new(1e-6), Ampere::new(1e-4)],
        )
        .unwrap();
        // Halfway in log current between 1e-8 and 1e-6 is 1e-7 -> VBE 0.55.
        let v = s.vbe_at_current(Ampere::new(1e-7)).unwrap();
        assert!((v.value() - 0.55).abs() < 1e-12);
        assert!(s.vbe_at_current(Ampere::new(1.0)).is_err());
    }

    #[test]
    fn family_builds_constant_current_curve() {
        let mk = |t: f64, shift: f64| {
            IcVbeSweep::new(
                Kelvin::new(t),
                vec![
                    Volt::new(0.5 - shift),
                    Volt::new(0.6 - shift),
                    Volt::new(0.7 - shift),
                ],
                vec![Ampere::new(1e-8), Ampere::new(1e-6), Ampere::new(1e-4)],
            )
            .unwrap()
        };
        let fam = IcVbeFamily::new(vec![mk(250.0, 0.0), mk(300.0, 0.1), mk(350.0, 0.2)]).unwrap();
        let curve = fam.vbe_curve_at(Ampere::new(1e-6)).unwrap();
        assert_eq!(curve.len(), 3);
        assert!((curve.points()[0].vbe.value() - 0.6).abs() < 1e-12);
        assert!((curve.points()[2].vbe.value() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn family_rejects_single_sweep() {
        let s = IcVbeSweep::new(
            Kelvin::new(300.0),
            vec![Volt::new(0.5), Volt::new(0.6)],
            vec![Ampere::new(1e-8), Ampere::new(1e-6)],
        )
        .unwrap();
        assert!(IcVbeFamily::new(vec![s]).is_err());
    }
}
