//! Nonlinear extraction variants (ablations of the eq.-13 linear fit).
//!
//! The linear best fit trusts the measured `VBE(T0)` completely: a noisy
//! reference reading propagates into every residual. This module frees
//! `VBE(T0)` as a third parameter and fits `(EG, XTI, VBE(T0))` with
//! Levenberg-Marquardt, which desensitizes the extraction to reference
//! noise at the cost of one more degree of correlation.

use icvbe_numerics::lm::{fit_levenberg_marquardt, LmOptions, ResidualModel};
use icvbe_numerics::{Matrix, NumericsError};
use icvbe_units::constants::BOLTZMANN_OVER_Q;
use icvbe_units::ElectronVolt;

use crate::bestfit::fit_eg_xti;
use crate::data::VbeCurve;
use crate::{ExtractedPair, ExtractionError};

/// Result of a three-parameter nonlinear extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonlinearFit {
    /// The extracted pair.
    pub pair: ExtractedPair,
    /// The fitted reference voltage `VBE(T0)` in volts.
    pub vbe_ref: f64,
    /// Levenberg-Marquardt iterations spent.
    pub iterations: usize,
}

struct Eq13Residuals<'a> {
    curve: &'a VbeCurve,
    t_ref: f64,
    ic_ref: f64,
}

impl ResidualModel for Eq13Residuals<'_> {
    fn residual_count(&self) -> usize {
        self.curve.len()
    }

    fn parameter_count(&self) -> usize {
        3 // EG, XTI, VBE(T0)
    }

    fn residuals(&self, p: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
        let (eg, xti, vbe_ref) = (p[0], p[1], p[2]);
        for (i, pt) in self.curve.points().iter().enumerate() {
            let t = pt.temperature.value();
            let ratio = t / self.t_ref;
            let vt = BOLTZMANN_OVER_Q * t;
            let predicted = ratio * vbe_ref + eg * (1.0 - ratio) - xti * vt * ratio.ln()
                + vt * (pt.ic.value() / self.ic_ref).ln();
            out[i] = predicted - pt.vbe.value();
        }
        Ok(())
    }

    /// Eq. 13 is linear in all three parameters, so the Jacobian is exact
    /// and costs one pass instead of the three residual sweeps a
    /// forward-difference column-by-column evaluation would take:
    /// `dr/dEG = 1 - T/T0`, `dr/dXTI = -VT ln(T/T0)`, `dr/dVBE(T0) = T/T0`.
    fn jacobian(&self, _p: &[f64], out: &mut Matrix) -> Result<bool, NumericsError> {
        for (i, pt) in self.curve.points().iter().enumerate() {
            let t = pt.temperature.value();
            let ratio = t / self.t_ref;
            let vt = BOLTZMANN_OVER_Q * t;
            out[(i, 0)] = 1.0 - ratio;
            out[(i, 1)] = -vt * ratio.ln();
            out[(i, 2)] = ratio;
        }
        Ok(true)
    }
}

/// Eq.-13 residuals over caller-owned point slices `(T, VBE, IC)`.
///
/// Same model and exact analytic Jacobian as the curve-based fit above,
/// but usable for *pooled* samples — e.g. several measurement attempts of
/// the same die merged into one robust fit — without building a
/// [`VbeCurve`], whose validation (monotone temperatures, finite
/// readings) corrupted pools cannot satisfy. The model is deliberately
/// total over garbage: a non-finite or non-positive temperature/current
/// sample yields a NaN residual rather than an error, which a robust
/// IRLS driver ([`icvbe_numerics::robust`]) zero-weights away.
#[derive(Debug)]
pub struct Eq13PointModel<'a> {
    temperatures_k: &'a [f64],
    vbe_v: &'a [f64],
    ic_a: &'a [f64],
    t_ref: f64,
    ic_ref: f64,
}

impl<'a> Eq13PointModel<'a> {
    /// A model over parallel slices of temperatures (K), `VBE` readings
    /// (V) and collector currents (A), referenced to `(t_ref, ic_ref)`.
    ///
    /// # Errors
    ///
    /// [`ExtractionError::BadData`] if the slices' lengths differ or the
    /// reference temperature/current is not finite and positive. Sample
    /// values are *not* validated — see the type-level docs.
    pub fn new(
        temperatures_k: &'a [f64],
        vbe_v: &'a [f64],
        ic_a: &'a [f64],
        t_ref: f64,
        ic_ref: f64,
    ) -> Result<Self, ExtractionError> {
        if temperatures_k.len() != vbe_v.len() || temperatures_k.len() != ic_a.len() {
            return Err(ExtractionError::bad_data(format!(
                "point slices disagree: {} temperatures, {} vbe, {} ic",
                temperatures_k.len(),
                vbe_v.len(),
                ic_a.len()
            )));
        }
        if !(t_ref > 0.0) || !t_ref.is_finite() {
            return Err(ExtractionError::bad_data(format!(
                "reference temperature must be finite and positive, got {t_ref}"
            )));
        }
        if !(ic_ref > 0.0) || !ic_ref.is_finite() {
            return Err(ExtractionError::bad_data(format!(
                "reference current must be finite and positive, got {ic_ref}"
            )));
        }
        Ok(Eq13PointModel {
            temperatures_k,
            vbe_v,
            ic_a,
            t_ref,
            ic_ref,
        })
    }
}

impl ResidualModel for Eq13PointModel<'_> {
    fn residual_count(&self) -> usize {
        self.temperatures_k.len()
    }

    fn parameter_count(&self) -> usize {
        3 // EG, XTI, VBE(T0)
    }

    fn residuals(&self, p: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
        let (eg, xti, vbe_ref) = (p[0], p[1], p[2]);
        for i in 0..self.temperatures_k.len() {
            let t = self.temperatures_k[i];
            let ratio = t / self.t_ref;
            let vt = BOLTZMANN_OVER_Q * t;
            let predicted = ratio * vbe_ref + eg * (1.0 - ratio) - xti * vt * ratio.ln()
                + vt * (self.ic_a[i] / self.ic_ref).ln();
            out[i] = predicted - self.vbe_v[i];
        }
        Ok(())
    }

    fn jacobian(&self, _p: &[f64], out: &mut Matrix) -> Result<bool, NumericsError> {
        for (i, &t) in self.temperatures_k.iter().enumerate() {
            let ratio = t / self.t_ref;
            let vt = BOLTZMANN_OVER_Q * t;
            out[(i, 0)] = 1.0 - ratio;
            out[(i, 1)] = -vt * ratio.ln();
            out[(i, 2)] = ratio;
        }
        Ok(true)
    }
}

/// Fits `(EG, XTI, VBE(T0))` by Levenberg-Marquardt, seeded from the
/// linear fit.
///
/// # Errors
///
/// - Propagates linear-fit failures (used for the seed).
/// - Propagates Levenberg-Marquardt failures.
pub fn fit_eg_xti_vberef(
    curve: &VbeCurve,
    reference_index: usize,
) -> Result<NonlinearFit, ExtractionError> {
    let pts = curve.points();
    if reference_index >= pts.len() {
        return Err(ExtractionError::bad_data(format!(
            "reference index {reference_index} out of range ({} points)",
            pts.len()
        )));
    }
    let seed = fit_eg_xti(curve, reference_index)?;
    let reference = pts[reference_index];
    let model = Eq13Residuals {
        curve,
        t_ref: reference.temperature.value(),
        ic_ref: reference.ic.value(),
    };
    let p0 = [seed.eg.value(), seed.xti, reference.vbe.value()];
    let fit = fit_levenberg_marquardt(&model, &p0, LmOptions::default())?;
    let rms = (2.0 * fit.cost / curve.len() as f64).sqrt();
    Ok(NonlinearFit {
        pair: ExtractedPair {
            eg: ElectronVolt::new(fit.parameters[0]),
            xti: fit.parameters[1],
            rms_residual_volts: rms,
        },
        vbe_ref: fit.parameters[2],
        iterations: fit.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icvbe_devphys::saturation::SpiceIsLaw;
    use icvbe_devphys::vbe::vbe_for_current;
    use icvbe_units::{Ampere, Kelvin, Volt};

    const EG_TRUE: f64 = 1.1324;
    const XTI_TRUE: f64 = 2.58;

    fn curve() -> VbeCurve {
        let law = SpiceIsLaw::new(
            Ampere::new(2e-17),
            Kelvin::new(298.15),
            ElectronVolt::new(EG_TRUE),
            XTI_TRUE,
        );
        let ic = Ampere::new(1e-6);
        VbeCurve::from_points((0..8).map(|i| {
            let t = Kelvin::new(223.15 + 25.0 * i as f64);
            (t, vbe_for_current(&law, ic, t), ic)
        }))
        .unwrap()
    }

    #[test]
    fn clean_data_reproduces_the_linear_fit() {
        let c = curve();
        let lin = fit_eg_xti(&c, 3).unwrap();
        let non = fit_eg_xti_vberef(&c, 3).unwrap();
        assert!((non.pair.eg.value() - lin.eg.value()).abs() < 1e-6);
        assert!((non.pair.xti - lin.xti).abs() < 1e-3);
        assert!((non.vbe_ref - c.points()[3].vbe.value()).abs() < 1e-9);
        assert!(non.pair.rms_residual_volts < 1e-9);
    }

    #[test]
    fn corrupted_reference_point_hurts_linear_fit_more() {
        // Bump ONLY the reference reading by 1 mV: the linear fit inherits
        // the error through every residual, the nonlinear fit re-estimates
        // VBE(T0) and shrugs it off.
        let c = curve();
        let mut pts: Vec<_> = c
            .points()
            .iter()
            .map(|p| (p.temperature, p.vbe, p.ic))
            .collect();
        pts[3].1 = Volt::new(pts[3].1.value() + 1e-3);
        let corrupted = VbeCurve::from_points(pts).unwrap();

        let lin_err = (fit_eg_xti(&corrupted, 3).unwrap().eg.value() - EG_TRUE).abs();
        let non_err = (fit_eg_xti_vberef(&corrupted, 3).unwrap().pair.eg.value() - EG_TRUE).abs();
        assert!(
            non_err < lin_err / 3.0,
            "nonlinear {non_err} vs linear {lin_err}"
        );
    }

    #[test]
    fn recovered_reference_voltage_rejects_the_corruption() {
        let c = curve();
        let truth_vbe = c.points()[3].vbe.value();
        let mut pts: Vec<_> = c
            .points()
            .iter()
            .map(|p| (p.temperature, p.vbe, p.ic))
            .collect();
        pts[3].1 = Volt::new(pts[3].1.value() + 1e-3);
        let corrupted = VbeCurve::from_points(pts).unwrap();
        let non = fit_eg_xti_vberef(&corrupted, 3).unwrap();
        // The fitted VBE(T0) lands near the TRUE value, not the corrupted
        // reading.
        assert!(
            (non.vbe_ref - truth_vbe).abs() < 0.4e-3,
            "vbe_ref {} vs truth {truth_vbe}",
            non.vbe_ref
        );
    }

    #[test]
    fn out_of_range_reference_rejected() {
        assert!(fit_eg_xti_vberef(&curve(), 42).is_err());
    }

    #[test]
    fn point_model_matches_the_curve_model() {
        let c = curve();
        let reference = c.points()[3];
        let ts: Vec<f64> = c.points().iter().map(|p| p.temperature.value()).collect();
        let vs: Vec<f64> = c.points().iter().map(|p| p.vbe.value()).collect();
        let is: Vec<f64> = c.points().iter().map(|p| p.ic.value()).collect();
        let pooled = Eq13PointModel::new(
            &ts,
            &vs,
            &is,
            reference.temperature.value(),
            reference.ic.value(),
        )
        .unwrap();
        let curve_model = Eq13Residuals {
            curve: &c,
            t_ref: reference.temperature.value(),
            ic_ref: reference.ic.value(),
        };
        let p = [1.10, 2.0, reference.vbe.value()];
        let m = pooled.residual_count();
        let mut ra = vec![0.0; m];
        let mut rb = vec![0.0; m];
        pooled.residuals(&p, &mut ra).unwrap();
        curve_model.residuals(&p, &mut rb).unwrap();
        assert_eq!(ra, rb);
        // Fitting it recovers the truth.
        let fit = fit_levenberg_marquardt(&pooled, &p, LmOptions::default()).unwrap();
        assert!((fit.parameters[0] - EG_TRUE).abs() < 1e-6);
        assert!((fit.parameters[1] - XTI_TRUE).abs() < 1e-3);
    }

    #[test]
    fn point_model_is_total_over_garbage_samples() {
        let ts = [250.0, f64::NAN, 350.0, -5.0];
        let vs = [0.65, 0.60, 0.55, 0.50];
        let is = [1e-6, 1e-6, f64::INFINITY, 1e-6];
        let model = Eq13PointModel::new(&ts, &vs, &is, 298.15, 1e-6).unwrap();
        let mut r = vec![0.0; 4];
        model.residuals(&[1.12, 3.0, 0.6], &mut r).unwrap();
        assert!(r[0].is_finite());
        assert!(!r[1].is_finite());
        assert!(!r[2].is_finite());
        assert!(!r[3].is_finite());
    }

    #[test]
    fn point_model_rejects_bad_reference_and_shapes() {
        let ts = [250.0, 300.0];
        let vs = [0.65, 0.60];
        let is = [1e-6, 1e-6];
        assert!(Eq13PointModel::new(&ts, &vs[..1], &is, 298.15, 1e-6).is_err());
        assert!(Eq13PointModel::new(&ts, &vs, &is, f64::NAN, 1e-6).is_err());
        assert!(Eq13PointModel::new(&ts, &vs, &is, 298.15, 0.0).is_err());
    }

    #[test]
    fn analytic_jacobian_matches_forward_differences() {
        let c = curve();
        let reference = c.points()[3];
        let model = Eq13Residuals {
            curve: &c,
            t_ref: reference.temperature.value(),
            ic_ref: reference.ic.value(),
        };
        let p = [1.12, 3.0, reference.vbe.value()];
        let m = model.residual_count();
        let mut analytic = Matrix::zeros(m, 3);
        assert!(model.jacobian(&p, &mut analytic).unwrap());

        let mut r0 = vec![0.0; m];
        model.residuals(&p, &mut r0).unwrap();
        let mut r1 = vec![0.0; m];
        for j in 0..3 {
            let h = 1e-7 * p[j].abs().max(1e-8);
            let mut pj = p;
            pj[j] += h;
            model.residuals(&pj, &mut r1).unwrap();
            for i in 0..m {
                let fd = (r1[i] - r0[i]) / h;
                assert!(
                    (analytic[(i, j)] - fd).abs() < 1e-5,
                    "column {j} row {i}: analytic {} vs fd {fd}",
                    analytic[(i, j)]
                );
            }
        }
    }
}
