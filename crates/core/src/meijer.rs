//! The analytical extraction: Meijer's equations 14-15 on three
//! temperatures.
//!
//! For any two temperatures `Ta < Tb` the eq.-13 closed form collapses to
//!
//! ```text
//! Tb VBE(Ta) - Ta VBE(Tb) = EG (Tb - Ta)
//!                         + XTI (k Ta Tb / q) ln(Tb/Ta)
//!                         + (k Ta Tb / q) ln( IC(Ta)/IC(Tb) )     (17/18)
//! ```
//!
//! Taking the pairs `(T1, T2)` and `(T2, T3)` gives two linear equations in
//! `(EG, XTI)` — no iteration, no regression: a 2x2 solve. The whole point
//! of the test structure is that `T1` and `T3` entering these equations can
//! be the *computed* die temperatures from [`crate::tempcomp`].

use icvbe_units::constants::BOLTZMANN_OVER_Q;
use icvbe_units::{Ampere, ElectronVolt, Kelvin, Volt};

use crate::straight::CharacteristicStraight;
use crate::{ExtractedPair, ExtractionError};

/// One point of the three-temperature analytical measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeijerPoint {
    /// Temperature of the point (sensor-measured or dVBE-computed).
    pub temperature: Kelvin,
    /// `VBE` of the device under test at that temperature.
    pub vbe: Volt,
    /// Collector current at that temperature (for the eq.-17/18 bias-drift
    /// correction; pass equal values for an ideal constant bias).
    pub ic: Ampere,
}

/// The three-temperature measurement set of the analytical method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeijerMeasurement {
    /// Cold point (`T1` in the paper, -25 °C).
    pub cold: MeijerPoint,
    /// Reference point (`T2`, 25 °C — the only temperature that must be
    /// physically measured).
    pub reference: MeijerPoint,
    /// Hot point (`T3`, 75 °C).
    pub hot: MeijerPoint,
}

impl MeijerMeasurement {
    /// Validates ordering and physicality.
    ///
    /// # Errors
    ///
    /// [`ExtractionError::BadData`] for non-increasing temperatures or
    /// unphysical values.
    pub fn validate(&self) -> Result<(), ExtractionError> {
        let (t1, t2, t3) = (
            self.cold.temperature.value(),
            self.reference.temperature.value(),
            self.hot.temperature.value(),
        );
        if !(t1 > 0.0 && t2 > t1 && t3 > t2) {
            return Err(ExtractionError::bad_data(format!(
                "temperatures must satisfy 0 < T1 < T2 < T3, got {t1}, {t2}, {t3}"
            )));
        }
        for p in [self.cold, self.reference, self.hot] {
            if !p.vbe.value().is_finite() || !(p.ic.value() > 0.0) {
                return Err(ExtractionError::bad_data(format!(
                    "unphysical point at {}: vbe {}, ic {}",
                    p.temperature, p.vbe, p.ic
                )));
            }
        }
        Ok(())
    }
}

/// Left-hand side and `(EG, XTI)` coefficients of eq. 17/18 for the pair
/// `(a, b)`, `Ta < Tb`, including the bias-drift correction term.
fn pair_equation(a: MeijerPoint, b: MeijerPoint) -> (f64, f64, f64) {
    let ta = a.temperature.value();
    let tb = b.temperature.value();
    let kq = BOLTZMANN_OVER_Q;
    let lhs =
        tb * a.vbe.value() - ta * b.vbe.value() - kq * ta * tb * (a.ic.value() / b.ic.value()).ln();
    let c_eg = tb - ta;
    let c_xti = kq * ta * tb * (tb / ta).ln();
    (lhs, c_eg, c_xti)
}

/// Extracts `(EG, XTI)` analytically from the three-point measurement.
///
/// # Errors
///
/// - Propagates [`MeijerMeasurement::validate`].
/// - [`ExtractionError::Degenerate`] if the 2x2 system is singular (this
///   needs pathological temperature spacing).
pub fn extract(m: &MeijerMeasurement) -> Result<ExtractedPair, ExtractionError> {
    m.validate()?;
    let (l1, a1, b1) = pair_equation(m.cold, m.reference);
    let (l2, a2, b2) = pair_equation(m.reference, m.hot);
    let det = a1 * b2 - a2 * b1;
    if det.abs() < 1e-18 {
        return Err(ExtractionError::degenerate(
            "Meijer system is singular for this temperature spacing",
        ));
    }
    let eg = (l1 * b2 - l2 * b1) / det;
    let xti = (a1 * l2 - a2 * l1) / det;
    Ok(ExtractedPair {
        eg: ElectronVolt::new(eg),
        xti,
        rms_residual_volts: 0.0,
    })
}

/// Which eq.-14/15 pair a single-equation characteristic line uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeijerPairing {
    /// Equation 14: the `(T1, T2)` pair.
    ColdReference,
    /// Equation 15: the `(T2, T3)` pair.
    ReferenceHot,
}

/// The characteristic straight implied by a *single* Meijer equation: for
/// each `XTI` on the grid, the `EG` that satisfies the chosen pair exactly.
/// This is how the analytical method draws the C2/C3 lines of Fig. 6.
///
/// # Errors
///
/// - Propagates [`MeijerMeasurement::validate`].
/// - [`ExtractionError::BadData`] for an empty grid.
pub fn characteristic_straight(
    m: &MeijerMeasurement,
    pairing: MeijerPairing,
    xti_grid: &[f64],
) -> Result<CharacteristicStraight, ExtractionError> {
    m.validate()?;
    if xti_grid.is_empty() {
        return Err(ExtractionError::bad_data("empty XTI grid"));
    }
    let (lhs, c_eg, c_xti) = match pairing {
        MeijerPairing::ColdReference => pair_equation(m.cold, m.reference),
        MeijerPairing::ReferenceHot => pair_equation(m.reference, m.hot),
    };
    let points = xti_grid
        .iter()
        .map(|&xti| (xti, (lhs - xti * c_xti) / c_eg))
        .collect();
    CharacteristicStraight::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icvbe_devphys::saturation::SpiceIsLaw;
    use icvbe_devphys::vbe::vbe_for_current;

    const EG_TRUE: f64 = 1.1324;
    const XTI_TRUE: f64 = 2.58;

    fn law() -> SpiceIsLaw {
        SpiceIsLaw::new(
            Ampere::new(2e-17),
            Kelvin::new(298.15),
            ElectronVolt::new(EG_TRUE),
            XTI_TRUE,
        )
    }

    fn point(t: f64, ic: f64) -> MeijerPoint {
        let t = Kelvin::new(t);
        let ic = Ampere::new(ic);
        MeijerPoint {
            temperature: t,
            vbe: vbe_for_current(&law(), ic, t),
            ic,
        }
    }

    fn measurement() -> MeijerMeasurement {
        MeijerMeasurement {
            cold: point(248.15, 1e-6),
            reference: point(298.15, 1e-6),
            hot: point(348.15, 1e-6),
        }
    }

    #[test]
    fn recovers_exact_parameters() {
        let fit = extract(&measurement()).unwrap();
        assert!((fit.eg.value() - EG_TRUE).abs() < 1e-10, "EG = {}", fit.eg);
        assert!((fit.xti - XTI_TRUE).abs() < 1e-7, "XTI = {}", fit.xti);
    }

    #[test]
    fn bias_drift_correction_restores_exactness() {
        // PTAT bias: IC doubles over the range; uncorrected extraction
        // would be biased, the eq.-17/18 term fixes it exactly.
        let m = MeijerMeasurement {
            cold: point(248.15, 0.8e-6),
            reference: point(298.15, 1.0e-6),
            hot: point(348.15, 1.25e-6),
        };
        let fit = extract(&m).unwrap();
        assert!((fit.eg.value() - EG_TRUE).abs() < 1e-10);
        assert!((fit.xti - XTI_TRUE).abs() < 1e-7);
    }

    #[test]
    fn ignoring_bias_drift_biases_the_extraction() {
        // Same drifting bias but lie to the extractor (constant IC).
        let mut m = MeijerMeasurement {
            cold: point(248.15, 0.8e-6),
            reference: point(298.15, 1.0e-6),
            hot: point(348.15, 1.25e-6),
        };
        m.cold.ic = Ampere::new(1e-6);
        m.hot.ic = Ampere::new(1e-6);
        let fit = extract(&m).unwrap();
        assert!(
            (fit.eg.value() - EG_TRUE).abs() > 1e-4,
            "expected a visible bias, got EG = {}",
            fit.eg
        );
    }

    #[test]
    fn wrong_temperatures_shift_the_extraction() {
        // Feed sensor temperatures that are off by the Table-1 magnitudes:
        // the extracted parameters move dramatically (the paper's point).
        let mut m = measurement();
        m.cold.temperature = Kelvin::new(248.15 + 4.0);
        m.hot.temperature = Kelvin::new(348.15 - 5.0);
        let fit = extract(&m).unwrap();
        assert!(
            (fit.eg.value() - EG_TRUE).abs() > 0.005,
            "EG barely moved: {}",
            fit.eg
        );
    }

    #[test]
    fn single_equation_lines_intersect_at_the_solution() {
        let m = measurement();
        let grid: Vec<f64> = (0..13).map(|i| 0.5 + 0.5 * i as f64).collect();
        let c14 = characteristic_straight(&m, MeijerPairing::ColdReference, &grid).unwrap();
        let c15 = characteristic_straight(&m, MeijerPairing::ReferenceHot, &grid).unwrap();
        let (x, y) = c14.intersection(&c15).unwrap();
        assert!((x - XTI_TRUE).abs() < 1e-6, "XTI at intersection: {x}");
        assert!((y - EG_TRUE).abs() < 1e-9, "EG at intersection: {y}");
    }

    #[test]
    fn validation_rejects_bad_ordering() {
        let mut m = measurement();
        m.cold.temperature = Kelvin::new(400.0);
        assert!(extract(&m).is_err());
    }

    #[test]
    fn validation_rejects_bad_current() {
        let mut m = measurement();
        m.reference.ic = Ampere::new(0.0);
        assert!(extract(&m).is_err());
    }
}
