//! Error-propagation studies backing the paper's in-text claims.
//!
//! Section 3 asserts three numbers without showing the work:
//!
//! 1. a 1% error on the `VBE(T)` characteristic can induce up to 8% error
//!    on extracted `EG` (best-fit route),
//! 2. an error `dT2 < 5 K` on the single measured temperature has "no
//!    significant influence" on the analytical extraction,
//! 3. the bias-drift contribution to `dVBE` is `A = (kT2/q) ln X ≈ 0.3 mV`
//!    — about 0.45% of `dVBE` — for a PTAT bias.
//!
//! This module turns each claim into a measurable quantity.

use icvbe_units::Kelvin;

use crate::bestfit::fit_eg_xti;
use crate::data::VbeCurve;
use crate::meijer::{extract, MeijerMeasurement};
use crate::{ExtractedPair, ExtractionError};

/// Result of a perturbation study: baseline and perturbed extractions plus
/// the relative `EG` shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbationResult {
    /// Extraction on the unperturbed data.
    pub baseline: ExtractedPair,
    /// Extraction on the perturbed data.
    pub perturbed: ExtractedPair,
    /// `|EG' - EG| / EG`.
    pub eg_relative_error: f64,
    /// `XTI' - XTI`.
    pub xti_shift: f64,
}

fn compare(baseline: ExtractedPair, perturbed: ExtractedPair) -> PerturbationResult {
    PerturbationResult {
        baseline,
        perturbed,
        eg_relative_error: (perturbed.eg.value() - baseline.eg.value()).abs()
            / baseline.eg.value().abs().max(1e-30),
        xti_shift: perturbed.xti - baseline.xti,
    }
}

/// Claim 1: best-fit `EG` error induced by a relative `VBE` measurement
/// error (gain/scale error of the voltmeter).
///
/// # Errors
///
/// Propagates fit failures on either data set.
pub fn bestfit_vbe_error_study(
    curve: &VbeCurve,
    reference_index: usize,
    vbe_relative_error: f64,
) -> Result<PerturbationResult, ExtractionError> {
    let baseline = fit_eg_xti(curve, reference_index)?;
    let perturbed = fit_eg_xti(
        &curve.with_vbe_scale_error(vbe_relative_error),
        reference_index,
    )?;
    Ok(compare(baseline, perturbed))
}

/// Best-fit `EG` error induced by a uniform temperature-sensor offset —
/// the motivation for computing die temperatures instead of trusting the
/// sensor.
///
/// # Errors
///
/// Propagates fit failures on either data set.
pub fn bestfit_temperature_offset_study(
    curve: &VbeCurve,
    reference_index: usize,
    offset_kelvin: f64,
) -> Result<PerturbationResult, ExtractionError> {
    let baseline = fit_eg_xti(curve, reference_index)?;
    let perturbed = fit_eg_xti(
        &curve.with_temperature_offset(offset_kelvin),
        reference_index,
    )?;
    Ok(compare(baseline, perturbed))
}

/// Claim 1, worst case: the "up to 8%" of the paper is a bound over
/// arbitrary per-point errors of relative size `vbe_relative_error`.
/// The fit is linear in the observations, so the exact bound is the sum of
/// per-point sensitivities: `sum_i |dEG/dVBE_i| * rel * VBE_i`.
///
/// # Errors
///
/// Propagates fit failures.
pub fn bestfit_worst_case_vbe_error(
    curve: &VbeCurve,
    reference_index: usize,
    vbe_relative_error: f64,
) -> Result<WorstCaseResult, ExtractionError> {
    let baseline = fit_eg_xti(curve, reference_index)?;
    let mut bound = 0.0;
    let mut per_point = Vec::with_capacity(curve.len());
    for i in 0..curve.len() {
        let mut pts: Vec<_> = curve
            .points()
            .iter()
            .map(|p| (p.temperature, p.vbe, p.ic))
            .collect();
        pts[i].1 = icvbe_units::Volt::new(pts[i].1.value() * (1.0 + vbe_relative_error));
        let perturbed = VbeCurve::from_points(pts)?;
        let fit = fit_eg_xti(&perturbed, reference_index)?;
        let delta = (fit.eg.value() - baseline.eg.value()).abs();
        per_point.push(delta);
        bound += delta;
    }
    let rms: f64 = per_point.iter().map(|d| d * d).sum::<f64>().sqrt();
    Ok(WorstCaseResult {
        baseline,
        eg_error_bound: bound,
        eg_relative_error_bound: bound / baseline.eg.value().abs().max(1e-30),
        eg_rms_error: rms,
        eg_relative_rms_error: rms / baseline.eg.value().abs().max(1e-30),
        per_point_eg_shifts: per_point,
    })
}

/// Result of the worst-case perturbation bound.
#[derive(Debug, Clone, PartialEq)]
pub struct WorstCaseResult {
    /// Extraction on the unperturbed data.
    pub baseline: ExtractedPair,
    /// Worst-case `|dEG|` over all sign patterns of per-point errors, eV.
    pub eg_error_bound: f64,
    /// The bound relative to the baseline `EG`.
    pub eg_relative_error_bound: f64,
    /// One-sigma `|dEG|` for independent random per-point errors
    /// (quadrature sum), eV.
    pub eg_rms_error: f64,
    /// The RMS figure relative to the baseline `EG` — the regime of the
    /// paper's "up to 8%" for realistic, partially correlated errors.
    pub eg_relative_rms_error: f64,
    /// `|dEG|` from perturbing each single point.
    pub per_point_eg_shifts: Vec<f64>,
}

/// Claim 2: analytical-method sensitivity to an error on the single
/// measured reference temperature `T2`.
///
/// The perturbation shifts `T2` by `dt2_kelvin` *and* rescales the
/// dVBE-computed `T1`, `T3` proportionally (they are derived from `T2`
/// through the eq.-16 ratio, so a `T2` error propagates multiplicatively).
///
/// # Errors
///
/// Propagates extraction failures.
pub fn meijer_t2_error_study(
    m: &MeijerMeasurement,
    dt2_kelvin: f64,
) -> Result<PerturbationResult, ExtractionError> {
    let baseline = extract(m)?;
    let scale = (m.reference.temperature.value() + dt2_kelvin) / m.reference.temperature.value();
    let mut perturbed_m = *m;
    perturbed_m.cold.temperature = Kelvin::new(m.cold.temperature.value() * scale);
    perturbed_m.reference.temperature = Kelvin::new(m.reference.temperature.value() * scale);
    perturbed_m.hot.temperature = Kelvin::new(m.hot.temperature.value() * scale);
    let perturbed = extract(&perturbed_m)?;
    Ok(compare(baseline, perturbed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use icvbe_devphys::saturation::SpiceIsLaw;
    use icvbe_devphys::vbe::vbe_for_current;
    use icvbe_units::{Ampere, ElectronVolt, Volt};

    const EG_TRUE: f64 = 1.1324;
    const XTI_TRUE: f64 = 2.58;

    fn law() -> SpiceIsLaw {
        SpiceIsLaw::new(
            Ampere::new(2e-17),
            Kelvin::new(298.15),
            ElectronVolt::new(EG_TRUE),
            XTI_TRUE,
        )
    }

    fn curve() -> VbeCurve {
        let ic = Ampere::new(1e-6);
        VbeCurve::from_points((0..8).map(|i| {
            let t = Kelvin::new(223.15 + 25.0 * i as f64);
            (t, vbe_for_current(&law(), ic, t), ic)
        }))
        .unwrap()
    }

    fn measurement() -> MeijerMeasurement {
        use crate::meijer::MeijerPoint;
        let ic = Ampere::new(1e-6);
        let p = |t: f64| MeijerPoint {
            temperature: Kelvin::new(t),
            vbe: vbe_for_current(&law(), ic, Kelvin::new(t)),
            ic,
        };
        MeijerMeasurement {
            cold: p(248.15),
            reference: p(298.15),
            hot: p(348.15),
        }
    }

    #[test]
    fn one_percent_vbe_error_costs_percents_of_eg() {
        let r = bestfit_vbe_error_study(&curve(), 3, 0.01).unwrap();
        // The paper says "up to 8%". Our clean synthetic workload lands in
        // the same regime: well above 0.2%, below 20%.
        assert!(
            r.eg_relative_error > 0.002 && r.eg_relative_error < 0.2,
            "relative EG error {}",
            r.eg_relative_error
        );
    }

    #[test]
    fn vbe_error_amplification_exceeds_unity() {
        // The headline point: the extraction AMPLIFIES measurement error.
        // 1% in, several times that out (paper: 8x).
        let r = bestfit_vbe_error_study(&curve(), 3, 0.01).unwrap();
        assert!(
            r.eg_relative_error / 0.01 > 0.5,
            "amplification {}",
            r.eg_relative_error / 0.01
        );
    }

    #[test]
    fn worst_case_vbe_error_reaches_the_papers_8_percent_regime() {
        // "a measurement error of 1% on the VBE(T) characteristic may
        // induce up to 8% of error on the extracted values of EG".
        let r = bestfit_worst_case_vbe_error(&curve(), 3, 0.01).unwrap();
        // The paper's 8% sits between the 1% gain-type case and this
        // adversarial bound; the RMS (random-error) figure lands in the
        // same decade as the claim.
        assert!(
            r.eg_relative_error_bound > 0.05 && r.eg_relative_error_bound < 0.60,
            "worst-case bound {}",
            r.eg_relative_error_bound
        );
        assert!(
            r.eg_relative_rms_error > 0.02 && r.eg_relative_rms_error < 0.30,
            "rms {}",
            r.eg_relative_rms_error
        );
        assert!(r.eg_rms_error < r.eg_error_bound);
        assert_eq!(r.per_point_eg_shifts.len(), 8);
        // The reference point itself contributes heavily through the
        // (T/T0) VBE(T0) term, so no per-point shift should dominate the
        // bound alone.
        let max = r
            .per_point_eg_shifts
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max);
        assert!(max < r.eg_error_bound);
    }

    #[test]
    fn sensor_offset_shifts_bestfit_eg() {
        let r = bestfit_temperature_offset_study(&curve(), 3, 4.0).unwrap();
        assert!(
            r.eg_relative_error > 1e-4,
            "EG moved {}",
            r.eg_relative_error
        );
    }

    #[test]
    fn meijer_tolerates_5k_on_t2() {
        // Claim 2: dT2 = 5 K has no significant influence.
        let r = meijer_t2_error_study(&measurement(), 5.0).unwrap();
        assert!(
            r.eg_relative_error < 0.02,
            "EG relative error {} too large",
            r.eg_relative_error
        );
        assert!(r.xti_shift.abs() < 0.6, "XTI shift {}", r.xti_shift);
    }

    #[test]
    fn meijer_t2_sensitivity_is_much_smaller_than_direct_sensor_error() {
        // The same 4 K error applied as a plain sensor offset to the
        // best-fit curve hurts far more than through the T2 ratio path.
        let direct = bestfit_temperature_offset_study(&curve(), 3, 4.0)
            .unwrap()
            .eg_relative_error;
        let via_t2 = meijer_t2_error_study(&measurement(), 4.0)
            .unwrap()
            .eg_relative_error;
        assert!(
            via_t2 < direct,
            "analytical route should be more robust: {via_t2} vs {direct}"
        );
    }

    #[test]
    fn zero_perturbation_is_identity() {
        let r = bestfit_vbe_error_study(&curve(), 3, 0.0).unwrap();
        assert!(r.eg_relative_error < 1e-12);
        assert!(r.xti_shift.abs() < 1e-9);
        let r = meijer_t2_error_study(&measurement(), 0.0).unwrap();
        assert!(r.eg_relative_error < 1e-12);
    }

    #[test]
    fn perturbation_result_is_symmetric_in_magnitude() {
        let up = bestfit_vbe_error_study(&curve(), 3, 0.01).unwrap();
        let down = bestfit_vbe_error_study(&curve(), 3, -0.01).unwrap();
        let ratio = up.eg_relative_error / down.eg_relative_error;
        assert!(ratio > 0.5 && ratio < 2.0, "asymmetric: {ratio}");
    }

    #[test]
    fn baseline_matches_truth() {
        let r = bestfit_vbe_error_study(&curve(), 3, 0.01).unwrap();
        assert!((r.baseline.eg.value() - EG_TRUE).abs() < 1e-8);
        assert!((r.baseline.xti - XTI_TRUE).abs() < 1e-5);
        let _ = Volt::new(0.0); // keep the import exercised
    }
}
