//! Shared fixtures and the in-tree [`harness`] for the benchmarks.
//!
//! Each bench target regenerates one table or figure of the paper (see
//! DESIGN.md's per-experiment index); this crate hosts the common data
//! builders so the benches measure the computation, not the setup, plus
//! the criterion-compatible micro-benchmark harness the targets run on
//! (the hermetic build has no registry access, so no `criterion` crate).

#![deny(missing_docs)]

pub mod harness;

use icvbe_core::data::VbeCurve;
use icvbe_core::meijer::{MeijerMeasurement, MeijerPoint};
use icvbe_devphys::saturation::SpiceIsLaw;
use icvbe_devphys::vbe::vbe_for_current;
use icvbe_units::{Ampere, ElectronVolt, Kelvin};

/// The reference device law used by the extraction benches.
#[must_use]
pub fn reference_law() -> SpiceIsLaw {
    SpiceIsLaw::new(
        Ampere::new(2e-17),
        Kelvin::new(298.15),
        ElectronVolt::new(1.1324),
        2.58,
    )
}

/// A clean eight-point `VBE(T)` characteristic at the given bias.
///
/// # Panics
///
/// Panics only on an invalid hard-coded grid (i.e. never).
#[must_use]
pub fn synthetic_curve(ic_amps: f64) -> VbeCurve {
    let law = reference_law();
    let ic = Ampere::new(ic_amps);
    VbeCurve::from_points((0..8).map(|i| {
        let t = Kelvin::new(223.15 + 25.0 * i as f64);
        (t, vbe_for_current(&law, ic, t), ic)
    }))
    .expect("static grid is valid")
}

/// A clean three-point analytical measurement.
#[must_use]
pub fn synthetic_measurement() -> MeijerMeasurement {
    let law = reference_law();
    let ic = Ampere::new(1e-6);
    let p = |t: f64| MeijerPoint {
        temperature: Kelvin::new(t),
        vbe: vbe_for_current(&law, ic, Kelvin::new(t)),
        ic,
    };
    MeijerMeasurement {
        cold: p(248.15),
        reference: p(298.15),
        hot: p(348.15),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(synthetic_curve(1e-6).len(), 8);
        assert!(synthetic_measurement().validate().is_ok());
    }
}
