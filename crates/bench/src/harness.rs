//! A small criterion-compatible micro-benchmark harness on plain `std`.
//!
//! The workspace builds hermetically (no registry access), so the bench
//! targets cannot link the `criterion` crate. This module implements the
//! slice of its API the benches use — [`Criterion`], benchmark groups,
//! `Bencher::iter`, and the [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros — with the same
//! calling conventions, so a bench file reads identically either way.
//!
//! Measurement model: per benchmark, a warm-up phase sizes the number of
//! iterations per sample so that `sample_size` samples fill the
//! measurement window; each sample times a fixed iteration batch with
//! [`std::time::Instant`] and the report quotes the min / median / max
//! per-iteration time across samples. Positional command-line arguments
//! act as substring filters on `group/name` ids (`cargo bench campaign`),
//! and `--list` prints ids without running.

use std::time::{Duration, Instant};

/// Harness configuration plus the command-line filter, mirroring
/// `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    filters: Vec<String>,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filters = Vec::new();
        let mut list_only = false;
        // Cargo invokes bench binaries as `<bin> --bench [ARGS]`; flags we
        // don't implement are ignored, positional args filter by substring.
        for a in std::env::args().skip(1) {
            if a == "--list" {
                list_only = true;
            } else if !a.starts_with('-') {
                filters.push(a);
            }
        }
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1500),
            filters,
            list_only,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration preceding measurement.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the target duration of the measurement phase.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_one(&cfg, id, f);
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Whether the command-line filters select `id` — for bench targets
    /// that do their own measurement outside [`Bencher::iter`] and need
    /// to honour `cargo bench <filter>` themselves.
    #[must_use]
    pub fn is_selected(&self, id: &str) -> bool {
        self.selected(id)
    }

    /// Whether `--list` was passed (print ids, run nothing).
    #[must_use]
    pub fn is_list_only(&self) -> bool {
        self.list_only
    }
}

/// A named group of related benchmarks (criterion's `BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        run_one(&cfg, &format!("{}/{id}", self.name), f);
        self
    }

    /// Ends the group (kept for criterion API parity).
    pub fn finish(self) {}
}

/// The per-benchmark measurement driver handed to the closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Per-iteration nanoseconds, one entry per sample (filled by `iter`).
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f` as the benchmark body (criterion's `Bencher::iter`).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: run until the window elapses to fault in caches and
        // estimate the per-iteration cost.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((budget_ns / per_iter.max(1.0)).round() as u64).max(1);

        self.samples_ns.clear();
        self.iters_per_sample = iters;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

fn run_one<F>(cfg: &Criterion, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if !cfg.selected(id) {
        return;
    }
    if cfg.list_only {
        println!("{id}: benchmark");
        return;
    }
    let mut b = Bencher {
        warm_up: cfg.warm_up,
        measurement: cfg.measurement,
        sample_size: cfg.sample_size,
        samples_ns: Vec::new(),
        iters_per_sample: 0,
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{id:<50} (no measurement: closure never called iter)");
        return;
    }
    let mut s = b.samples_ns.clone();
    s.sort_by(|a, c| a.total_cmp(c));
    let median = s[s.len() / 2];
    println!(
        "{id:<50} time: [{} {} {}]  ({} samples x {} iters)",
        format_ns(s[0]),
        format_ns(median),
        format_ns(s[s.len() - 1]),
        s.len(),
        b.iters_per_sample,
    );
}

/// Formats nanoseconds with an auto-ranged unit, criterion style.
#[must_use]
pub fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Defines a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(10),
            sample_size: 3,
            samples_ns: Vec::new(),
            iters_per_sample: 0,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(b.samples_ns.len(), 3);
        assert!(b.samples_ns.iter().all(|&ns| ns >= 0.0));
        assert!(b.iters_per_sample >= 1);
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with(" s"));
    }
}
