//! FIG1 bench: regenerating the five-model `EG(T)` comparison.

use icvbe_bench::harness::Criterion;
use icvbe_bench::{criterion_group, criterion_main};
use icvbe_devphys::eg::figure1_models;
use icvbe_units::Kelvin;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.bench_function("full_experiment", |b| {
        b.iter(|| black_box(icvbe_repro::fig1::run()))
    });
    g.bench_function("five_models_on_grid", |b| {
        let models = figure1_models();
        b.iter(|| {
            let mut acc = 0.0;
            for m in &models {
                for i in 0..=90 {
                    acc += m.eg(Kelvin::new(i as f64 * 5.0)).value();
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_fig1
}
criterion_main!(benches);
