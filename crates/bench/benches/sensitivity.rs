//! SENS bench: the error-propagation studies.

use icvbe_bench::harness::Criterion;
use icvbe_bench::{criterion_group, criterion_main};
use icvbe_bench::{synthetic_curve, synthetic_measurement};
use icvbe_core::sensitivity::{bestfit_vbe_error_study, meijer_t2_error_study};
use std::hint::black_box;

fn bench_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("sensitivity");
    let curve = synthetic_curve(1e-6);
    let m = synthetic_measurement();
    g.bench_function("vbe_error_study", |b| {
        b.iter(|| black_box(bestfit_vbe_error_study(&curve, 3, 0.01).expect("study")))
    });
    g.bench_function("t2_error_study", |b| {
        b.iter(|| black_box(meijer_t2_error_study(&m, 5.0).expect("study")))
    });
    g.bench_function("full_experiment", |b| {
        b.iter(|| black_box(icvbe_repro::sensitivity::run().expect("sens")))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_sensitivity
}
criterion_main!(benches);
