//! FIG2 bench: solving the PTAT pair structure across temperature.

use icvbe_bandgap::card::st_bicmos_pnp;
use icvbe_bandgap::pair::PairStructure;
use icvbe_bench::harness::Criterion;
use icvbe_bench::{criterion_group, criterion_main};
use icvbe_units::{Ampere, Kelvin};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.bench_function("full_experiment", |b| {
        b.iter(|| black_box(icvbe_repro::fig2::run().expect("fig2")))
    });
    g.bench_function("single_pair_solve", |b| {
        let pair = PairStructure::ideal(st_bicmos_pnp(), Ampere::new(1e-6));
        b.iter(|| black_box(pair.measure(Kelvin::new(298.15)).expect("solve")))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_fig2
}
criterion_main!(benches);
