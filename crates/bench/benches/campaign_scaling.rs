//! Campaign worker-pool scaling: identical wafer, 1 thread vs N threads,
//! plus the solver ablations — warm vs cold starts, device bypass on vs
//! off, frozen sparse plan vs dense LU fallback, lockstep batching vs
//! the scalar per-die path (`--batch 1`), and the in-tree `vexp` exp
//! kernel vs libm's `f64::exp` (`libm-exp`).
//!
//! The aggregate is asserted bit-identical across thread counts *and*
//! across every ablation before timing anything, so the speedup measured
//! here is for *the same answer* — the determinism guarantee is not
//! traded for throughput.
//!
//! Besides the criterion-style timing group, the bench reports wafer
//! throughput (dies/second) per configuration and, when the
//! `ICVBE_BENCH_JSON` environment variable names a path, writes the
//! measurements there as JSON (the campaign regression ledger
//! `BENCH_campaign.json` is assembled from those snapshots).

use std::time::Instant;

use icvbe_bench::harness::Criterion;
use icvbe_bench::{criterion_group, criterion_main};
use icvbe_campaign::spec::WaferMap;
use icvbe_campaign::worker::{run_campaign_with, RunOptions};
use icvbe_campaign::{run_campaign, CampaignRun, CampaignSpec};

/// The scalar per-die ablation: lockstep batching forced off.
fn run_unbatched(spec: &CampaignSpec, threads: usize) -> CampaignRun {
    let options = RunOptions {
        batch: 1,
        ..RunOptions::default()
    };
    run_campaign_with(spec, threads, &options).expect("unbatched campaign run")
}

fn scaling_spec() -> CampaignSpec {
    // ~120 dies: big enough to amortize pool startup, small enough for a
    // bench iteration.
    CampaignSpec::paper_default(WaferMap::circular(13), 0xC0FF_EE00)
}

fn cold_spec() -> CampaignSpec {
    let mut spec = scaling_spec();
    spec.warm_start = false;
    spec
}

fn no_bypass_spec() -> CampaignSpec {
    let mut spec = scaling_spec();
    spec.bypass = false;
    spec
}

fn dense_spec() -> CampaignSpec {
    let mut spec = scaling_spec();
    spec.sparse = false;
    spec
}

/// The adaptive corner scheduler: probe the first corner per die, run
/// the remaining corners only when the probe flags escalation. On the
/// clean bench wafer this skips every trailing corner, so the row
/// measures the scheduler's best case; the executed probe corner is
/// asserted bit-identical to the exhaustive plan before timing.
fn adaptive_spec() -> CampaignSpec {
    let mut spec = scaling_spec();
    spec.adaptive = true;
    spec
}

fn bench_campaign_scaling(c: &mut Criterion) {
    let ids: Vec<String> = [1usize, 2, 4, 8]
        .iter()
        .map(|t| format!("campaign_scaling/threads/{t}"))
        .chain(
            [1usize, 8]
                .iter()
                .map(|t| format!("campaign_scaling/cold/threads/{t}")),
        )
        .chain(
            [1usize, 8]
                .iter()
                .map(|t| format!("campaign_scaling/no-batch/threads/{t}")),
        )
        .collect();
    // Pay for the determinism guards only when something in the group
    // will actually be timed.
    if ids.iter().any(|id| c.is_selected(id)) && !c.is_list_only() {
        run_guards();
    }

    let spec = scaling_spec();
    let mut group = c.benchmark_group("campaign_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let spec = spec.clone();
        group.bench_function(&format!("threads/{threads}"), move |b| {
            b.iter(|| run_campaign(&spec, threads).expect("campaign run"));
        });
    }
    for threads in [1usize, 8] {
        let spec = cold_spec();
        group.bench_function(&format!("cold/threads/{threads}"), move |b| {
            b.iter(|| run_campaign(&spec, threads).expect("campaign run"));
        });
    }
    for threads in [1usize, 8] {
        let spec = spec.clone();
        group.bench_function(&format!("no-batch/threads/{threads}"), move |b| {
            b.iter(|| run_unbatched(&spec, threads));
        });
    }
    group.finish();
}

/// Guards run before any timing: the parallel run and the cold-start
/// ablation must both produce the identical aggregate, so the speedups
/// measured are for the same answer.
fn run_guards() {
    let spec = scaling_spec();
    let one = run_campaign(&spec, 1).expect("1-thread run");
    let par = run_campaign(&spec, 8).expect("8-thread run");
    assert_eq!(
        one.aggregate, par.aggregate,
        "aggregate must be thread-count invariant"
    );
    let cold = run_campaign(&cold_spec(), 8).expect("cold run");
    assert_eq!(
        one.aggregate, cold.aggregate,
        "aggregate must be warm-start invariant"
    );
    let no_bypass = run_campaign(&no_bypass_spec(), 8).expect("no-bypass run");
    assert_eq!(
        one.aggregate, no_bypass.aggregate,
        "aggregate must be device-bypass invariant"
    );
    let dense = run_campaign(&dense_spec(), 8).expect("dense-fallback run");
    assert_eq!(
        one.aggregate, dense.aggregate,
        "aggregate must be solve-path invariant"
    );
    let unbatched = run_unbatched(&spec, 8);
    assert_eq!(
        one.aggregate, unbatched.aggregate,
        "aggregate must be batching invariant"
    );
    // The libm-exp ablation swaps the exp kernel, so its accepted bits
    // legitimately differ from the vexp default — but it must still be
    // thread-count *and* batching invariant within itself, and flipping
    // the backend off again must restore the vexp bits exactly.
    icvbe_numerics::vexp::set_libm_backend(true);
    let libm_one = run_campaign(&spec, 1).expect("libm 1-thread run");
    let libm_par = run_campaign(&spec, 8).expect("libm 8-thread run");
    let libm_unbatched = run_unbatched(&spec, 8);
    icvbe_numerics::vexp::set_libm_backend(false);
    assert_eq!(
        libm_one.aggregate, libm_par.aggregate,
        "libm-exp ablation must stay thread-count invariant"
    );
    assert_eq!(
        libm_one.aggregate, libm_unbatched.aggregate,
        "libm-exp ablation must stay batching invariant"
    );
    let restored = run_campaign(&spec, 1).expect("post-ablation run");
    assert_eq!(
        one.aggregate, restored.aggregate,
        "switching the exp backend back must restore the vexp bits"
    );
    // Adaptive skips trailing corners, so the full aggregates differ by
    // design — but the probe corner it *does* run must be bit-identical
    // to the exhaustive plan, and on this clean wafer it must do
    // strictly less corner work.
    let adaptive = run_campaign(&adaptive_spec(), 8).expect("adaptive run");
    assert_eq!(
        one.aggregate.corners[0], adaptive.aggregate.corners[0],
        "adaptive probe corner must match the exhaustive plan bit-for-bit"
    );
    assert!(
        adaptive.metrics.solver.solves < one.metrics.solver.solves,
        "adaptive must reduce corner work on a clean wafer"
    );
    assert!(
        one.metrics.batching.batched_solves > 0 && unbatched.metrics.batching.batched_solves == 0,
        "default run must batch, --batch 1 must not"
    );
}

/// One throughput measurement: median wall time over `reps` runs.
struct Throughput {
    mode: &'static str,
    threads: usize,
    median_ms: f64,
    dies_per_second: f64,
}

fn measure(spec: &CampaignSpec, threads: usize, batch: usize, reps: usize) -> (f64, CampaignRun) {
    let options = RunOptions {
        batch,
        ..RunOptions::default()
    };
    let mut last = None;
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let run = run_campaign_with(spec, threads, &options).expect("campaign run");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            last = Some(run);
            ms
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], last.expect("at least one rep"))
}

fn bench_campaign_throughput(c: &mut Criterion) {
    if !c.is_selected("campaign_throughput") {
        return;
    }
    if c.is_list_only() {
        println!("campaign_throughput: benchmark");
        return;
    }
    let warm = scaling_spec();
    let cold = cold_spec();
    let no_bypass = no_bypass_spec();
    let dense = dense_spec();
    let adaptive = adaptive_spec();
    let dies = warm.wafer.die_count();
    let reps = 7;
    // Warm the CPU clocks so the medians compare across configurations.
    run_campaign(&warm, 8).expect("warm-up run");

    let mut rows = Vec::new();
    let modes = [
        ("warm", &warm, 0usize, false),
        ("no-batch", &warm, 1, false),
        ("libm-exp", &warm, 0, true),
        ("no-bypass", &no_bypass, 0, false),
        ("dense", &dense, 0, false),
        ("cold", &cold, 0, false),
        ("adaptive", &adaptive, 0, false),
    ];
    let mut solves_by_mode: Vec<(&str, u64)> = Vec::new();
    for (mode, spec, batch, libm) in modes {
        icvbe_numerics::vexp::set_libm_backend(libm);
        for threads in [1usize, 8] {
            let (median_ms, run) = measure(spec, threads, batch, reps);
            let dies_per_second = dies as f64 / (median_ms / 1e3);
            println!(
                "campaign_throughput/{mode}/threads/{threads:<2} median {median_ms:7.2} ms -> \
                 {dies_per_second:7.1} dies/s ({dies} dies, {} solves, {} Newton iters, \
                 {} bypasses, {} evals, {:.0}% lane-kernel, {:.1} lanes/round)",
                run.metrics.solver.solves,
                run.metrics.solver.newton_iterations,
                run.metrics.solver.bypass_hits,
                run.metrics.solver.device_evals,
                run.metrics.solver.lane_eval_share() * 100.0,
                run.metrics.batching.mean_lanes_active(),
            );
            rows.push(Throughput {
                mode,
                threads,
                median_ms,
                dies_per_second,
            });
            if threads == 1 {
                solves_by_mode.push((mode, run.metrics.solver.solves));
            }
        }
    }
    icvbe_numerics::vexp::set_libm_backend(false);

    let solves = |mode: &str| {
        solves_by_mode
            .iter()
            .find(|(m, _)| *m == mode)
            .map_or(0, |(_, s)| *s)
    };
    let (warm_solves, adaptive_solves) = (solves("warm"), solves("adaptive"));
    if warm_solves > 0 {
        println!(
            "campaign_throughput/adaptive corner-work: {adaptive_solves} solves vs \
             {warm_solves} exhaustive ({:.1}% reduction)",
            100.0 * (1.0 - adaptive_solves as f64 / warm_solves as f64)
        );
    }

    if let Ok(path) = std::env::var("ICVBE_BENCH_JSON") {
        let mut json = String::from("{\n  \"benchmark\": \"campaign_scaling\",\n");
        json.push_str(&format!(
            "  \"wafer\": {{\"diameter\": {}, \"dies\": {}}},\n  \"results\": [\n",
            warm.wafer.rows(),
            dies
        ));
        for (i, r) in rows.iter().enumerate() {
            let sep = if i + 1 == rows.len() { "" } else { "," };
            json.push_str(&format!(
                "    {{\"mode\": \"{}\", \"threads\": {}, \"median_ms\": {:.2}, \
                 \"dies_per_second\": {:.1}}}{sep}\n",
                r.mode, r.threads, r.median_ms, r.dies_per_second
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!(
            "  \"adaptive_corner_work\": {{\"solves\": {adaptive_solves}, \
             \"exhaustive_solves\": {warm_solves}, \"reduction\": {:.3}}}\n",
            1.0 - adaptive_solves as f64 / warm_solves.max(1) as f64
        ));
        json.push_str("}\n");
        std::fs::write(&path, json).expect("write ICVBE_BENCH_JSON");
        println!("campaign_throughput: wrote {path}");
    }
}

criterion_group!(benches, bench_campaign_scaling, bench_campaign_throughput);
criterion_main!(benches);
