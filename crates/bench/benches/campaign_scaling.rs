//! Campaign worker-pool scaling: identical wafer, 1 thread vs N threads.
//!
//! The aggregate is asserted bit-identical across thread counts before
//! timing anything, so the speedup measured here is for *the same
//! answer* — the determinism guarantee is not traded for throughput.

use icvbe_bench::harness::Criterion;
use icvbe_bench::{criterion_group, criterion_main};
use icvbe_campaign::spec::WaferMap;
use icvbe_campaign::{run_campaign, CampaignSpec};

fn scaling_spec() -> CampaignSpec {
    // ~120 dies: big enough to amortize pool startup, small enough for a
    // bench iteration.
    CampaignSpec::paper_default(WaferMap::circular(13), 0xC0FF_EE00)
}

fn bench_campaign_scaling(c: &mut Criterion) {
    let spec = scaling_spec();

    // Guard: the parallel run must produce the identical aggregate.
    let one = run_campaign(&spec, 1).expect("1-thread run");
    let par = run_campaign(&spec, 8).expect("8-thread run");
    assert_eq!(
        one.aggregate, par.aggregate,
        "aggregate must be thread-count invariant"
    );

    let mut group = c.benchmark_group("campaign_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let spec = spec.clone();
        group.bench_function(&format!("threads/{threads}"), move |b| {
            b.iter(|| run_campaign(&spec, threads).expect("campaign run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaign_scaling);
criterion_main!(benches);
