//! FIG8 bench: bandgap-cell solves, `VREF(T)` sweeps, and the full
//! model-card comparison.

use icvbe_bandgap::card::st_bicmos_pnp;
use icvbe_bandgap::cell::BandgapCell;
use icvbe_bandgap::vref::{figure8_grid, VrefCurve};
use icvbe_bench::harness::Criterion;
use icvbe_bench::{criterion_group, criterion_main};
use icvbe_units::Kelvin;
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("single_cell_solve", |b| {
        let cell = BandgapCell::nominal(st_bicmos_pnp());
        b.iter(|| black_box(cell.solve(Kelvin::new(298.15)).expect("solve")))
    });
    g.bench_function("vref_sweep_10_points", |b| {
        let cell = BandgapCell::nominal(st_bicmos_pnp());
        let grid = figure8_grid();
        b.iter(|| black_box(VrefCurve::sweep(&cell, &grid).expect("sweep")))
    });
    g.bench_function("r_ptat_calibration", |b| {
        let cell = BandgapCell::nominal(st_bicmos_pnp());
        b.iter(|| black_box(cell.calibrate(Kelvin::new(298.15)).expect("calibrate")))
    });
    g.bench_function("full_experiment", |b| {
        b.iter(|| black_box(icvbe_repro::fig8::run().expect("fig8")))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_fig8
}
criterion_main!(benches);
