//! FIG6 bench: the three extraction routes on extraction-ready data.

use icvbe_bench::harness::Criterion;
use icvbe_bench::{criterion_group, criterion_main};
use icvbe_bench::{synthetic_curve, synthetic_measurement};
use icvbe_core::{bestfit, meijer};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    let curve = synthetic_curve(1e-6);
    let curves = [1e-8, 1e-7, 1e-6, 1e-5].map(synthetic_curve).to_vec();
    let m = synthetic_measurement();
    let grid: Vec<f64> = (0..=12).map(|i| 0.5 + 0.5 * i as f64).collect();

    g.bench_function("bestfit_two_parameter", |b| {
        b.iter(|| black_box(bestfit::fit_eg_xti(&curve, 3).expect("fit")))
    });
    g.bench_function("bestfit_characteristic_straight_c1", |b| {
        b.iter(|| black_box(bestfit::characteristic_straight(&curves, 3, &grid).expect("straight")))
    });
    g.bench_function("meijer_2x2_extraction", |b| {
        b.iter(|| black_box(meijer::extract(&m).expect("extract")))
    });
    g.bench_function("meijer_characteristic_straight", |b| {
        b.iter(|| {
            black_box(
                meijer::characteristic_straight(&m, meijer::MeijerPairing::ColdReference, &grid)
                    .expect("straight"),
            )
        })
    });
    g.finish();

    let mut g = c.benchmark_group("fig6_end_to_end");
    g.sample_size(10);
    g.bench_function("full_bench_pipeline", |b| {
        b.iter(|| black_box(icvbe_repro::fig6::run().expect("fig6")))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_fig6
}
criterion_main!(benches);
