//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! - least-squares backend: Householder QR vs normal equations,
//! - Meijer extraction with vs without the eq.-19/20 bias-drift
//!   correction,
//! - electro-thermal fixed point vs one-shot self-heating estimate,
//! - DC solver: plain Newton vs the gmin-ladder path.

use icvbe_bandgap::card::st_bicmos_pnp;
use icvbe_bandgap::cell::BandgapCell;
use icvbe_bench::harness::Criterion;
use icvbe_bench::{criterion_group, criterion_main};
use icvbe_bench::{synthetic_curve, synthetic_measurement};
use icvbe_core::bestfit::{fit_eg_xti, fit_eg_xti_with};
use icvbe_core::meijer::extract;
use icvbe_core::nonlinear::fit_eg_xti_vberef;
use icvbe_numerics::lsq::LsqBackend;
use icvbe_thermal::network::ThermalPath;
use icvbe_thermal::selfheat::{one_shot_die_temperature, solve_die_temperature};
use icvbe_units::{Ampere, Kelvin};
use std::hint::black_box;

fn bench_lsq_backend(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_lsq_backend");
    let curve = synthetic_curve(1e-6);
    g.bench_function("qr", |b| {
        b.iter(|| black_box(fit_eg_xti_with(&curve, 3, LsqBackend::Qr).expect("fit")))
    });
    g.bench_function("normal_equations", |b| {
        b.iter(|| black_box(fit_eg_xti_with(&curve, 3, LsqBackend::NormalEquations).expect("fit")))
    });
    g.finish();
}

fn bench_linear_vs_nonlinear_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fit_kind");
    let curve = synthetic_curve(1e-6);
    g.bench_function("linear_eq13", |b| {
        b.iter(|| black_box(fit_eg_xti(&curve, 3).expect("fit")))
    });
    g.bench_function("nonlinear_free_vberef", |b| {
        b.iter(|| black_box(fit_eg_xti_vberef(&curve, 3).expect("fit")))
    });
    g.finish();
}

fn bench_meijer_correction(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_meijer_correction");
    let with_drift = {
        let mut m = synthetic_measurement();
        // Bias drifts 2% per 50 K (PTAT source imperfection).
        m.cold.ic = Ampere::new(0.98e-6);
        m.hot.ic = Ampere::new(1.02e-6);
        m
    };
    let ignored = {
        let mut m = with_drift;
        m.cold.ic = Ampere::new(1e-6);
        m.hot.ic = Ampere::new(1e-6);
        m
    };
    g.bench_function("with_eq17_correction", |b| {
        b.iter(|| black_box(extract(&with_drift).expect("extract")))
    });
    g.bench_function("ignoring_drift", |b| {
        b.iter(|| black_box(extract(&ignored).expect("extract")))
    });
    g.finish();
}

fn bench_thermal_fixed_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_thermal");
    let path = ThermalPath::ceramic_dip();
    let power = |t: Kelvin| 10e-3 * (1.0 + 0.01 * (t.value() - 298.15));
    g.bench_function("fixed_point", |b| {
        b.iter(|| {
            black_box(
                solve_die_temperature(Kelvin::new(298.15), &path, power, 1e-9, 100)
                    .expect("converged"),
            )
        })
    });
    g.bench_function("one_shot", |b| {
        b.iter(|| black_box(one_shot_die_temperature(Kelvin::new(298.15), &path, power)))
    });
    g.finish();
}

fn bench_solver_strategy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_solver_start");
    g.sample_size(10);
    let cell = BandgapCell::nominal(st_bicmos_pnp());
    let warm = cell.solve(Kelvin::new(298.15)).expect("warm").solution;
    g.bench_function("cold_start", |b| {
        b.iter(|| black_box(cell.solve(Kelvin::new(303.15)).expect("solve")))
    });
    g.bench_function("warm_start", |b| {
        b.iter(|| {
            black_box(
                cell.solve_with(
                    Kelvin::new(303.15),
                    &icvbe_spice::solver::DcOptions::default(),
                    Some(&warm),
                )
                .expect("solve"),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_lsq_backend,
        bench_linear_vs_nonlinear_fit,
        bench_meijer_correction,
        bench_thermal_fixed_point,
        bench_solver_strategy
}
criterion_main!(benches);
