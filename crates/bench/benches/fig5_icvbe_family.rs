//! FIG5 bench: the swept `IC(VBE)` family through the full solver path.

use icvbe_bench::harness::Criterion;
use icvbe_bench::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("full_family_8_temperatures", |b| {
        b.iter(|| black_box(icvbe_repro::fig5::run().expect("fig5")))
    });
    g.bench_function("constant_current_readout", |b| {
        let family = icvbe_repro::fig5::run().expect("fig5").family;
        b.iter(|| {
            black_box(
                family
                    .vbe_curve_at(icvbe_units::Ampere::new(1e-6))
                    .expect("readout"),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_fig5
}
criterion_main!(benches);
