//! TABLE1 bench: the electro-thermal measurement point and the full
//! five-sample campaign.

use icvbe_bench::harness::Criterion;
use icvbe_bench::{criterion_group, criterion_main};
use icvbe_instrument::bench::TestStructureBench;
use icvbe_instrument::montecarlo::DieSample;
use icvbe_units::{Ampere, Celsius};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("single_electrothermal_point", |b| {
        let sample = DieSample::nominal(0);
        b.iter(|| {
            let mut bench = TestStructureBench::paper_bench(7);
            black_box(
                bench
                    .measure_pair_at(&sample, Ampere::new(1e-6), Celsius::new(25.0))
                    .expect("point"),
            )
        })
    });
    g.bench_function("full_five_sample_campaign", |b| {
        b.iter(|| black_box(icvbe_repro::table1::run().expect("table1")))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_table1
}
criterion_main!(benches);
