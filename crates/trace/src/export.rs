//! The merged trace of a whole campaign run and its two export formats:
//! Chrome trace-event JSON (Perfetto / `chrome://tracing`) and a
//! collapsed-stack ("folded") text profile for flamegraph tooling.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{SpanKind, SpanPhase, TraceEvent, NO_DIE};

/// The complete, die-ordered event stream of one campaign run.
///
/// The fold thread assembles it as: campaign begin, then each die's
/// records in **die-index order** (regardless of which worker ran the die
/// or when it finished) each followed by its `QueueWait` reorder-buffer
/// span, then campaign end. Because the order and every logical field are
/// deterministic, two `Trace`s from the same spec compare equal after
/// masking wall-clock fields — at any thread count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// All span records, in deterministic merge order.
    pub events: Vec<TraceEvent>,
    /// Records discarded because a die overflowed its buffer capacity.
    pub dropped: u64,
}

impl Trace {
    /// Serialises the trace as Chrome trace-event JSON (the "JSON array
    /// format" with metadata), one event per line.
    ///
    /// Field layout per event is fixed: `name`, `cat`, `ph`, `pid` (always
    /// 0), `tid` (worker ordinal, **nondeterministic**), `ts`
    /// (microseconds with nanosecond precision, **nondeterministic**),
    /// `args` (deterministic logical fields, then payload counters —
    /// `nd_`-prefixed ones nondeterministic). Apply
    /// [`mask_nondeterministic`] before comparing across runs.
    pub fn chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 * self.events.len() + 256);
        out.push_str("{\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            write_chrome_event(&mut out, ev);
        }
        let _ = write!(
            out,
            "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\
             \"schema\":\"icvbe-campaign-trace-v1\",\"dropped\":{}}}}}",
            self.dropped
        );
        out
    }

    /// Serialises the trace as collapsed stacks: one line per unique span
    /// path (`frame;frame;...`) followed by its **self** time in
    /// nanoseconds, lines sorted lexicographically. Feed directly to
    /// flamegraph tooling.
    ///
    /// The frame *paths* are deterministic; the sample counts are wall
    /// clock. Where children ran in parallel under one span (dies under
    /// the campaign root), self time saturates at zero rather than going
    /// negative.
    pub fn folded(&self) -> String {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        // Stack of (path length before this frame, begin ts, child ns).
        let mut stack: Vec<(usize, u64, u64)> = Vec::new();
        let mut path = String::new();
        for ev in &self.events {
            match ev.phase {
                SpanPhase::Begin => {
                    stack.push((path.len(), ev.ts_ns, 0));
                    if !path.is_empty() {
                        path.push(';');
                    }
                    push_frame(&mut path, ev);
                }
                SpanPhase::End => {
                    let Some((keep, begin_ts, child_ns)) = stack.pop() else {
                        continue; // unbalanced stream (dropped records)
                    };
                    let dur = ev.ts_ns.saturating_sub(begin_ts);
                    let self_ns = dur.saturating_sub(child_ns);
                    *totals.entry(path.clone()).or_insert(0) += self_ns;
                    path.truncate(keep);
                    if let Some(parent) = stack.last_mut() {
                        parent.2 += dur;
                    }
                }
            }
        }
        let mut out = String::new();
        for (p, ns) in &totals {
            let _ = writeln!(out, "{p} {ns}");
        }
        out
    }

    /// The `n` slowest dies as `(die, duration_ns)`, slowest first (ties
    /// broken by die index). Durations are wall clock.
    pub fn slowest_dies(&self, n: usize) -> Vec<(u32, u64)> {
        let mut begin: BTreeMap<u32, u64> = BTreeMap::new();
        let mut durations: Vec<(u32, u64)> = Vec::new();
        for ev in &self.events {
            if ev.kind != SpanKind::Die || ev.die == NO_DIE {
                continue;
            }
            match ev.phase {
                SpanPhase::Begin => {
                    begin.insert(ev.die, ev.ts_ns);
                }
                SpanPhase::End => {
                    if let Some(t0) = begin.remove(&ev.die) {
                        durations.push((ev.die, ev.ts_ns.saturating_sub(t0)));
                    }
                }
            }
        }
        durations.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        durations.truncate(n);
        durations
    }

    /// The `n` slowest corners as `(die, corner, duration_ns)`, slowest
    /// first (ties broken by die then corner index). Durations are wall
    /// clock.
    pub fn slowest_corners(&self, n: usize) -> Vec<(u32, i32, u64)> {
        let mut begin: BTreeMap<(u32, i32), u64> = BTreeMap::new();
        let mut durations: Vec<(u32, i32, u64)> = Vec::new();
        for ev in &self.events {
            if ev.kind != SpanKind::Corner {
                continue;
            }
            match ev.phase {
                SpanPhase::Begin => {
                    begin.insert((ev.die, ev.corner), ev.ts_ns);
                }
                SpanPhase::End => {
                    if let Some(t0) = begin.remove(&(ev.die, ev.corner)) {
                        durations.push((ev.die, ev.corner, ev.ts_ns.saturating_sub(t0)));
                    }
                }
            }
        }
        durations.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
        durations.truncate(n);
        durations
    }
}

fn push_frame(path: &mut String, ev: &TraceEvent) {
    path.push_str(ev.kind.label());
    if !ev.label.is_empty() {
        path.push(':');
        path.push_str(ev.label);
    }
}

fn write_chrome_event(out: &mut String, ev: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"pid\":0,\
         \"tid\":{},\"ts\":{}.{:03},\"args\":{{",
        ev.kind.label(),
        ev.kind.category(),
        ev.phase.chrome(),
        ev.worker,
        ev.ts_ns / 1000,
        ev.ts_ns % 1000,
    );
    let _ = write!(out, "\"seq\":{}", ev.seq);
    if ev.die != NO_DIE {
        let _ = write!(out, ",\"die\":{}", ev.die);
    }
    if ev.corner >= 0 {
        let _ = write!(out, ",\"corner\":{}", ev.corner);
    }
    if ev.attempt >= 0 {
        let _ = write!(out, ",\"attempt\":{}", ev.attempt);
    }
    if !ev.label.is_empty() {
        let _ = write!(out, ",\"strategy\":\"{}\"", ev.label);
    }
    if ev.phase == SpanPhase::End {
        let (k0, k1) = ev.kind.payload_keys();
        if !k0.is_empty() {
            let _ = write!(out, ",\"{}\":{}", k0, ev.n0);
        }
        if !k1.is_empty() {
            let _ = write!(out, ",\"{}\":{}", k1, ev.n1);
        }
    }
    out.push_str("}}");
}

/// Blanks the wall-clock fields of a [`Trace::chrome_json`] document so
/// traces from different runs (or thread counts) of the same spec compare
/// byte-identical: the values of `"ts"`, `"tid"` and any key starting
/// with `"nd_"` are replaced by `0`.
///
/// Operates on JSON produced by this crate (keys are plain identifiers;
/// masked values are numbers); it is not a general JSON transformer.
pub fn mask_nondeterministic(json: &str) -> String {
    let bytes = json.as_bytes();
    let mut out = String::with_capacity(json.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            // Find the closing quote of this string token.
            let Some(rel) = json[i + 1..].find('"') else {
                out.push_str(&json[i..]);
                break;
            };
            let key = &json[i + 1..i + 1 + rel];
            let after = i + 1 + rel + 1; // index just past the closing quote
            let is_key = bytes.get(after) == Some(&b':');
            if is_key && (key == "ts" || key == "tid" || key.starts_with("nd_")) {
                out.push_str(&json[i..=after]); // `"key":`
                let mut j = after + 1;
                while j < bytes.len()
                    && matches!(bytes[j], b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E')
                {
                    j += 1;
                }
                out.push('0');
                i = j;
            } else {
                // Copy the whole quoted token so string *values* can never
                // be mistaken for keys.
                out.push_str(&json[i..after]);
                i = after;
            }
        } else {
            // Structural JSON outside strings is ASCII.
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        phase: SpanPhase,
        kind: SpanKind,
        die: u32,
        seq: u32,
        ts_ns: u64,
        worker: u32,
    ) -> TraceEvent {
        TraceEvent {
            phase,
            kind,
            die,
            corner: -1,
            attempt: -1,
            label: "",
            seq,
            ts_ns,
            worker,
            n0: 0,
            n1: 0,
        }
    }

    /// campaign[0..1000] ⊃ die0[100..400] ⊃ newton[150..250]
    fn sample_trace(ts_shift: u64, worker: u32) -> Trace {
        let mut t = Trace::default();
        t.events.push(ev(
            SpanPhase::Begin,
            SpanKind::Campaign,
            NO_DIE,
            0,
            ts_shift,
            0,
        ));
        t.events.push(ev(
            SpanPhase::Begin,
            SpanKind::Die,
            0,
            0,
            100 + ts_shift,
            worker,
        ));
        let mut n = ev(
            SpanPhase::Begin,
            SpanKind::Newton,
            0,
            1,
            150 + ts_shift,
            worker,
        );
        t.events.push(n);
        n.phase = SpanPhase::End;
        n.seq = 2;
        n.ts_ns = 250 + ts_shift;
        n.n0 = 6;
        n.n1 = 2;
        t.events.push(n);
        t.events.push(ev(
            SpanPhase::End,
            SpanKind::Die,
            0,
            3,
            400 + ts_shift,
            worker,
        ));
        t.events.push(ev(
            SpanPhase::End,
            SpanKind::Campaign,
            NO_DIE,
            1,
            1000 + ts_shift,
            0,
        ));
        t
    }

    #[test]
    fn chrome_json_has_schema_and_payloads() {
        let json = sample_trace(0, 3).chrome_json();
        assert!(json.contains("\"schema\":\"icvbe-campaign-trace-v1\""));
        assert!(json.contains("\"name\":\"die\""));
        assert!(json.contains("\"cat\":\"solver\""));
        // Newton end carries its iteration payload deterministically.
        assert!(json.contains("\"iters\":6,\"polish\":2"));
        // ts is µs with ns precision: 250 ns → 0.250.
        assert!(json.contains("\"ts\":0.250"));
        // Begin events carry no payload keys.
        assert!(!json.contains("\"iters\":0"));
    }

    #[test]
    fn masking_makes_shifted_runs_byte_identical() {
        // Same logical stream, different wall clock and worker placement.
        let a = sample_trace(0, 3).chrome_json();
        let b = sample_trace(77777, 1).chrome_json();
        assert_ne!(a, b, "raw traces differ in wall-clock fields");
        assert_eq!(mask_nondeterministic(&a), mask_nondeterministic(&b));
        assert!(mask_nondeterministic(&a).contains("\"ts\":0,"));
        assert!(mask_nondeterministic(&a).contains("\"tid\":0,"));
    }

    #[test]
    fn masking_blanks_nd_prefixed_args_only() {
        let json = "{\"args\":{\"nd_buffer\":17,\"iters\":9,\"strategy\":\"ts\"}}";
        let masked = mask_nondeterministic(json);
        assert_eq!(
            masked, "{\"args\":{\"nd_buffer\":0,\"iters\":9,\"strategy\":\"ts\"}}",
            "nd_ values masked, deterministic payloads and string values kept"
        );
    }

    #[test]
    fn folded_reports_self_time_per_path() {
        let folded = sample_trace(0, 0).folded();
        let lines: Vec<&str> = folded.lines().collect();
        // campaign self = 1000 - die dur 300 = 700; die self = 300 - 100;
        // newton self = 100.
        assert_eq!(
            lines,
            vec![
                "campaign 700",
                "campaign;die 200",
                "campaign;die;newton 100",
            ]
        );
    }

    #[test]
    fn folded_saturates_parallel_children_at_zero() {
        // Two dies each 900 ns under a 1000 ns campaign (parallel
        // workers): campaign self time saturates at 0 instead of
        // underflowing.
        let mut t = Trace::default();
        t.events
            .push(ev(SpanPhase::Begin, SpanKind::Campaign, NO_DIE, 0, 0, 0));
        for die in 0..2u32 {
            t.events
                .push(ev(SpanPhase::Begin, SpanKind::Die, die, 0, 50, die));
            t.events
                .push(ev(SpanPhase::End, SpanKind::Die, die, 1, 950, die));
        }
        t.events
            .push(ev(SpanPhase::End, SpanKind::Campaign, NO_DIE, 1, 1000, 0));
        assert_eq!(t.folded(), "campaign 0\ncampaign;die 1800\n");
    }

    #[test]
    fn slowest_dies_and_corners_rank_by_duration() {
        let mut t = Trace::default();
        for (die, dur) in [(0u32, 300u64), (1, 900), (2, 500)] {
            t.events
                .push(ev(SpanPhase::Begin, SpanKind::Die, die, 0, 1000, 0));
            t.events
                .push(ev(SpanPhase::End, SpanKind::Die, die, 1, 1000 + dur, 0));
            for (corner, cdur) in [(0i32, dur / 2), (1, dur / 4)] {
                let mut b = ev(SpanPhase::Begin, SpanKind::Corner, die, 2, 1000, 0);
                b.corner = corner;
                t.events.push(b);
                b.phase = SpanPhase::End;
                b.ts_ns = 1000 + cdur;
                t.events.push(b);
            }
        }
        assert_eq!(t.slowest_dies(2), vec![(1, 900), (2, 500)]);
        assert_eq!(
            t.slowest_corners(3),
            vec![(1, 0, 450), (2, 0, 250), (1, 1, 225)]
        );
    }
}
