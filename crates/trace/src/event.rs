//! The span record vocabulary: what kinds of work are traced and what a
//! single begin/end record carries.

/// Sentinel die index for events that are not attributed to any die
/// (e.g. the campaign-level root span).
pub const NO_DIE: u32 = u32::MAX;

/// Number of coarse per-die stages (sample / measure / extract) — must
/// match the campaign metrics stage table.
pub const STAGE_COUNT: usize = 3;

/// What a span measures. The hierarchy mirrors the pipeline:
/// `Campaign ⊃ Die ⊃ {Sample, Corner ⊃ {Measure, Attempt ⊃ Extract ⊃
/// RobustFit}} ⊃ DcSolve ⊃ Rung ⊃ Newton`, with `QueueWait` spans as
/// campaign-level siblings of each die recording reorder-buffer latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanKind {
    /// The whole campaign run, opened by the fold thread.
    Campaign,
    /// One die's full pipeline (sample → measure → extract across corners).
    Die,
    /// Process-parameter sampling for a die.
    Sample,
    /// One bias/temperature corner of a die.
    Corner,
    /// Bench measurement sweep for a corner (DC solves + self-heating).
    Measure,
    /// One extraction attempt inside the retry/recovery loop.
    Attempt,
    /// Parameter extraction work within an attempt.
    Extract,
    /// Robust (IRLS + LM) fit inside an extraction.
    RobustFit,
    /// A full DC operating-point solve (the escalation ladder).
    DcSolve,
    /// One rung of the DC escalation ladder (labelled with the strategy).
    Rung,
    /// One Newton solve inside a ladder rung.
    Newton,
    /// Time a finished die waited in the fold thread's reorder buffer.
    QueueWait,
    /// One service job: begin at admission into the scheduler, end at
    /// completion/cancellation. `n0` carries the job id on both records.
    Job,
    /// Time a service job spent queued before its first execution slice
    /// (the backpressure-visible wait). `n0` carries the job id; `n1` on
    /// the end record carries the queue depth observed at dispatch.
    Queue,
}

impl SpanKind {
    /// Stable lowercase name used for Chrome event names and folded-stack
    /// frames.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Campaign => "campaign",
            SpanKind::Die => "die",
            SpanKind::Sample => "sample",
            SpanKind::Corner => "corner",
            SpanKind::Measure => "measure",
            SpanKind::Attempt => "attempt",
            SpanKind::Extract => "extract",
            SpanKind::RobustFit => "robust_fit",
            SpanKind::DcSolve => "dc_solve",
            SpanKind::Rung => "rung",
            SpanKind::Newton => "newton",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Job => "job",
            SpanKind::Queue => "queue",
        }
    }

    /// Index into the coarse stage table for the three stage-kind spans
    /// (`Sample` → 0, `Measure` → 1, `Extract` → 2), `None` otherwise.
    /// These indices match `STAGE_NAMES` in the campaign metrics.
    pub fn stage_index(self) -> Option<usize> {
        match self {
            SpanKind::Sample => Some(0),
            SpanKind::Measure => Some(1),
            SpanKind::Extract => Some(2),
            _ => None,
        }
    }

    /// Chrome trace-event category (`cat`), used by Perfetto for
    /// filtering and colouring.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Campaign => "campaign",
            SpanKind::Die | SpanKind::Corner => "die",
            SpanKind::Sample | SpanKind::Measure | SpanKind::Extract => "stage",
            SpanKind::Attempt | SpanKind::RobustFit => "extract",
            SpanKind::DcSolve | SpanKind::Rung | SpanKind::Newton => "solver",
            SpanKind::QueueWait => "pool",
            SpanKind::Job | SpanKind::Queue => "service",
        }
    }

    /// Argument names for the two payload counters carried on this
    /// kind's **end** event. An empty name means the slot is unused and
    /// must be omitted from exports. Names prefixed `nd_` are
    /// nondeterministic (masked by golden-fixture tests); all others are
    /// deterministic solver counters.
    pub fn payload_keys(self) -> (&'static str, &'static str) {
        match self {
            SpanKind::Newton => ("iters", "polish"),
            SpanKind::DcSolve => ("iters", ""),
            SpanKind::RobustFit => ("rounds", "outliers"),
            SpanKind::Attempt => ("ok", ""),
            SpanKind::QueueWait => ("nd_buffer", ""),
            SpanKind::Job => ("job", ""),
            SpanKind::Queue => ("job", "nd_depth"),
            _ => ("", ""),
        }
    }
}

/// Whether a record opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanPhase {
    /// Span entry (Chrome phase `B`).
    Begin,
    /// Span exit (Chrome phase `E`).
    End,
}

impl SpanPhase {
    /// The Chrome trace-event `ph` character.
    pub fn chrome(self) -> char {
        match self {
            SpanPhase::Begin => 'B',
            SpanPhase::End => 'E',
        }
    }
}

/// One span begin/end record.
///
/// # Determinism contract
///
/// For a fixed campaign spec, the fields `phase`, `kind`, `die`,
/// `corner`, `attempt`, `label`, `seq`, `n0` and `n1` are identical at
/// any worker-thread count (with the single exception of `QueueWait`
/// payloads, whose `nd_`-prefixed argument names mark them as
/// nondeterministic). `ts_ns` and `worker` are wall-clock/schedule facts
/// and vary run to run; exports place them only in fields that
/// [`crate::mask_nondeterministic`] knows how to blank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Begin or end.
    pub phase: SpanPhase,
    /// What the span measures.
    pub kind: SpanKind,
    /// Die index, or [`NO_DIE`] for campaign-level events.
    pub die: u32,
    /// Corner index within the die, or `-1` when not inside a corner.
    pub corner: i32,
    /// Recovery-attempt ordinal, or `-1` when not inside an attempt.
    pub attempt: i32,
    /// Static annotation (e.g. the DC ladder strategy); empty when none.
    pub label: &'static str,
    /// Logical sequence number: position of this record within its die's
    /// event stream (deterministic; resets to 0 at each die begin).
    pub seq: u32,
    /// Nanoseconds since the campaign epoch. **Nondeterministic.**
    pub ts_ns: u64,
    /// Worker-thread ordinal that emitted the record. **Nondeterministic**
    /// (dies migrate between workers run to run).
    pub worker: u32,
    /// First payload counter; meaning given by [`SpanKind::payload_keys`].
    pub n0: u64,
    /// Second payload counter; meaning given by [`SpanKind::payload_keys`].
    pub n1: u64,
}
