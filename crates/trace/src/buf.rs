//! Per-worker span capture: a bounded buffer the die pipeline writes
//! begin/end records into, plus the coarse stage accumulators that
//! replace the old ad-hoc `DieTiming` stopwatch plumbing.

use std::time::Instant;

use crate::event::{SpanKind, SpanPhase, TraceEvent, NO_DIE, STAGE_COUNT};

/// Default per-die event capacity. A paper-default die emits a few
/// hundred records (≈16 corners × ~20 solver spans); 2^16 leaves two
/// orders of magnitude of headroom for pathological retry storms while
/// bounding worst-case memory at ~4 MiB per worker.
pub const TRACE_EVENT_CAPACITY: usize = 1 << 16;

/// Proof that a stage span was opened; hand it back to
/// [`TraceBuf::stage_end`]. Stage tokens always carry a start instant —
/// stage timing is the pre-existing `DieTiming` cost and is paid whether
/// or not tracing is enabled.
#[derive(Debug, Clone, Copy)]
#[must_use = "a stage span must be closed with TraceBuf::stage_end"]
pub struct StageToken {
    kind: SpanKind,
    start: Instant,
}

/// Proof that a fine-grained span was opened; hand it back to one of the
/// [`TraceBuf::span_end`] family. When tracing is disabled the token is
/// disarmed and carries no clock reading — opening and closing it is a
/// branch and nothing else.
#[derive(Debug, Clone, Copy)]
#[must_use = "a span must be closed with TraceBuf::span_end*"]
pub struct SpanToken {
    kind: SpanKind,
    label: &'static str,
    armed: bool,
}

/// A per-worker span buffer.
///
/// Lifecycle: the pool calls [`enable`](TraceBuf::enable) once per worker
/// when tracing is requested (a default buffer is disabled and records
/// nothing). For each die, the pipeline brackets work with
/// [`begin_die`](TraceBuf::begin_die) / [`end_die`](TraceBuf::end_die);
/// in between it opens coarse stage spans with
/// [`stage`](TraceBuf::stage) (always timed — these feed the campaign's
/// stage histograms) and fine solver spans with
/// [`span`](TraceBuf::span) (no-ops unless enabled).
///
/// The buffer is bounded: beyond [`capacity`](TraceBuf::set_capacity)
/// events per die, further records are counted in
/// [`dropped`](TraceBuf::dropped) and discarded, so a retry storm cannot
/// balloon memory.
#[derive(Debug, Clone)]
pub struct TraceBuf {
    enabled: bool,
    epoch: Instant,
    worker: u32,
    die: u32,
    corner: i32,
    attempt: i32,
    seq: u32,
    events: Vec<TraceEvent>,
    dropped: u64,
    stage_ns: [u64; STAGE_COUNT],
    capacity: usize,
}

impl Default for TraceBuf {
    fn default() -> Self {
        Self {
            enabled: false,
            epoch: Instant::now(),
            worker: 0,
            die: NO_DIE,
            corner: -1,
            attempt: -1,
            seq: 0,
            events: Vec::new(),
            dropped: 0,
            stage_ns: [0; STAGE_COUNT],
            capacity: TRACE_EVENT_CAPACITY,
        }
    }
}

impl TraceBuf {
    /// A disabled buffer: stage accumulators work, no events are stored.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns event capture on. `epoch` is the shared campaign start
    /// instant (all workers must use the same one so timestamps are
    /// comparable across threads); `worker` is this worker's ordinal.
    pub fn enable(&mut self, epoch: Instant, worker: u32) {
        self.enabled = true;
        self.epoch = epoch;
        self.worker = worker;
    }

    /// Whether event capture is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Events discarded because a die exceeded the buffer capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Overrides the per-die event capacity (mainly for tests; the
    /// default is [`TRACE_EVENT_CAPACITY`]).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Opens a die: resets the logical sequence counter, the coarse stage
    /// accumulators and the event buffer, and emits the die's root span
    /// begin.
    pub fn begin_die(&mut self, die: u32) {
        self.die = die;
        self.corner = -1;
        self.attempt = -1;
        self.seq = 0;
        self.stage_ns = [0; STAGE_COUNT];
        self.events.clear();
        self.emit(SpanPhase::Begin, SpanKind::Die, "", 0, 0);
    }

    /// Closes the current die and drains its records: returns the
    /// accumulated `[sample, measure, extract]` stage nanoseconds and the
    /// die's event stream (empty when disabled).
    pub fn end_die(&mut self) -> ([u64; STAGE_COUNT], Vec<TraceEvent>) {
        self.corner = -1;
        self.attempt = -1;
        self.emit(SpanPhase::End, SpanKind::Die, "", 0, 0);
        let stage_ns = self.stage_ns;
        self.stage_ns = [0; STAGE_COUNT];
        self.die = NO_DIE;
        (stage_ns, std::mem::take(&mut self.events))
    }

    /// Sets the corner index stamped on subsequent records (`-1` clears).
    pub fn set_corner(&mut self, corner: i32) {
        self.corner = corner;
    }

    /// Sets the recovery-attempt ordinal stamped on subsequent records
    /// (`-1` clears).
    pub fn set_attempt(&mut self, attempt: i32) {
        self.attempt = attempt;
    }

    /// Opens a coarse stage span. Always reads the clock — this is the
    /// measurement that feeds `DieTiming` and the campaign stage
    /// histograms, enabled or not.
    pub fn stage(&mut self, kind: SpanKind) -> StageToken {
        let start = Instant::now();
        if self.enabled {
            self.emit(SpanPhase::Begin, kind, "", 0, 0);
        }
        StageToken { kind, start }
    }

    /// Closes a stage span, **accumulating** (`+=`) its duration into the
    /// per-die stage total. Accumulation is the contract: a stage entered
    /// several times per die (e.g. extract across retry attempts) sums,
    /// never overwrites.
    pub fn stage_end(&mut self, token: StageToken) {
        let dur = token.start.elapsed().as_nanos() as u64;
        if let Some(i) = token.kind.stage_index() {
            self.stage_ns[i] += dur;
        }
        if self.enabled {
            self.emit(SpanPhase::End, token.kind, "", 0, 0);
        }
    }

    /// Opens a fine-grained span. Disabled buffers return a disarmed
    /// token without touching the clock or the buffer.
    pub fn span(&mut self, kind: SpanKind) -> SpanToken {
        self.span_labeled(kind, "")
    }

    /// Like [`span`](TraceBuf::span) with a static annotation (e.g. the
    /// DC ladder strategy name) stamped on the begin record.
    pub fn span_labeled(&mut self, kind: SpanKind, label: &'static str) -> SpanToken {
        if !self.enabled {
            return SpanToken {
                kind,
                label,
                armed: false,
            };
        }
        self.emit(SpanPhase::Begin, kind, label, 0, 0);
        SpanToken {
            kind,
            label,
            armed: true,
        }
    }

    /// Closes a fine-grained span with no payload.
    pub fn span_end(&mut self, token: SpanToken) {
        self.span_end_with(token, 0, 0);
    }

    /// Closes a fine-grained span with payload counters (meaning per
    /// [`SpanKind::payload_keys`]).
    pub fn span_end_with(&mut self, token: SpanToken, n0: u64, n1: u64) {
        if !token.armed {
            return;
        }
        self.emit(SpanPhase::End, token.kind, token.label, n0, n1);
    }

    fn emit(&mut self, phase: SpanPhase, kind: SpanKind, label: &'static str, n0: u64, n1: u64) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let ev = TraceEvent {
            phase,
            kind,
            die: self.die,
            corner: self.corner,
            attempt: self.attempt,
            label,
            seq: self.seq,
            ts_ns: self.epoch.elapsed().as_nanos() as u64,
            worker: self.worker,
            n0,
            n1,
        };
        self.seq += 1;
        self.events.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_records_nothing_but_still_accumulates_stages() {
        let mut buf = TraceBuf::new();
        buf.begin_die(3);
        let t = buf.stage(SpanKind::Sample);
        buf.stage_end(t);
        let s = buf.span(SpanKind::Newton);
        buf.span_end_with(s, 7, 1);
        let (stage_ns, events) = buf.end_die();
        assert!(events.is_empty(), "disabled buffers must not store events");
        assert_eq!(buf.dropped(), 0);
        // The stage stopwatch still ran (it feeds DieTiming regardless).
        assert!(stage_ns[1] == 0 && stage_ns[2] == 0);
    }

    #[test]
    fn stage_durations_accumulate_rather_than_overwrite() {
        // Regression guard for the DieTiming `=` vs `+=` bug: entering
        // the same stage twice in one die must sum both durations.
        let mut buf = TraceBuf::new();
        buf.begin_die(0);
        let t1 = buf.stage(SpanKind::Extract);
        std::thread::sleep(std::time::Duration::from_millis(2));
        buf.stage_end(t1);
        let (once, _) = buf.end_die();

        buf.begin_die(1);
        let t1 = buf.stage(SpanKind::Extract);
        std::thread::sleep(std::time::Duration::from_millis(2));
        buf.stage_end(t1);
        let t2 = buf.stage(SpanKind::Extract);
        std::thread::sleep(std::time::Duration::from_millis(2));
        buf.stage_end(t2);
        let (twice, _) = buf.end_die();

        // `sleep` guarantees a *minimum* duration, so these bounds hold
        // under arbitrary scheduler load: one 2 ms entry is at least 2 ms,
        // and two entries must *sum* to at least 4 ms. The old `=` bug
        // kept only the last entry, which typically lands under 4 ms.
        assert!(once[2] >= 2_000_000, "single entry ran: {}", once[2]);
        assert!(
            twice[2] >= 4_000_000,
            "second stage entry must add to the total, not replace it \
             (once={} twice={})",
            once[2],
            twice[2]
        );
    }

    #[test]
    fn enabled_buffer_emits_balanced_die_ordered_records() {
        let mut buf = TraceBuf::new();
        buf.enable(Instant::now(), 4);
        buf.begin_die(9);
        buf.set_corner(2);
        let m = buf.stage(SpanKind::Measure);
        let s = buf.span_labeled(SpanKind::Rung, "warm_start");
        buf.span_end_with(s, 5, 0);
        buf.stage_end(m);
        buf.set_corner(-1);
        let (_, events) = buf.end_die();

        let kinds: Vec<(SpanPhase, SpanKind)> = events.iter().map(|e| (e.phase, e.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (SpanPhase::Begin, SpanKind::Die),
                (SpanPhase::Begin, SpanKind::Measure),
                (SpanPhase::Begin, SpanKind::Rung),
                (SpanPhase::End, SpanKind::Rung),
                (SpanPhase::End, SpanKind::Measure),
                (SpanPhase::End, SpanKind::Die),
            ]
        );
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.seq, i as u32, "seq is the per-die emission order");
            assert_eq!(ev.worker, 4);
            assert_eq!(ev.die, 9);
        }
        assert_eq!(events[2].label, "warm_start");
        assert_eq!(events[3].n0, 5);
        assert_eq!(events[1].corner, 2, "corner stamps records inside it");
        assert_eq!(events[5].corner, -1, "die end is outside any corner");
    }

    #[test]
    fn begin_die_resets_sequence_and_stage_totals() {
        let mut buf = TraceBuf::new();
        buf.enable(Instant::now(), 0);
        buf.begin_die(0);
        let t = buf.stage(SpanKind::Sample);
        buf.stage_end(t);
        let (first, events) = buf.end_die();
        assert_eq!(events.len(), 4);
        // `first[0]` is wall clock — its magnitude is untestable, but the
        // reset below must not depend on what this die accumulated.
        let _ = first;

        buf.begin_die(1);
        let (second, events) = buf.end_die();
        assert_eq!(second, [0; STAGE_COUNT], "stage totals reset per die");
        assert_eq!(events[0].seq, 0, "sequence numbers reset per die");
        assert_eq!(events[0].die, 1);
    }

    #[test]
    fn capacity_bound_drops_and_counts_overflow() {
        let mut buf = TraceBuf::new();
        buf.enable(Instant::now(), 0);
        buf.set_capacity(4);
        buf.begin_die(0);
        for _ in 0..10 {
            let s = buf.span(SpanKind::Newton);
            buf.span_end(s);
        }
        let (_, events) = buf.end_die();
        assert_eq!(events.len(), 4, "buffer is bounded at its capacity");
        // 1 die-begin + 20 span records + 1 die-end = 22 attempts, 4 kept.
        assert_eq!(buf.dropped(), 18);
    }
}
