//! Structured tracing for the extraction pipeline: span records with a
//! deterministic logical order and clearly-separated wall-clock fields.
//!
//! The campaign engine's headline guarantee is bit-reproducibility at any
//! worker-thread count. An observability layer must not weaken that, so
//! every record this crate produces is split into two classes of fields:
//!
//! - **Deterministic**: span kind, die index, corner, attempt, strategy
//!   label, payload counts (Newton iterations, IRLS rounds, …) and the
//!   per-die logical sequence number. These depend only on the campaign
//!   spec — two runs of the same spec produce identical values at 1, 2 or
//!   64 threads.
//! - **Nondeterministic** (wall clock): timestamps, durations derived from
//!   them, the worker-thread id, and any payload whose key starts with
//!   `nd_`. Golden-fixture tests mask exactly these via
//!   [`mask_nondeterministic`].
//!
//! The moving parts:
//!
//! - [`TraceBuf`] — a per-worker bounded buffer. The die pipeline opens it
//!   with [`TraceBuf::begin_die`], emits begin/end events through span
//!   tokens, and drains the die's records (plus its accumulated coarse
//!   stage totals) with [`TraceBuf::end_die`]. Disabled buffers record
//!   nothing and never touch the clock on the deep-span path, so tracing
//!   is a no-op unless explicitly enabled.
//! - [`Trace`] — the merged, die-ordered event stream of a whole run, with
//!   two exports: Chrome trace-event JSON ([`Trace::chrome_json`],
//!   loadable in Perfetto / `chrome://tracing`) and a collapsed-stack
//!   profile ([`Trace::folded`]) for flamegraph tooling.
//!
//! This crate is dependency-free (`std` only) by the workspace's hermetic
//! build rule.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod buf;
mod event;
mod export;

pub use buf::{SpanToken, StageToken, TraceBuf, TRACE_EVENT_CAPACITY};
pub use event::{SpanKind, SpanPhase, TraceEvent, NO_DIE, STAGE_COUNT};
pub use export::{mask_nondeterministic, Trace};
