//! Steady-state thermal path from junction to ambient.

use icvbe_units::Kelvin;

use crate::ThermalError;

/// A series junction→case→ambient thermal path.
///
/// Steady state only (the paper waits for "complete thermal equilibrium" at
/// every measurement point, so no thermal capacitances are needed).
///
/// # Examples
///
/// ```
/// use icvbe_thermal::network::ThermalPath;
///
/// let p = ThermalPath::new(80.0, 40.0)?;
/// assert_eq!(p.junction_to_ambient(), 120.0);
/// # Ok::<(), icvbe_thermal::ThermalError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalPath {
    /// Junction-to-case thermal resistance, K/W.
    rth_jc: f64,
    /// Case-to-ambient thermal resistance, K/W.
    rth_ca: f64,
}

impl ThermalPath {
    /// Creates a path from its two series resistances (K/W).
    ///
    /// # Errors
    ///
    /// [`ThermalError::BadParameter`] if either resistance is negative or
    /// non-finite.
    pub fn new(rth_jc: f64, rth_ca: f64) -> Result<Self, ThermalError> {
        for (label, v) in [("junction-to-case", rth_jc), ("case-to-ambient", rth_ca)] {
            if !(v >= 0.0) || !v.is_finite() {
                return Err(ThermalError::parameter(format!(
                    "{label} resistance must be non-negative and finite, got {v}"
                )));
            }
        }
        Ok(ThermalPath { rth_jc, rth_ca })
    }

    /// A ceramic DIP package typical of a 2002-era characterization bench:
    /// `Rth(j-c) = 60 K/W`, `Rth(c-a) = 40 K/W`.
    #[must_use]
    pub fn ceramic_dip() -> Self {
        ThermalPath {
            rth_jc: 60.0,
            rth_ca: 40.0,
        }
    }

    /// The paper bench's package mounted in still air: 80 K/W junction to
    /// case, 70 K/W case to ambient.
    #[must_use]
    pub fn still_air_dip() -> Self {
        ThermalPath {
            rth_jc: 80.0,
            rth_ca: 70.0,
        }
    }

    /// A perfectly heat-sunk mount (no self-heating): both resistances 0.
    #[must_use]
    pub fn ideal() -> Self {
        ThermalPath {
            rth_jc: 0.0,
            rth_ca: 0.0,
        }
    }

    /// Total junction-to-ambient resistance, K/W.
    #[must_use]
    pub fn junction_to_ambient(&self) -> f64 {
        self.rth_jc + self.rth_ca
    }

    /// Both resistances multiplied by `factor` (per-die package spread:
    /// Monte-Carlo samples scale a nominal path).
    ///
    /// # Errors
    ///
    /// [`ThermalError::BadParameter`] if the scaled resistances are
    /// negative or non-finite.
    pub fn scaled(&self, factor: f64) -> Result<Self, ThermalError> {
        ThermalPath::new(self.rth_jc * factor, self.rth_ca * factor)
    }

    /// Junction-to-case resistance, K/W.
    #[must_use]
    pub fn rth_jc(&self) -> f64 {
        self.rth_jc
    }

    /// Case-to-ambient resistance, K/W.
    #[must_use]
    pub fn rth_ca(&self) -> f64 {
        self.rth_ca
    }

    /// Die temperature for a given ambient and dissipated power (one-way,
    /// no feedback).
    #[must_use]
    pub fn die_temperature(&self, ambient: Kelvin, power_watts: f64) -> Kelvin {
        Kelvin::new(ambient.value() + self.junction_to_ambient() * power_watts)
    }

    /// Case (package surface) temperature — what a contact sensor sees.
    #[must_use]
    pub fn case_temperature(&self, ambient: Kelvin, power_watts: f64) -> Kelvin {
        Kelvin::new(ambient.value() + self.rth_ca * power_watts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_negative_resistance() {
        assert!(ThermalPath::new(-1.0, 0.0).is_err());
        assert!(ThermalPath::new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn die_is_hotter_than_case_is_hotter_than_ambient() {
        let p = ThermalPath::ceramic_dip();
        let amb = Kelvin::new(300.0);
        let power = 10e-3;
        let die = p.die_temperature(amb, power);
        let case = p.case_temperature(amb, power);
        assert!(die.value() > case.value());
        assert!(case.value() > amb.value());
        assert!((die.value() - 301.0).abs() < 1e-12); // 100 K/W * 10 mW
    }

    #[test]
    fn ideal_path_has_no_rise() {
        let p = ThermalPath::ideal();
        let die = p.die_temperature(Kelvin::new(250.0), 1.0);
        assert_eq!(die.value(), 250.0);
    }

    #[test]
    fn zero_power_means_ambient_everywhere() {
        let p = ThermalPath::ceramic_dip();
        assert_eq!(p.die_temperature(Kelvin::new(223.0), 0.0).value(), 223.0);
        assert_eq!(p.case_temperature(Kelvin::new(223.0), 0.0).value(), 223.0);
    }
}
