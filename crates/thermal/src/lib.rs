//! Ambient-to-die thermal modelling for the `icvbe` reproduction.
//!
//! Table 1 of the paper is entirely about the gap between the temperature a
//! chamber-mounted sensor reads and the temperature the silicon die
//! actually runs at. That gap has two ingredients this crate models:
//!
//! - a steady-state thermal path from the die through the package to the
//!   ambient ([`network`]), and
//! - the electro-thermal feedback loop — dissipated power heats the die,
//!   which changes the dissipated power ([`selfheat`]) — solved as a fixed
//!   point,
//! - plus the measurement side: a thermal chamber whose sensor sits on the
//!   package, not the junction ([`chamber`]).
//!
//! # Examples
//!
//! ```
//! use icvbe_thermal::network::ThermalPath;
//! use icvbe_thermal::selfheat::solve_die_temperature;
//! use icvbe_units::Kelvin;
//!
//! let path = ThermalPath::ceramic_dip();
//! // A constant 5 mW dissipation raises the die by Rth * P.
//! let die = solve_die_temperature(Kelvin::new(298.15), &path, |_| 5e-3, 1e-9, 50)?;
//! assert!(die.temperature.value() > 298.15);
//! # Ok::<(), icvbe_thermal::ThermalError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chamber;
mod error;
pub mod network;
pub mod selfheat;

pub use error::ThermalError;
