//! Error type for thermal solves.

use std::error::Error;
use std::fmt;

/// Error produced by thermal modelling routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A thermal resistance or power input is unphysical.
    BadParameter {
        /// Human-readable description.
        detail: String,
    },
    /// The electro-thermal fixed point did not converge (thermal runaway or
    /// an oscillating power law).
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Last temperature change magnitude in kelvin.
        last_step: f64,
    },
}

impl ThermalError {
    /// Convenience constructor for [`ThermalError::BadParameter`].
    #[must_use]
    pub fn parameter(detail: impl Into<String>) -> Self {
        ThermalError::BadParameter {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::BadParameter { detail } => write!(f, "bad thermal parameter: {detail}"),
            ThermalError::NoConvergence {
                iterations,
                last_step,
            } => write!(
                f,
                "electro-thermal fixed point did not converge after {iterations} iterations \
                 (last step {last_step} K)"
            ),
        }
    }
}

impl Error for ThermalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ThermalError::parameter("negative Rth")
            .to_string()
            .contains("Rth"));
        let e = ThermalError::NoConvergence {
            iterations: 7,
            last_step: 0.5,
        };
        assert!(e.to_string().contains('7'));
    }
}
