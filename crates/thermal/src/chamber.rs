//! The thermal chamber and where its sensor actually sits.
//!
//! The paper's bench: component and Pt100 sensor inside a hermetic
//! partition, each point measured "in complete thermal equilibrium". Even
//! so, the sensor is mounted *on* the package — it reads the case
//! temperature, not the junction. This module models that geometry.

use icvbe_units::{Celsius, Kelvin};

use crate::network::ThermalPath;

/// A thermal chamber holding a device under test and a contact sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalChamber {
    /// Setpoint of the chamber controller.
    setpoint: Kelvin,
    /// Steady-state control error: actual ambient minus setpoint, kelvin.
    control_offset: f64,
}

impl ThermalChamber {
    /// Creates a chamber at a setpoint with a given steady-state control
    /// offset (0 for an ideal controller).
    #[must_use]
    pub fn new(setpoint: Kelvin, control_offset: f64) -> Self {
        ThermalChamber {
            setpoint,
            control_offset,
        }
    }

    /// An ideal chamber at the given setpoint.
    #[must_use]
    pub fn ideal(setpoint: Kelvin) -> Self {
        ThermalChamber::new(setpoint, 0.0)
    }

    /// Convenience: ideal chamber at a Celsius setpoint.
    #[must_use]
    pub fn at_celsius(c: f64) -> Self {
        ThermalChamber::ideal(Celsius::new(c).to_kelvin())
    }

    /// The setpoint.
    #[must_use]
    pub fn setpoint(&self) -> Kelvin {
        self.setpoint
    }

    /// The actual ambient around the device once settled.
    #[must_use]
    pub fn ambient(&self) -> Kelvin {
        Kelvin::new(self.setpoint.value() + self.control_offset)
    }

    /// What a contact sensor on the package reads when the die dissipates
    /// `power_watts` through `path`: the *case* temperature, which lags the
    /// junction by `Rth(j-c) * P`.
    #[must_use]
    pub fn sensor_reading(&self, path: &ThermalPath, power_watts: f64) -> Kelvin {
        path.case_temperature(self.ambient(), power_watts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_celsius_round_trip() {
        let c = ThermalChamber::at_celsius(-50.0);
        assert!((c.setpoint().value() - 223.15).abs() < 1e-12);
        assert_eq!(c.ambient().value(), c.setpoint().value());
    }

    #[test]
    fn control_offset_shifts_ambient() {
        let c = ThermalChamber::new(Kelvin::new(300.0), 0.7);
        assert!((c.ambient().value() - 300.7).abs() < 1e-12);
    }

    #[test]
    fn sensor_reads_case_not_junction() {
        let chamber = ThermalChamber::ideal(Kelvin::new(300.0));
        let path = ThermalPath::ceramic_dip();
        let power = 10e-3;
        let sensor = chamber.sensor_reading(&path, power);
        let junction = path.die_temperature(chamber.ambient(), power);
        assert!(sensor.value() < junction.value());
        // Gap is Rth(j-c) * P = 60 * 0.01 = 0.6 K.
        assert!((junction.value() - sensor.value() - 0.6).abs() < 1e-12);
    }
}
