//! The electro-thermal fixed point: dissipation heats the die, the die
//! temperature changes the dissipation.
//!
//! In the paper's test cell the bias current is PTAT, so power rises with
//! temperature and the die runs measurably hotter than the chamber sensor —
//! which is exactly what the dVBE-computed temperatures of Table 1 expose.

use icvbe_units::Kelvin;

use crate::network::ThermalPath;
use crate::ThermalError;

/// A converged electro-thermal operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieOperatingPoint {
    /// Converged die (junction) temperature.
    pub temperature: Kelvin,
    /// Dissipated power at the converged temperature, in watts.
    pub power_watts: f64,
    /// Fixed-point iterations used.
    pub iterations: usize,
}

/// Solves `T_die = T_amb + Rth * P(T_die)` by damped fixed-point iteration.
///
/// `power` maps a candidate die temperature to dissipated watts. The
/// iteration is under-relaxed (factor 0.8) which converges for every
/// physically reasonable `Rth * dP/dT < 1` loop gain and damps the rest.
///
/// # Errors
///
/// - [`ThermalError::BadParameter`] if `power` returns a negative or
///   non-finite value.
/// - [`ThermalError::NoConvergence`] if the loop gain is >= 1 (thermal
///   runaway) or the budget is exhausted.
///
/// # Examples
///
/// ```
/// use icvbe_thermal::network::ThermalPath;
/// use icvbe_thermal::selfheat::solve_die_temperature;
/// use icvbe_units::Kelvin;
///
/// let path = ThermalPath::ceramic_dip();
/// // PTAT-ish power: 4 mW at 300 K, +1%/K.
/// let op = solve_die_temperature(
///     Kelvin::new(300.0),
///     &path,
///     |t| 4e-3 * (1.0 + 0.01 * (t.value() - 300.0)),
///     1e-9,
///     100,
/// )?;
/// assert!(op.temperature.value() > 300.3);
/// # Ok::<(), icvbe_thermal::ThermalError>(())
/// ```
pub fn solve_die_temperature(
    ambient: Kelvin,
    path: &ThermalPath,
    power: impl FnMut(Kelvin) -> f64,
    tolerance_kelvin: f64,
    max_iterations: usize,
) -> Result<DieOperatingPoint, ThermalError> {
    solve_die_temperature_from(
        ambient,
        ambient,
        path,
        power,
        tolerance_kelvin,
        max_iterations,
    )
}

/// [`solve_die_temperature`] with an explicit starting temperature for the
/// fixed-point iteration (continuation across neighbouring operating
/// points).
///
/// A good seed — the converged temperature of an adjacent setpoint — cuts
/// the iteration count, but the *trajectory* and therefore the rounding of
/// the converged temperature depend on the seed. Callers that guarantee
/// bit-identical results between seeded and unseeded runs (the campaign
/// engine) deliberately keep `start = ambient` and warm-start only the
/// circuit solves inside `power`, where Newton polishing restores seed
/// independence.
///
/// # Errors
///
/// Same contract as [`solve_die_temperature`].
pub fn solve_die_temperature_from(
    ambient: Kelvin,
    start: Kelvin,
    path: &ThermalPath,
    mut power: impl FnMut(Kelvin) -> f64,
    tolerance_kelvin: f64,
    max_iterations: usize,
) -> Result<DieOperatingPoint, ThermalError> {
    let mut t = start;
    let mut last_step = f64::INFINITY;
    for iter in 0..max_iterations.max(1) {
        let p = power(t);
        if !p.is_finite() || p < 0.0 {
            return Err(ThermalError::parameter(format!(
                "power callback returned {p} W at {t}"
            )));
        }
        let target = path.die_temperature(ambient, p);
        let step = target.value() - t.value();
        last_step = step.abs();
        // Under-relaxation keeps marginally stable loops from ringing.
        t = Kelvin::new(t.value() + 0.8 * step);
        if last_step < tolerance_kelvin {
            return Ok(DieOperatingPoint {
                temperature: t,
                power_watts: p,
                iterations: iter + 1,
            });
        }
    }
    Err(ThermalError::NoConvergence {
        iterations: max_iterations,
        last_step,
    })
}

/// One-shot self-heating estimate (no feedback): evaluates the power at the
/// ambient temperature only. Kept as the ablation baseline against the full
/// fixed point — accurate when the loop gain `Rth * dP/dT` is small.
#[must_use]
pub fn one_shot_die_temperature(
    ambient: Kelvin,
    path: &ThermalPath,
    mut power: impl FnMut(Kelvin) -> f64,
) -> DieOperatingPoint {
    let p = power(ambient);
    DieOperatingPoint {
        temperature: path.die_temperature(ambient, p),
        power_watts: p,
        iterations: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_power_converges_to_closed_form() {
        let path = ThermalPath::ceramic_dip(); // 100 K/W total
        let op = solve_die_temperature(Kelvin::new(300.0), &path, |_| 20e-3, 1e-12, 200).unwrap();
        assert!((op.temperature.value() - 302.0).abs() < 1e-9);
        assert!((op.power_watts - 20e-3).abs() < 1e-15);
    }

    #[test]
    fn feedback_raises_above_one_shot() {
        let path = ThermalPath::ceramic_dip();
        let power = |t: Kelvin| 10e-3 * (1.0 + 0.02 * (t.value() - 300.0));
        let fixed = solve_die_temperature(Kelvin::new(300.0), &path, power, 1e-12, 500).unwrap();
        let shot = one_shot_die_temperature(Kelvin::new(300.0), &path, power);
        assert!(fixed.temperature.value() > shot.temperature.value());
        // Closed form: dT = Rth P0 / (1 - Rth P0' ) with loop gain 0.02 * 1 K/W * 10mW...
        // dT = 1.0 / (1 - 100*10e-3*0.02) = 1/(1-0.02) = 1.0204 K.
        assert!((fixed.temperature.value() - 300.0 - 1.0 / 0.98).abs() < 1e-6);
    }

    #[test]
    fn thermal_runaway_is_detected() {
        let path = ThermalPath::new(1000.0, 0.0).unwrap();
        // Loop gain = Rth * dP/dT = 1000 * 0.01 * 1 = 10 >> 1.
        let r = solve_die_temperature(
            Kelvin::new(300.0),
            &path,
            |t| 1e-3 * (1.0 + 10.0 * (t.value() - 300.0).max(0.0)),
            1e-9,
            60,
        );
        assert!(matches!(r, Err(ThermalError::NoConvergence { .. })));
    }

    #[test]
    fn negative_power_is_rejected() {
        let path = ThermalPath::ideal();
        let r = solve_die_temperature(Kelvin::new(300.0), &path, |_| -1.0, 1e-9, 10);
        assert!(matches!(r, Err(ThermalError::BadParameter { .. })));
    }

    #[test]
    fn ideal_path_returns_ambient() {
        let path = ThermalPath::ideal();
        let op = solve_die_temperature(Kelvin::new(250.0), &path, |_| 1.0, 1e-12, 10).unwrap();
        assert_eq!(op.temperature.value(), 250.0);
    }

    #[test]
    fn seeded_start_converges_to_the_same_point_faster() {
        let path = ThermalPath::ceramic_dip();
        let power = |t: Kelvin| 10e-3 * (1.0 + 0.02 * (t.value() - 300.0));
        let ambient = Kelvin::new(300.0);
        let cold = solve_die_temperature(ambient, &path, power, 1e-9, 500).unwrap();
        let seeded =
            solve_die_temperature_from(ambient, cold.temperature, &path, power, 1e-9, 500).unwrap();
        assert!(seeded.iterations < cold.iterations);
        assert!((seeded.temperature.value() - cold.temperature.value()).abs() < 1e-8);
    }
}
