//! Pins the cost contract of the tracing layer with a counting allocator:
//! with tracing **disabled** (the default), the per-die pipeline's heap
//! traffic in steady state is exactly what it was without the trace layer
//! — identical from die to die, with the disabled `TraceBuf` contributing
//! zero events and zero allocations. With tracing **enabled**, the extra
//! allocations are confined to event storage, which also proves the
//! counter is live rather than vacuously reading zero.
//!
//! Same scaffold as `icvbe-spice`'s `alloc_free.rs`: a global counting
//! allocator gated on a thread-local flag, in its own test binary so
//! unrelated tests can't pollute the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use icvbe_campaign::aggregate::YieldBin;
use icvbe_campaign::die::{run_die_with, DieScratch};
use icvbe_campaign::spec::{CampaignSpec, WaferMap};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_enabled() -> bool {
    // `try_with` so the allocator stays safe during TLS teardown.
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_enabled() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_enabled() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    let out = f();
    COUNTING.with(|c| c.set(false));
    (ALLOCS.load(Ordering::Relaxed) - a0, out)
}

#[test]
fn disabled_tracing_adds_no_steady_state_allocations() {
    let spec = CampaignSpec::paper_default(WaferMap::full(2, 3), 0xA110C);
    let setpoints = spec.plan.setpoints();
    let sites = spec.wafer.sites();
    let mut scratch = DieScratch::new();

    // Warm-up: the first die sizes every reusable buffer (solver
    // workspace, measurement scratch, robust/IRLS storage).
    let first = run_die_with(&spec, sites[0], &setpoints, &mut scratch);
    assert!(first.corners.iter().all(|c| c.bin == YieldBin::Pass));

    // Steady state, tracing disabled (the default): every further die
    // must cost the identical number of allocations. The per-die residue
    // (the outcome's `corners` vec, per-corner bench construction) is
    // structural and die-independent; a tracing-conditional allocation
    // leaking into the disabled path would break the equality.
    let (a1, out1) = count_allocations(|| run_die_with(&spec, sites[1], &setpoints, &mut scratch));
    let (a2, out2) = count_allocations(|| run_die_with(&spec, sites[2], &setpoints, &mut scratch));
    let (a3, out3) = count_allocations(|| run_die_with(&spec, sites[3], &setpoints, &mut scratch));
    assert!(out1.corners.iter().all(|c| c.bin == YieldBin::Pass));
    assert_eq!(
        a1, a2,
        "steady-state dies must allocate identically with tracing off"
    );
    assert_eq!(a2, a3, "allocation count must not drift across dies");

    // The disabled buffer really was a no-op sink: no events captured,
    // and the span-derived stage timing still measured real work.
    assert!(out2.spans.is_empty(), "disabled trace must record nothing");
    assert!(out3.timing.sample_ns > 0 || out3.timing.measure_ns > 0);

    // Liveness check: the same die with tracing enabled allocates
    // strictly more (event storage), so the zero-delta above is a real
    // measurement and not a dead counter.
    scratch
        .bench
        .solve
        .trace
        .enable(std::time::Instant::now(), 0);
    let (a_traced, traced) =
        count_allocations(|| run_die_with(&spec, sites[4], &setpoints, &mut scratch));
    assert!(!traced.spans.is_empty(), "enabled trace must record spans");
    assert!(
        a_traced > a1,
        "tracing must be the only extra cost: enabled {a_traced} vs disabled {a1}"
    );
}
