//! The campaign engine's headline guarantee, tested end to end: the
//! aggregate artifacts are **byte-identical** for any worker thread
//! count, and independent runs of the same spec reproduce them.

use icvbe_campaign::report::{aggregate_csv, aggregate_json};
use icvbe_campaign::spec::{CampaignSpec, WaferMap};
use icvbe_campaign::{run_campaign, CampaignRun};

fn spec() -> CampaignSpec {
    CampaignSpec::paper_default(WaferMap::circular(8), 0xD1E5_EED5)
}

fn run(threads: usize) -> CampaignRun {
    run_campaign(&spec(), threads).expect("campaign run")
}

#[test]
fn aggregate_artifacts_are_identical_at_1_2_and_8_threads() {
    let runs = [run(1), run(2), run(8)];
    let json: Vec<String> = runs.iter().map(aggregate_json).collect();
    let csv: Vec<String> = runs.iter().map(aggregate_csv).collect();
    assert_eq!(json[0], json[1], "1 vs 2 threads (JSON)");
    assert_eq!(json[0], json[2], "1 vs 8 threads (JSON)");
    assert_eq!(csv[0], csv[1], "1 vs 2 threads (CSV)");
    assert_eq!(csv[0], csv[2], "1 vs 8 threads (CSV)");
    // The in-memory aggregates match too (stronger than string equality).
    assert_eq!(runs[0].aggregate, runs[1].aggregate);
    assert_eq!(runs[0].aggregate, runs[2].aggregate);
}

#[test]
fn cold_start_reproduces_warm_start_artifacts() {
    // Warm starts change only iteration counts, never results: the
    // deterministic aggregate artifacts must be byte-identical with warm
    // starting disabled.
    let warm = run(2);
    let mut cold_spec = spec();
    cold_spec.warm_start = false;
    let cold = run_campaign(&cold_spec, 2).expect("cold run");
    assert_eq!(aggregate_json(&warm), aggregate_json(&cold));
    assert_eq!(aggregate_csv(&warm), aggregate_csv(&cold));
    assert_eq!(warm.aggregate, cold.aggregate);
    // The observability side must show the difference instead: the warm
    // run seeds (almost) every solve, the cold run seeds none, and the
    // warm run does strictly less Newton work.
    assert_eq!(cold.metrics.solver.warm_start_hits, 0);
    assert!(warm.metrics.solver.warm_start_hits > 0);
    assert!(warm.metrics.solver.warm_hit_rate() > 0.9);
    assert!(
        warm.metrics.solver.newton_iterations < cold.metrics.solver.newton_iterations,
        "warm {} vs cold {} Newton iterations",
        warm.metrics.solver.newton_iterations,
        cold.metrics.solver.newton_iterations
    );
    assert_eq!(
        warm.metrics.solver.selfheat_iterations, cold.metrics.solver.selfheat_iterations,
        "thermal trajectories must be identical in both modes"
    );
}

#[test]
fn repeated_runs_reproduce_the_artifact_bytes() {
    let a = aggregate_json(&run(2));
    let b = aggregate_json(&run(2));
    assert_eq!(a, b);
}

#[test]
fn different_seeds_give_different_aggregates() {
    let mut other = spec();
    other.seed ^= 1;
    let base = run_campaign(&spec(), 2).expect("base run");
    let moved = run_campaign(&other, 2).expect("reseeded run");
    assert_ne!(aggregate_json(&base), aggregate_json(&moved));
}
