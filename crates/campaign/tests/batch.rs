//! The batched solve path's contract, tested end to end at the artifact
//! level: every deterministic report a campaign emits — aggregate and
//! quarantine, JSON and CSV — is **byte-identical** between the scalar
//! per-die path (`batch = 1`) and lockstep batching at any lane count and
//! any worker thread count, with and without fault injection. Batching
//! may only show up in the observability stream (`metrics.batching`),
//! never in an accepted bit.

use icvbe_campaign::report::{aggregate_csv, aggregate_json, quarantine_csv, quarantine_json};
use icvbe_campaign::spec::{CampaignSpec, WaferMap};
use icvbe_campaign::worker::{run_campaign_with, RunOptions};
use icvbe_campaign::CampaignRun;
use icvbe_instrument::faults::FaultSpec;

fn spec() -> CampaignSpec {
    CampaignSpec::paper_default(WaferMap::circular(8), 0xBA7C_4ED5)
}

fn run(spec: &CampaignSpec, threads: usize, batch: usize) -> CampaignRun {
    let options = RunOptions {
        batch,
        ..RunOptions::default()
    };
    run_campaign_with(spec, threads, &options).expect("campaign run")
}

/// The four deterministic artifact renderings, concatenated; two runs
/// agree on this string iff every report byte matches.
fn artifact_bytes(run: &CampaignRun) -> String {
    format!(
        "{}\n{}\n{}\n{}",
        aggregate_json(run),
        aggregate_csv(run),
        quarantine_json(run),
        quarantine_csv(run)
    )
}

#[test]
fn batched_artifacts_match_scalar_artifacts_at_any_lane_and_thread_count() {
    let spec = spec();
    let baseline = artifact_bytes(&run(&spec, 1, 1));
    for &lanes in &[2, 4, 8] {
        for &threads in &[1, 2, 8] {
            let batched = run(&spec, threads, lanes);
            assert!(
                batched.metrics.batching.batched_solves > 0,
                "lanes={lanes} threads={threads} must actually batch"
            );
            assert_eq!(
                baseline,
                artifact_bytes(&batched),
                "artifact bytes diverged at lanes={lanes} threads={threads}"
            );
        }
    }
}

#[test]
fn batched_artifacts_match_scalar_artifacts_under_fault_injection() {
    // Faulted corners retire lanes mid-group and quarantine dies; the
    // quarantine artifacts must still come out byte-identical because
    // retired lanes replay through the scalar path.
    let mut spec = spec();
    spec.faults = FaultSpec::heavy();
    let baseline = run(&spec, 2, 1);
    assert!(
        !baseline.aggregate.quarantine.is_empty(),
        "heavy faults must quarantine at least one die"
    );
    let baseline_bytes = artifact_bytes(&baseline);
    for &threads in &[1, 8] {
        let batched = run(&spec, threads, 4);
        assert!(batched.metrics.batching.batched_solves > 0);
        assert_eq!(
            baseline_bytes,
            artifact_bytes(&batched),
            "faulted artifact bytes diverged at threads={threads}"
        );
    }
}

#[test]
fn auto_batching_is_the_default_and_changes_no_artifact_byte() {
    let spec = spec();
    let auto = run(&spec, 4, 0);
    assert!(
        auto.metrics.batching.batched_solves > 0,
        "auto mode must engage batching on a warm sparse spec"
    );
    assert_eq!(artifact_bytes(&run(&spec, 1, 1)), artifact_bytes(&auto));
}
