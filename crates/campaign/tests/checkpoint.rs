//! Checkpoint/resume determinism, tested end to end: a campaign killed
//! after K folded dies and resumed from a **persisted** checkpoint (the
//! hex-bit JSON form, not the in-memory aggregate) produces report
//! artifacts byte-identical to an uninterrupted run — for several K,
//! at 1/2/8 worker threads, and with the resume leg running at yet
//! another thread count.

use std::ops::ControlFlow;

use icvbe_campaign::checkpoint::{checkpoint_from_json, checkpoint_to_json};
use icvbe_campaign::report::{aggregate_csv, aggregate_json, quarantine_csv, quarantine_json};
use icvbe_campaign::spec::{CampaignSpec, WaferMap};
use icvbe_campaign::wire::spec_fingerprint;
use icvbe_campaign::{run_campaign, run_campaign_streaming, CampaignRun, StreamOptions};
use icvbe_instrument::faults::FaultSpec;

fn spec() -> CampaignSpec {
    CampaignSpec::paper_default(WaferMap::circular(4), 0xC4EC_4001)
}

/// The four deterministic report artifacts (metrics is wall-clock and
/// excluded by design).
fn artifacts(run: &CampaignRun) -> [String; 4] {
    [
        aggregate_json(run),
        aggregate_csv(run),
        quarantine_json(run),
        quarantine_csv(run),
    ]
}

/// Runs `spec` to die K, persists a checkpoint through the JSON codec,
/// and resumes it to completion with `resume_threads` workers.
fn kill_and_resume(
    spec: &CampaignSpec,
    k: usize,
    kill_threads: usize,
    resume_threads: usize,
) -> CampaignRun {
    let mut folded = 0usize;
    let partial = run_campaign_streaming(spec, kill_threads, &StreamOptions::default(), |_, _| {
        folded += 1;
        if folded == k {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    })
    .expect("partial run");
    assert_eq!(folded, k, "break must stop the fold at exactly K dies");

    // Persist and reload — the resume leg sees only what a restarted
    // process would see: the JSON checkpoint blob.
    let blob = checkpoint_to_json(spec_fingerprint(spec), k, 0, &partial.aggregate);
    let ck = checkpoint_from_json(&blob).expect("reload checkpoint");
    assert_eq!(ck.fingerprint, spec_fingerprint(spec));
    assert_eq!(ck.next_die, k);

    run_campaign_streaming(
        spec,
        resume_threads,
        &StreamOptions {
            start_die: ck.next_die,
            resume: Some(ck.aggregate),
            ..StreamOptions::default()
        },
        |_, _| ControlFlow::Continue(()),
    )
    .expect("resumed run")
}

#[test]
fn resume_after_k_dies_is_byte_identical_for_k_and_thread_matrix() {
    let spec = spec();
    let golden = artifacts(&run_campaign(&spec, 2).expect("one-shot run"));
    for k in [1usize, 3, 7] {
        for threads in [1usize, 2, 8] {
            // Resume at a different thread count than the killed leg ran
            // at — thread count must never matter.
            let resumed = kill_and_resume(&spec, k, threads, 4);
            assert_eq!(
                artifacts(&resumed),
                golden,
                "kill after {k} dies at {threads} thread(s)"
            );
        }
    }
}

#[test]
fn resume_preserves_quarantine_records_through_the_checkpoint() {
    // Fault injection produces quarantine records and recovery counters;
    // all of it must survive the hex-bit JSON round trip.
    let mut spec = spec();
    spec.faults = FaultSpec::heavy();
    let golden = artifacts(&run_campaign(&spec, 2).expect("one-shot faulted run"));
    let quarantine = &golden[2];
    assert!(
        quarantine.contains("\"kind\""),
        "heavy faults must quarantine at least one corner: {quarantine}"
    );
    let resumed = kill_and_resume(&spec, 5, 2, 1);
    assert_eq!(artifacts(&resumed), golden);
}

#[test]
fn checkpoint_from_a_foreign_spec_is_detectable() {
    // The fingerprint binds a checkpoint to its spec: resuming under a
    // different spec must be detectable before any die runs.
    let a = spec();
    let mut b = spec();
    b.seed ^= 1;
    let run = run_campaign(&a, 1).expect("run");
    let blob = checkpoint_to_json(spec_fingerprint(&a), 3, 0, &run.aggregate);
    let ck = checkpoint_from_json(&blob).expect("reload");
    assert_eq!(ck.fingerprint, spec_fingerprint(&a));
    assert_ne!(ck.fingerprint, spec_fingerprint(&b));
}
