//! Fault-injection robustness contracts:
//!
//! 1. Fault-injected campaigns are byte-identical at 1/2/8 threads — the
//!    determinism guarantee survives retries and robust recovery.
//! 2. A zero-fault `FaultSpec` reproduces the historical aggregate bytes
//!    exactly (golden fixtures generated before the robustness layer
//!    landed).
//! 3. A seeded corruption sweep runs the full per-die pipeline without
//!    panicking and always lands in a taxonomy bin.
//! 4. Retries + pooled robust fitting recover at least twice the passing
//!    yield of the bare pipeline on a heavily corrupted wafer, with the
//!    gain visible per taxonomy bin.

use icvbe_campaign::aggregate::YieldBin;
use icvbe_campaign::die::run_die;
use icvbe_campaign::report::{aggregate_csv, aggregate_json, quarantine_csv, quarantine_json};
use icvbe_campaign::spec::{CampaignSpec, WaferMap};
use icvbe_campaign::taxonomy::FailureKind;
use icvbe_campaign::{run_campaign, CampaignRun};
use icvbe_instrument::faults::FaultSpec;

fn faulted_spec() -> CampaignSpec {
    let mut s = CampaignSpec::paper_default(WaferMap::circular(6), 0xFA17_ED01);
    s.faults = FaultSpec::light();
    s
}

fn artifacts(run: &CampaignRun) -> [String; 4] {
    [
        aggregate_json(run),
        aggregate_csv(run),
        quarantine_json(run),
        quarantine_csv(run),
    ]
}

#[test]
fn fault_injected_artifacts_are_identical_at_1_2_and_8_threads() {
    let spec = faulted_spec();
    let one = run_campaign(&spec, 1).unwrap();
    let two = run_campaign(&spec, 2).unwrap();
    let eight = run_campaign(&spec, 8).unwrap();
    assert_eq!(artifacts(&one), artifacts(&two));
    assert_eq!(artifacts(&one), artifacts(&eight));
}

#[test]
fn zero_fault_spec_reproduces_golden_aggregate_bytes() {
    // Fixtures were written by the pre-robustness engine and regenerated
    // once when aggregation moved to exact superaccumulators (every
    // serialized statistic is now the correctly-rounded value, a ≤1-ulp
    // shift from the old streaming fold): the fault-injection layer must
    // be a strict no-op when every knob is zero.
    let spec = CampaignSpec::paper_default(WaferMap::circular(4), 7);
    assert!(
        spec.faults.is_none(),
        "paper default must not inject faults"
    );
    let run = run_campaign(&spec, 1).unwrap();
    assert_eq!(
        aggregate_json(&run),
        include_str!("fixtures/zero_fault_aggregate.json"),
        "zero-fault aggregate JSON drifted from the golden bytes"
    );
    assert_eq!(
        aggregate_csv(&run),
        include_str!("fixtures/zero_fault_aggregate.csv"),
        "zero-fault aggregate CSV drifted from the golden bytes"
    );
}

#[test]
fn corruption_sweep_never_panics_and_always_bins() {
    // Many corruption universes through the full per-die pipeline. Heavy
    // faults at several seeds exercise dropped points, stuck readings,
    // NaN bursts and drift in combination.
    for seed in 0..24u64 {
        let mut spec = CampaignSpec::paper_default(WaferMap::full(2, 2), seed);
        spec.corners.truncate(1);
        spec.faults = FaultSpec::heavy();
        spec.retry_budget = 2;
        for site in spec.wafer.sites() {
            let out = run_die(&spec, site);
            for c in &out.corners {
                // Every corner lands in exactly one consistent state: a
                // yield bin, with taxonomy iff quarantined and values iff
                // not.
                assert_eq!(c.failure.is_some(), c.bin == YieldBin::SolveFail);
                assert_eq!(c.values.is_some(), c.bin != YieldBin::SolveFail);
                assert!(c.attempts >= 1 && c.attempts <= 1 + spec.retry_budget);
                if let Some(v) = c.values {
                    assert!(v.eg_ev.is_finite() && v.xti.is_finite());
                }
            }
        }
    }
}

#[test]
fn recovery_at_least_doubles_passing_yield_under_heavy_faults() {
    let wafer = WaferMap::circular(8);
    let mut bare = CampaignSpec::paper_default(wafer, 2002);
    bare.faults = FaultSpec::heavy();
    bare.retry_budget = 0;
    bare.robust = false;
    let mut recovering = bare.clone();
    recovering.retry_budget = 3;
    recovering.robust = true;

    let base = run_campaign(&bare, 4).unwrap();
    let rec = run_campaign(&recovering, 4).unwrap();

    let passes = |run: &CampaignRun| -> u64 {
        run.aggregate
            .corners
            .iter()
            .map(|c| c.bins[YieldBin::Pass.index()])
            .sum()
    };
    let (p_base, p_rec) = (passes(&base), passes(&rec));
    assert!(p_base > 0, "heavy faults should not wipe out the baseline");
    assert!(
        p_rec >= 2 * p_base,
        "recovery must at least double passing yield: {p_base} -> {p_rec}"
    );

    // The gain is attributable per taxonomy bin: kinds quarantined in the
    // bare run show up as recovered-from in the recovering run.
    let totals =
        |run: &CampaignRun,
         f: fn(&icvbe_campaign::aggregate::CornerAggregate) -> [u64; FailureKind::COUNT]| {
            run.aggregate
                .corners
                .iter()
                .fold([0u64; FailureKind::COUNT], |mut acc, c| {
                    for (a, n) in acc.iter_mut().zip(f(c)) {
                        *a += n;
                    }
                    acc
                })
        };
    let quarantined_bare = totals(&base, |c| c.failures);
    let recovered = totals(&rec, |c| c.recovered);
    for kind in [
        FailureKind::NonFiniteInput,
        FailureKind::InsufficientPoints,
        FailureKind::Degenerate,
    ] {
        assert!(
            quarantined_bare[kind.index()] > 0,
            "heavy faults should produce {kind} in the bare run"
        );
        assert!(
            recovered[kind.index()] > 0,
            "recovery should rescue at least one {kind} corner"
        );
    }
    assert!(
        rec.metrics.recovery.robust_recoveries > 0,
        "the pooled robust fit should rescue at least one corner"
    );
    assert!(
        rec.metrics.recovery.corners_quarantined < base.metrics.recovery.corners_quarantined,
        "recovery must shrink the quarantine"
    );

    // The bare run's metrics mirror its aggregate: nothing retried,
    // nothing recovered, every SolveFail quarantined.
    assert_eq!(base.metrics.recovery.corners_retried, 0);
    assert_eq!(base.metrics.recovery.corners_recovered, 0);
    assert_eq!(
        base.metrics.recovery.corners_quarantined,
        base.aggregate.quarantine.len() as u64
    );
}
