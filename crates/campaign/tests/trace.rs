//! The tracing layer's headline guarantee, tested end to end: the
//! logical span stream of a campaign — kinds, die/corner/attempt stamps,
//! sequence numbers, solver strategies and iteration payloads — is
//! **byte-identical** at any worker thread count once the wall-clock
//! fields (`ts`, `tid`, `nd_*`) are masked; and tracing is passive — it
//! never perturbs the physics it observes.

use icvbe_campaign::spec::{CampaignSpec, WaferMap};
use icvbe_campaign::{run_campaign, run_campaign_with, CampaignRun, RunOptions};
use icvbe_instrument::faults::FaultSpec;
use icvbe_trace::{mask_nondeterministic, SpanKind, SpanPhase, Trace};

fn spec() -> CampaignSpec {
    // The acceptance wafer: 8 dies across, circular cut, paper defaults.
    CampaignSpec::paper_default(WaferMap::circular(8), 0xD1E5_EED5)
}

fn traced(spec: &CampaignSpec, threads: usize) -> CampaignRun {
    run_campaign_with(
        spec,
        threads,
        &RunOptions {
            trace: true,
            ..RunOptions::default()
        },
    )
    .expect("traced campaign run")
}

fn trace_of(run: &CampaignRun) -> &Trace {
    run.trace.as_ref().expect("trace requested but absent")
}

/// The folded profile with its wall-clock sample counts stripped: the
/// deterministic frame paths, in their sorted order.
fn folded_paths(t: &Trace) -> Vec<String> {
    t.folded()
        .lines()
        .map(|l| l.rsplit_once(' ').expect("`path ns` line").0.to_string())
        .collect()
}

#[test]
fn masked_chrome_trace_is_byte_identical_at_1_2_and_8_threads() {
    let spec = spec();
    let runs = [traced(&spec, 1), traced(&spec, 2), traced(&spec, 8)];
    let masked: Vec<String> = runs
        .iter()
        .map(|r| mask_nondeterministic(&trace_of(r).chrome_json()))
        .collect();
    assert!(masked[0].contains("\"schema\":\"icvbe-campaign-trace-v1\""));
    assert!(masked[0].contains("\"name\":\"newton\""));
    assert!(masked[0].contains("\"strategy\":\"warm_start\""));
    assert_eq!(masked[0], masked[1], "1 vs 2 threads (masked chrome JSON)");
    assert_eq!(masked[0], masked[2], "1 vs 8 threads (masked chrome JSON)");

    // The collapsed-stack frame paths are deterministic too, and walk the
    // whole pipeline hierarchy.
    let paths = folded_paths(trace_of(&runs[0]));
    assert_eq!(paths, folded_paths(trace_of(&runs[1])));
    assert_eq!(paths, folded_paths(trace_of(&runs[2])));
    for expected in [
        "campaign",
        "campaign;die;sample",
        "campaign;die;corner;measure;dc_solve;rung:warm_start;newton",
        "campaign;die;corner;extract;attempt",
        "campaign;queue_wait",
    ] {
        assert!(
            paths.iter().any(|p| p == expected),
            "missing folded path {expected:?} in {paths:?}"
        );
    }
}

#[test]
fn trace_events_carry_deterministic_logical_fields() {
    let spec = spec();
    let t = traced(&spec, 4);
    let trace = trace_of(&t);
    assert_eq!(trace.dropped, 0, "paper-default dies fit the buffer");

    // Bracketed by the campaign root span.
    let first = trace.events.first().expect("non-empty trace");
    let last = trace.events.last().expect("non-empty trace");
    assert_eq!(
        (first.kind, first.phase),
        (SpanKind::Campaign, SpanPhase::Begin)
    );
    assert_eq!(
        (last.kind, last.phase),
        (SpanKind::Campaign, SpanPhase::End)
    );

    // Dies appear in index order, each with exactly one begin/end pair
    // and one queue-wait span.
    let die_begins: Vec<u32> = trace
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::Die && e.phase == SpanPhase::Begin)
        .map(|e| e.die)
        .collect();
    let expected: Vec<u32> = (0..spec.wafer.sites().len() as u32).collect();
    assert_eq!(die_begins, expected, "dies merged in index order");
    let queue_waits = trace
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::QueueWait && e.phase == SpanPhase::End)
        .count();
    assert_eq!(queue_waits, expected.len(), "one queue-wait span per die");

    // Every corner span is stamped with its corner index; newton end
    // records carry the iteration-count payload (a warm-started solve may
    // legitimately converge in zero iterations, but not all of them).
    let corners = spec.corners.len() as i32;
    assert!(trace
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::Corner)
        .all(|e| e.corner >= 0 && e.corner < corners));
    assert!(trace
        .events
        .iter()
        .any(|e| e.kind == SpanKind::Newton && e.phase == SpanPhase::End && e.n0 > 0));

    // The top-N helpers rank real spans.
    assert_eq!(trace.slowest_dies(3).len(), 3);
    assert_eq!(trace.slowest_corners(3).len(), 3);
}

#[test]
fn tracing_is_passive_and_off_by_default() {
    let spec = spec();
    let plain = run_campaign(&spec, 2).expect("untraced run");
    assert!(plain.trace.is_none(), "tracing must be opt-in");
    let with_trace = traced(&spec, 2);
    // Observing the run must not change it: same aggregate, bit for bit.
    assert_eq!(plain.aggregate, with_trace.aggregate);
}

#[test]
fn faulted_retry_ladders_trace_deterministically() {
    // Heavy fault injection exercises the attempt loop and the robust
    // recovery; the masked trace must stay thread-count invariant and
    // record the per-attempt spans with their stamps and verdicts.
    let mut spec = CampaignSpec::paper_default(WaferMap::full(3, 3), 0xFA017);
    spec.corners.truncate(2);
    spec.faults = FaultSpec::heavy();
    spec.retry_budget = 3;
    spec.robust = true;
    let a = traced(&spec, 1);
    let b = traced(&spec, 4);
    assert_eq!(
        mask_nondeterministic(&trace_of(&a).chrome_json()),
        mask_nondeterministic(&trace_of(&b).chrome_json()),
        "faulted trace must be thread-count invariant after masking"
    );
    let trace = trace_of(&a);
    let attempts: Vec<i32> = trace
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::Attempt && e.phase == SpanPhase::Begin)
        .map(|e| e.attempt)
        .collect();
    assert!(!attempts.is_empty());
    assert!(
        attempts.iter().any(|&a| a > 0),
        "heavy faults must trigger retries (attempt ordinals past 0)"
    );
    assert!(
        trace
            .events
            .iter()
            .any(|e| e.kind == SpanKind::RobustFit && e.phase == SpanPhase::End),
        "robust recovery must appear in the trace"
    );
}
