//! Checkpoint codec: the full streaming-aggregate state at a die
//! boundary, encoded so that resuming reproduces an uninterrupted run
//! **byte for byte**.
//!
//! # Exactness
//!
//! The aggregate folds dies in index order and a resumed fold continues
//! that exact sequence, so the checkpoint must restore every accumulator
//! bit-exactly. Since v2 the moment accumulators are exact fixed-point
//! superaccumulators ([`icvbe_numerics::exact::ExactSum`]): each encodes
//! as a sparse list of `[limb_index, "signed-decimal"]` pairs — the limb
//! value travels as a decimal *string* because the top limb is a full
//! signed `i64` and the JSON parser reads numbers through `f64`, which
//! cannot hold every `i64` exactly. The `±inf`-capable min/max fields
//! remain plain `f64`s encoded as the 16-hex-digit form of their
//! IEEE-754 bit pattern. Counts are plain JSON numbers (all far below
//! 2⁵³); the spec fingerprint is a full-width `u64` and travels as a hex
//! string.
//!
//! v1 documents (decimal mean/M2 Welford state) cannot be converted to
//! exact sums without inventing bits, so the v2 loader **rejects** them
//! on the schema tag. The serve recovery ladder already treats an
//! unreadable slot as `dropped_corrupt` and restarts the job from die 0;
//! a one-time re-run beats resuming from state that can no longer
//! reproduce the uninterrupted byte stream.
//!
//! # Crash-safety
//!
//! Checkpoints are written to real disks by real processes that get
//! `kill -9`ed, so the codec carries two integrity fields beyond the
//! spec fingerprint:
//!
//! - a **FNV-1a content checksum** over the rest of the document, so a
//!   torn or bit-flipped file is *detected* at load instead of silently
//!   resuming from garbage (a truncated JSON line usually fails to parse,
//!   but a checksum also catches truncation that lands on a valid prefix
//!   and any in-place corruption);
//! - a **generation counter**, monotonically increasing per write, so a
//!   dual-slot writer can keep the previous generation as a last-good
//!   fallback and a loader can tell which of two intact slots is newer.
//!
//! Both fields are optional on decode: documents from before this scheme
//! load as generation 0 with no checksum verification.

use crate::aggregate::{
    CampaignAggregate, CornerAggregate, QuarantineRecord, Scatter, Welford, YieldBin,
};
use crate::json::{escape, parse, Json};
use crate::taxonomy::FailureKind;
use crate::CampaignError;
use icvbe_numerics::exact::ExactSum;

/// Schema tag carried by every checkpoint document.
pub const CHECKPOINT_SCHEMA: &str = "icvbe-campaign-checkpoint-v2";

/// A decoded checkpoint: where the fold stopped and everything it had
/// accumulated by then.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// [`crate::wire::spec_fingerprint`] of the spec that produced this
    /// state. A checkpoint must never resume under a different spec — the
    /// bytes would silently diverge from the uninterrupted run.
    pub fingerprint: u64,
    /// Index of the first die **not yet** folded in.
    pub next_die: usize,
    /// Write generation: increments on every checkpoint write of a job,
    /// so the newer of two intact slots is decidable. 0 for legacy
    /// documents that predate the counter.
    pub generation: u64,
    /// The aggregate state after folding dies `0..next_die`.
    pub aggregate: CampaignAggregate,
}

/// FNV-1a 64-bit hash — the checkpoint content checksum.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) fn bits(x: f64) -> String {
    format!("\"{:016x}\"", x.to_bits())
}

/// Sparse limb encoding of an [`ExactSum`]: `[[index,"signed-decimal"],…]`
/// over the nonzero limbs only, ascending by index. The value is a string
/// because the top limb is a full signed `i64` and the JSON parser reads
/// numbers through `f64`.
pub(crate) fn exact_json(x: &ExactSum) -> String {
    let items: Vec<String> = x
        .nonzero_limbs()
        .map(|(i, v)| format!("[{i},\"{v}\"]"))
        .collect();
    format!("[{}]", items.join(","))
}

pub(crate) fn welford_json(w: &Welford) -> String {
    let (count, sum, sumsq, min, max) = w.raw();
    format!(
        "[{count},{},{},{},{}]",
        exact_json(sum),
        exact_json(sumsq),
        bits(min),
        bits(max)
    )
}

pub(crate) fn scatter_json(s: &Scatter) -> String {
    let (n, sums) = s.raw();
    let items: Vec<String> = sums.iter().map(|x| exact_json(x)).collect();
    format!("[{n},{}]", items.join(","))
}

pub(crate) fn counts_json(xs: &[u64]) -> String {
    let items: Vec<String> = xs.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

/// Comma-joined corner objects for a checkpoint or partial document.
pub(crate) fn corners_body(aggregate: &CampaignAggregate) -> String {
    let corners: Vec<String> = aggregate
        .corners
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "{{\"name\":\"{name}\",\"eg_ev\":{eg},\"xti\":{xti},",
                    "\"rms_residual_v\":{rms},\"t_cold_err_k\":{tc},",
                    "\"t_hot_err_k\":{th},\"straight\":{straight},",
                    "\"bins\":{bins},\"failures\":{failures},",
                    "\"recovered\":{recovered},\"robust_recoveries\":{rr},",
                    "\"retries\":{retries},\"outliers_rejected\":{out}}}"
                ),
                name = escape(&c.name),
                eg = welford_json(&c.eg_ev),
                xti = welford_json(&c.xti),
                rms = welford_json(&c.rms_residual_v),
                tc = welford_json(&c.t_cold_err_k),
                th = welford_json(&c.t_hot_err_k),
                straight = scatter_json(&c.straight),
                bins = counts_json(&c.bins),
                failures = counts_json(&c.failures),
                recovered = counts_json(&c.recovered),
                rr = c.robust_recoveries,
                retries = c.retries,
                out = c.outliers_rejected,
            )
        })
        .collect();
    corners.join(",")
}

/// Comma-joined quarantine record objects for a checkpoint or partial
/// document.
pub(crate) fn quarantine_body(aggregate: &CampaignAggregate) -> String {
    let quarantine: Vec<String> = aggregate
        .quarantine
        .iter()
        .map(|q| {
            format!(
                "{{\"die\":{},\"row\":{},\"col\":{},\"corner\":{},\"kind\":\"{}\",\"attempts\":{}}}",
                q.die,
                q.row,
                q.col,
                q.corner,
                q.kind.label(),
                q.attempts
            )
        })
        .collect();
    quarantine.join(",")
}

/// Encodes a checkpoint as one line of JSON. The emitted `checksum`
/// field is the [`fnv1a64`] hash of the document with the checksum field
/// itself removed, so [`checkpoint_from_json`] can verify integrity by
/// excising it and re-hashing.
#[must_use]
pub fn checkpoint_to_json(
    fingerprint: u64,
    next_die: usize,
    generation: u64,
    aggregate: &CampaignAggregate,
) -> String {
    let corners = corners_body(aggregate);
    let quarantine = quarantine_body(aggregate);
    let prefix = format!(
        "{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"fingerprint\":\"{fingerprint:016x}\",\"generation\":{generation},"
    );
    let suffix = format!(
        concat!(
            "\"next_die\":{next},\"dies\":{dies},\"dies_failed\":{failed},",
            "\"corners\":[{corners}],\"quarantine\":[{quarantine}]}}"
        ),
        next = next_die,
        dies = aggregate.dies,
        failed = aggregate.dies_failed,
        corners = corners,
        quarantine = quarantine,
    );
    // Checksum of the document *without* the checksum field: hash the
    // prefix and suffix exactly as they will appear around it.
    let mut h = fnv1a64(prefix.as_bytes());
    for &b in suffix.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{prefix}\"checksum\":\"{h:016x}\",{suffix}")
}

pub(crate) fn bad(detail: impl Into<String>) -> CampaignError {
    CampaignError::invalid(format!("checkpoint: {}", detail.into()))
}

pub(crate) fn want<'a>(v: &'a Json, key: &str) -> Result<&'a Json, CampaignError> {
    v.get(key)
        .ok_or_else(|| bad(format!("missing field {key:?}")))
}

pub(crate) fn want_u64(v: &Json, key: &str) -> Result<u64, CampaignError> {
    want(v, key)?
        .as_u64()
        .ok_or_else(|| bad(format!("field {key:?} must be a count")))
}

pub(crate) fn want_usize(v: &Json, key: &str) -> Result<usize, CampaignError> {
    usize::try_from(want_u64(v, key)?).map_err(|_| bad(format!("field {key:?} out of range")))
}

pub(crate) fn f64_bits(v: &Json) -> Result<f64, CampaignError> {
    let s = v
        .as_str()
        .ok_or_else(|| bad("expected a hex-bits string"))?;
    if s.len() != 16 {
        return Err(bad("hex-bits string must be 16 digits"));
    }
    let raw = u64::from_str_radix(s, 16).map_err(|_| bad("invalid hex-bits string"))?;
    Ok(f64::from_bits(raw))
}

/// Decodes the sparse `[[index,"signed-decimal"],…]` limb encoding of an
/// [`ExactSum`]. Rejects out-of-range indices, duplicate indices, and
/// non-canonical limb values via [`ExactSum::from_sparse`].
pub(crate) fn exact_from(v: &Json) -> Result<ExactSum, CampaignError> {
    let a = v
        .as_arr()
        .ok_or_else(|| bad("exact sum must be an array of limb pairs"))?;
    let mut pairs = Vec::with_capacity(a.len());
    for item in a {
        let pair = item
            .as_arr()
            .ok_or_else(|| bad("exact-sum limb must be an [index, value] pair"))?;
        if pair.len() != 2 {
            return Err(bad("exact-sum limb must be an [index, value] pair"));
        }
        let idx = pair[0]
            .as_u64()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| bad("exact-sum limb index must be a count"))?;
        let val = pair[1]
            .as_str()
            .and_then(|s| s.parse::<i64>().ok())
            .ok_or_else(|| bad("exact-sum limb value must be a decimal string"))?;
        pairs.push((idx, val));
    }
    ExactSum::from_sparse(&pairs).ok_or_else(|| bad("exact-sum limbs malformed or non-canonical"))
}

pub(crate) fn welford_from(v: &Json) -> Result<Welford, CampaignError> {
    let a = v
        .as_arr()
        .ok_or_else(|| bad("welford state must be an array"))?;
    if a.len() != 5 {
        return Err(bad("welford state must have 5 elements"));
    }
    let count = a[0].as_u64().ok_or_else(|| bad("welford count"))?;
    Ok(Welford::from_raw(
        count,
        exact_from(&a[1])?,
        exact_from(&a[2])?,
        f64_bits(&a[3])?,
        f64_bits(&a[4])?,
    ))
}

pub(crate) fn scatter_from(v: &Json) -> Result<Scatter, CampaignError> {
    let a = v
        .as_arr()
        .ok_or_else(|| bad("scatter state must be an array"))?;
    if a.len() != 6 {
        return Err(bad("scatter state must have 6 elements"));
    }
    let n = a[0].as_u64().ok_or_else(|| bad("scatter count"))?;
    Ok(Scatter::from_raw(
        n,
        [
            exact_from(&a[1])?,
            exact_from(&a[2])?,
            exact_from(&a[3])?,
            exact_from(&a[4])?,
            exact_from(&a[5])?,
        ],
    ))
}

pub(crate) fn counts_from<const N: usize>(v: &Json, key: &str) -> Result<[u64; N], CampaignError> {
    let a = want(v, key)?
        .as_arr()
        .ok_or_else(|| bad(format!("field {key:?} must be an array")))?;
    if a.len() != N {
        return Err(bad(format!("field {key:?} must have {N} elements")));
    }
    let mut out = [0u64; N];
    for (slot, item) in out.iter_mut().zip(a) {
        *slot = item
            .as_u64()
            .ok_or_else(|| bad(format!("field {key:?} holds non-counts")))?;
    }
    Ok(out)
}

/// Decodes a by-kind count array. Accepts either the full
/// [`FailureKind::COUNT`]-wide layout or the legacy
/// [`FailureKind::BASE`]-wide one (documents written before the
/// containment kinds existed), padding the missing tail with zeros.
pub(crate) fn kind_counts_from(
    v: &Json,
    key: &str,
) -> Result<[u64; FailureKind::COUNT], CampaignError> {
    let a = want(v, key)?
        .as_arr()
        .ok_or_else(|| bad(format!("field {key:?} must be an array")))?;
    if a.len() != FailureKind::COUNT && a.len() != FailureKind::BASE {
        return Err(bad(format!(
            "field {key:?} must have {} or {} elements",
            FailureKind::BASE,
            FailureKind::COUNT
        )));
    }
    let mut out = [0u64; FailureKind::COUNT];
    for (slot, item) in out.iter_mut().zip(a) {
        *slot = item
            .as_u64()
            .ok_or_else(|| bad(format!("field {key:?} holds non-counts")))?;
    }
    Ok(out)
}

/// Verifies the document's content checksum, if it carries one. Returns
/// an error on a mismatch (torn/corrupt file); legacy documents without a
/// checksum pass through unverified.
pub(crate) fn verify_checksum(text: &str) -> Result<(), CampaignError> {
    let Some(start) = text.find("\"checksum\":\"") else {
        return Ok(());
    };
    let digits = start + "\"checksum\":\"".len();
    let Some(rest) = text.get(digits..digits + 18) else {
        return Err(bad("checksum field truncated"));
    };
    let (hex, tail) = rest.split_at(16);
    if !tail.starts_with("\",") {
        return Err(bad("checksum field malformed"));
    }
    let claimed =
        u64::from_str_radix(hex, 16).map_err(|_| bad("checksum must be a 16-digit hex string"))?;
    // Hash the document with the checksum field excised — the exact
    // byte stream the writer hashed.
    let mut h = fnv1a64(&text.as_bytes()[..start]);
    for &b in &text.as_bytes()[digits + 18..] {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if h != claimed {
        return Err(bad(format!(
            "checksum mismatch: stored {claimed:016x}, computed {h:016x} (torn or corrupt checkpoint)"
        )));
    }
    Ok(())
}

/// Decodes the `corners` array of a checkpoint or partial document.
pub(crate) fn corners_from(v: &Json) -> Result<Vec<CornerAggregate>, CampaignError> {
    let mut corners = Vec::new();
    for c in want(v, "corners")?
        .as_arr()
        .ok_or_else(|| bad("corners must be an array"))?
    {
        let name = want(c, "name")?
            .as_str()
            .ok_or_else(|| bad("corner name must be a string"))?
            .to_string();
        corners.push(CornerAggregate {
            name,
            eg_ev: welford_from(want(c, "eg_ev")?)?,
            xti: welford_from(want(c, "xti")?)?,
            rms_residual_v: welford_from(want(c, "rms_residual_v")?)?,
            t_cold_err_k: welford_from(want(c, "t_cold_err_k")?)?,
            t_hot_err_k: welford_from(want(c, "t_hot_err_k")?)?,
            straight: scatter_from(want(c, "straight")?)?,
            bins: counts_from::<{ YieldBin::COUNT }>(c, "bins")?,
            failures: kind_counts_from(c, "failures")?,
            recovered: kind_counts_from(c, "recovered")?,
            robust_recoveries: want_u64(c, "robust_recoveries")?,
            retries: want_u64(c, "retries")?,
            outliers_rejected: want_u64(c, "outliers_rejected")?,
        });
    }
    Ok(corners)
}

/// Decodes the `quarantine` array of a checkpoint or partial document.
pub(crate) fn quarantine_from(v: &Json) -> Result<Vec<QuarantineRecord>, CampaignError> {
    let mut quarantine = Vec::new();
    for q in want(v, "quarantine")?
        .as_arr()
        .ok_or_else(|| bad("quarantine must be an array"))?
    {
        let label = want(q, "kind")?
            .as_str()
            .ok_or_else(|| bad("quarantine kind must be a string"))?;
        let kind = *FailureKind::ALL
            .iter()
            .find(|k| k.label() == label)
            .ok_or_else(|| bad(format!("unknown failure kind {label:?}")))?;
        quarantine.push(QuarantineRecord {
            die: want_usize(q, "die")?,
            row: want_usize(q, "row")?,
            col: want_usize(q, "col")?,
            corner: want_usize(q, "corner")?,
            kind,
            attempts: u32::try_from(want_u64(q, "attempts")?)
                .map_err(|_| bad("attempts out of range"))?,
        });
    }
    Ok(quarantine)
}

/// Decodes a checkpoint document.
///
/// The caller owns the spec binding: compare [`Checkpoint::fingerprint`]
/// against [`crate::wire::spec_fingerprint`] of the spec about to resume
/// before trusting the state.
///
/// # Errors
///
/// [`CampaignError::InvalidSpec`] on malformed JSON, a wrong schema tag
/// (including v1 documents, which are rejected — see the module docs),
/// a content-checksum mismatch, or missing/ill-typed fields.
pub fn checkpoint_from_json(text: &str) -> Result<Checkpoint, CampaignError> {
    verify_checksum(text)?;
    let v = parse(text).map_err(|e| bad(e.to_string()))?;
    if want(&v, "schema")?.as_str() != Some(CHECKPOINT_SCHEMA) {
        return Err(bad(format!("schema tag must be {CHECKPOINT_SCHEMA:?}")));
    }
    let fingerprint = want(&v, "fingerprint")?
        .as_str()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| bad("fingerprint must be a hex string"))?;
    let generation = match v.get("generation") {
        Some(g) => g
            .as_u64()
            .ok_or_else(|| bad("generation must be a count"))?,
        None => 0,
    };
    let next_die = want_usize(&v, "next_die")?;
    let corners = corners_from(&v)?;
    let quarantine = quarantine_from(&v)?;

    Ok(Checkpoint {
        fingerprint,
        next_die,
        generation,
        aggregate: CampaignAggregate {
            dies: want_u64(&v, "dies")?,
            dies_failed: want_u64(&v, "dies_failed")?,
            corners,
            quarantine,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, WaferMap};
    use crate::wire::spec_fingerprint;
    use crate::worker::run_campaign;

    #[test]
    fn empty_aggregate_round_trips_including_infinities() {
        let spec = CampaignSpec::paper_default(WaferMap::full(2, 2), 5);
        let agg = CampaignAggregate::new(&spec);
        let fp = spec_fingerprint(&spec);
        let text = checkpoint_to_json(fp, 0, 1, &agg);
        let cp = checkpoint_from_json(&text).unwrap();
        assert_eq!(cp.fingerprint, fp);
        assert_eq!(cp.next_die, 0);
        assert_eq!(cp.generation, 1);
        assert_eq!(cp.aggregate, agg);
        // The empty Welford's ±inf min/max survived exactly.
        assert_eq!(cp.aggregate.corners[0].eg_ev.min(), f64::INFINITY);
        assert_eq!(cp.aggregate.corners[0].eg_ev.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn populated_aggregate_round_trips_bit_exactly() {
        let mut spec = CampaignSpec::paper_default(WaferMap::full(3, 3), 77);
        spec.corners.truncate(2);
        let run = run_campaign(&spec, 2).unwrap();
        let fp = spec_fingerprint(&spec);
        let text = checkpoint_to_json(fp, 9, 3, &run.aggregate);
        let cp = checkpoint_from_json(&text).unwrap();
        assert_eq!(cp.aggregate, run.aggregate);
        assert_eq!(cp.next_die, 9);
        assert_eq!(cp.generation, 3);
        // Encoding is deterministic: re-encoding the decoded state is
        // byte-identical.
        assert_eq!(checkpoint_to_json(fp, 9, 3, &cp.aggregate), text);
    }

    #[test]
    fn decode_rejects_corrupt_documents() {
        assert!(checkpoint_from_json("").is_err());
        assert!(checkpoint_from_json("{}").is_err());
        let spec = CampaignSpec::paper_default(WaferMap::full(2, 2), 5);
        let agg = CampaignAggregate::new(&spec);
        let text = checkpoint_to_json(1, 0, 0, &agg);
        assert!(checkpoint_from_json(&text.replace(CHECKPOINT_SCHEMA, "x")).is_err());
        assert!(checkpoint_from_json(&text.replace("\"next_die\":0", "\"next_die\":-1")).is_err());
    }

    #[test]
    fn checksum_catches_truncation_and_bitflips() {
        let spec = CampaignSpec::paper_default(WaferMap::full(2, 2), 5);
        let agg = CampaignAggregate::new(&spec);
        let text = checkpoint_to_json(7, 0, 4, &agg);
        assert!(text.contains("\"checksum\":\""));
        // Every strict prefix must fail to load — either the checksum
        // field itself is damaged or the content hash no longer matches
        // (short prefixes also fail JSON parsing; both are rejections).
        for cut in 1..text.len() {
            assert!(
                checkpoint_from_json(&text[..cut]).is_err(),
                "truncation at byte {cut} of {} loaded",
                text.len()
            );
        }
        // A single flipped content byte past the checksum field fails too.
        let mut flipped = text.clone().into_bytes();
        let at = text.find("\"next_die\"").unwrap() + 2;
        flipped[at] ^= 0x01;
        assert!(checkpoint_from_json(&String::from_utf8(flipped).unwrap()).is_err());
        // A wrong stored checksum is a mismatch even over intact content.
        let start = text.find("\"checksum\":\"").unwrap() + "\"checksum\":\"".len();
        let mut forged = text.clone();
        let old = &text[start..start + 16];
        let new: String = old
            .chars()
            .map(|c| if c == '0' { '1' } else { '0' })
            .collect();
        forged.replace_range(start..start + 16, &new);
        assert!(checkpoint_from_json(&forged).is_err());
    }

    #[test]
    fn documents_without_checksum_or_generation_still_load() {
        let spec = CampaignSpec::paper_default(WaferMap::full(2, 2), 5);
        let agg = CampaignAggregate::new(&spec);
        let fp = spec_fingerprint(&spec);
        let text = checkpoint_to_json(fp, 0, 2, &agg);
        // Strip the integrity fields: a v2 document without them still
        // loads (generation 0, no checksum verification).
        let start = text.find("\"generation\"").unwrap();
        let end = text.find("\"next_die\"").unwrap();
        let stripped = format!("{}{}", &text[..start], &text[end..]);
        let cp = checkpoint_from_json(&stripped).unwrap();
        assert_eq!(cp.generation, 0);
        assert_eq!(cp.fingerprint, fp);
        assert_eq!(cp.aggregate, agg);
    }

    #[test]
    fn v1_documents_are_rejected_on_the_schema_tag() {
        // v1 carried decimal Welford mean/M2 state that cannot be
        // converted to exact sums; the loader must refuse it rather than
        // resume from unconvertible state.
        let spec = CampaignSpec::paper_default(WaferMap::full(2, 2), 5);
        let agg = CampaignAggregate::new(&spec);
        let text = checkpoint_to_json(1, 0, 0, &agg);
        // Excise the checksum (a hand-written v1 doc would carry its own
        // consistent one) so the schema check itself does the rejecting.
        let start = text.find("\"checksum\"").unwrap();
        let end = text.find("\"next_die\"").unwrap();
        let v1 = format!("{}{}", &text[..start], &text[end..]).replace(
            "icvbe-campaign-checkpoint-v2",
            "icvbe-campaign-checkpoint-v1",
        );
        let err = checkpoint_from_json(&v1).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
    }

    #[test]
    fn populated_exact_sums_round_trip_through_sparse_limbs() {
        // Feed values with spread exponents (including a subnormal) so
        // several limbs populate, then require the decoded accumulators
        // to be limb-for-limb identical.
        let mut w = Welford::default();
        for x in [1.5e-300, -2.25, 3.0e280, 5.0e-310, 7.75] {
            w.absorb(x);
        }
        let text = welford_json(&w);
        let v = parse(&text).unwrap();
        assert_eq!(welford_from(&v).unwrap(), w);
    }
}
