//! Deterministic per-die seed derivation.
//!
//! The campaign determinism guarantee hinges on one rule: **no PRNG
//! stream is ever shared between dies.** A shared stream would make a
//! die's draws depend on how many dies were processed before it — i.e. on
//! scheduling — and the whole point of the engine is that results are
//! bit-identical whether one thread walks the wafer or sixteen fight over
//! it.
//!
//! Instead, every (die, stream) pair hashes to its own 64-bit seed through
//! two rounds of SplitMix64 mixing. The die index and the stream id land
//! in different rounds, so `die 1 / stream 0` and `die 0 / stream 1`
//! cannot collide structurally, and the avalanche property of the mixer
//! decorrelates neighbouring dies.

use icvbe_numerics::rng::SplitMix64;

/// The independent random streams a single die consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// Process-variation draws (the die's Monte-Carlo factory).
    Process,
    /// The virtual bench measuring bias corner `k` (SMU + Pt100 noise).
    Bench(u32),
    /// The fault injector corrupting `attempt` of bias corner `corner`.
    /// Every retry draws a fresh corruption realization, so a retried
    /// corner is a new measurement, not a replay of the bad one.
    Faults {
        /// Bias corner index.
        corner: u32,
        /// Zero-based attempt number (`0` is the first measurement).
        attempt: u32,
    },
}

impl Stream {
    fn id(self) -> u64 {
        match self {
            Stream::Process => 0,
            // Bench streams start after the reserved block so adding new
            // fixed streams later cannot alias an existing corner.
            Stream::Bench(k) => 16 + u64::from(k),
            // Fault streams live in their own high bit-plane: bit 33 is
            // set, corner sits above the 8-bit attempt field. Bench ids
            // (16 + k) can never reach bit 33 for realistic corner
            // counts, so the spaces are structurally disjoint.
            Stream::Faults { corner, attempt } => {
                (1 << 33) | (u64::from(corner) << 8) | u64::from(attempt)
            }
        }
    }
}

/// The root seed of one die: campaign seed and die index mixed.
#[must_use]
pub fn die_seed(campaign_seed: u64, die_index: u64) -> u64 {
    SplitMix64::mix(campaign_seed ^ SplitMix64::mix(die_index))
}

/// The seed of one of a die's streams.
#[must_use]
pub fn stream_seed(campaign_seed: u64, die_index: u64, stream: Stream) -> u64 {
    SplitMix64::mix(
        die_seed(campaign_seed, die_index) ^ stream.id().wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_are_unique_across_dies_and_kinds() {
        let mut seen = HashSet::new();
        for die in 0..500u64 {
            assert!(seen.insert(stream_seed(2002, die, Stream::Process)));
            for corner in 0..4 {
                assert!(seen.insert(stream_seed(2002, die, Stream::Bench(corner))));
                for attempt in 0..4 {
                    assert!(seen.insert(stream_seed(
                        2002,
                        die,
                        Stream::Faults { corner, attempt }
                    )));
                }
            }
        }
    }

    #[test]
    fn fault_streams_separate_corner_and_attempt() {
        let s = |corner, attempt| stream_seed(7, 0, Stream::Faults { corner, attempt });
        assert_ne!(s(0, 0), s(0, 1));
        assert_ne!(s(0, 0), s(1, 0));
        // corner 0 / attempt 256 would alias corner 1 / attempt 0 if the
        // attempt field overflowed its 8 bits; the retry-budget cap in
        // `CampaignSpec::validate` keeps attempts far below that.
        assert_ne!(s(0, 255), s(1, 0));
    }

    #[test]
    fn seeds_depend_on_campaign_seed() {
        assert_ne!(die_seed(1, 0), die_seed(2, 0));
        assert_ne!(
            stream_seed(1, 3, Stream::Process),
            stream_seed(2, 3, Stream::Process)
        );
    }

    #[test]
    fn derivation_is_pure() {
        assert_eq!(die_seed(7, 42), die_seed(7, 42));
        assert_eq!(
            stream_seed(7, 42, Stream::Bench(1)),
            stream_seed(7, 42, Stream::Bench(1))
        );
    }
}
