//! The per-die pipeline: process sample → virtual bench sweep → dVBE die
//! thermometry → Meijer extraction → yield bin.
//!
//! This is exactly the single-die flow of the paper (and of
//! `examples/extraction_campaign.rs`), packaged as a pure function of
//! `(spec, site)`: every random stream the die touches derives from the
//! campaign seed and the die index (see [`crate::seeding`]), so the
//! function is referentially transparent — the precondition for fanning
//! dies out across threads in any order.

use std::time::Instant;

use icvbe_core::meijer::extract;
use icvbe_core::tempcomp::{temperature_from_dvbe_corrected, PairCurrents};
use icvbe_instrument::bench::{BenchScratch, PairCampaignPoint, TestStructureBench};
use icvbe_instrument::montecarlo::{DieSample, SampleFactory};
use icvbe_units::{Celsius, Kelvin};

use crate::aggregate::YieldBin;
use crate::seeding::{stream_seed, Stream};
use crate::spec::{BenchProfile, CampaignSpec, DieSite, SpecWindow};

/// Extracted values of one corner (present unless the solve failed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerValues {
    /// Extracted `EG`, eV.
    pub eg_ev: f64,
    /// Extracted `XTI`.
    pub xti: f64,
    /// RMS fit residual, volts.
    pub rms_residual_v: f64,
    /// dVBE-computed cold die temperature, kelvin.
    pub t_cold_k: f64,
    /// dVBE-computed hot die temperature, kelvin.
    pub t_hot_k: f64,
    /// Computed-minus-true cold die temperature, kelvin.
    pub t_cold_err_k: f64,
    /// Computed-minus-true hot die temperature, kelvin.
    pub t_hot_err_k: f64,
}

/// One corner's outcome: a yield bin, plus values when extraction ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerOutcome {
    /// Where the corner binned.
    pub bin: YieldBin,
    /// Extracted values; `None` iff `bin` is [`YieldBin::SolveFail`].
    pub values: Option<CornerValues>,
}

/// Wall-clock of the die's pipeline stages (observability only — never
/// part of the deterministic aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DieTiming {
    /// Process-sample generation, ns.
    pub sample_ns: u64,
    /// Bench measurement (all corners, all setpoints), ns.
    pub measure_ns: u64,
    /// Thermometry + extraction, ns.
    pub extract_ns: u64,
}

/// Everything one die produced.
#[derive(Debug, Clone, PartialEq)]
pub struct DieOutcome {
    /// Dense die index (campaign order).
    pub index: usize,
    /// Wafer row.
    pub row: usize,
    /// Wafer column.
    pub col: usize,
    /// Per-corner outcomes, in spec corner order.
    pub corners: Vec<CornerOutcome>,
    /// Stage wall-clocks.
    pub timing: DieTiming,
}

/// Per-thread scratch for the die pipeline: solver workspaces, iteration
/// counters and the reusable measurement-point buffer.
///
/// Nothing in here affects results — [`run_die_with`] is bitwise identical
/// to [`run_die`] for any scratch state — it only removes per-die
/// allocations and carries the solver statistics the worker pool folds
/// into the campaign metrics.
#[derive(Debug, Default)]
pub struct DieScratch {
    /// Bench-level scratch: circuit solver workspace plus counters.
    pub bench: BenchScratch,
    points: Vec<PairCampaignPoint>,
}

impl DieScratch {
    /// An empty scratch.
    #[must_use]
    pub fn new() -> Self {
        DieScratch::default()
    }
}

fn classify(window: &SpecWindow, eg: f64, xti: f64) -> YieldBin {
    if eg < window.eg_min {
        YieldBin::EgLow
    } else if eg > window.eg_max {
        YieldBin::EgHigh
    } else if xti < window.xti_min {
        YieldBin::XtiLow
    } else if xti > window.xti_max {
        YieldBin::XtiHigh
    } else {
        YieldBin::Pass
    }
}

fn make_bench(profile: BenchProfile, seed: u64) -> TestStructureBench {
    match profile {
        BenchProfile::Paper => TestStructureBench::paper_bench(seed),
        BenchProfile::Ideal => TestStructureBench::ideal(seed),
    }
}

/// The eq.-16/20 die-temperature computation for a non-reference point.
fn computed_temperature(
    p: &PairCampaignPoint,
    refp: &PairCampaignPoint,
) -> Result<Kelvin, icvbe_core::ExtractionError> {
    let x = PairCurrents {
        ica_t: p.ic_a,
        icb_t: p.ic_b,
        ica_ref: refp.ic_a,
        icb_ref: refp.ic_b,
    }
    .x_factor()?;
    temperature_from_dvbe_corrected(p.dvbe, refp.dvbe, refp.sensor_temperature, x)
}

fn run_corner(
    spec: &CampaignSpec,
    sample: &DieSample,
    site: DieSite,
    corner_idx: usize,
    setpoints: &[Celsius],
    scratch: &mut DieScratch,
    timing: &mut DieTiming,
) -> CornerOutcome {
    let bench_seed = stream_seed(
        spec.seed,
        site.index as u64,
        Stream::Bench(corner_idx as u32),
    );
    let mut bench = make_bench(spec.bench, bench_seed);

    let t_measure = Instant::now();
    let measured = bench.run_pair_campaign_with(
        sample,
        spec.corners[corner_idx].ic,
        setpoints,
        &mut scratch.bench,
        &mut scratch.points,
        spec.warm_start,
    );
    timing.measure_ns += t_measure.elapsed().as_nanos() as u64;
    if measured.is_err() {
        return CornerOutcome {
            bin: YieldBin::SolveFail,
            values: None,
        };
    }
    let pts = &scratch.points;

    let t_extract = Instant::now();
    let out = (|| {
        let refp = &pts[1];
        let t_cold = computed_temperature(&pts[0], refp)?;
        let t_hot = computed_temperature(&pts[2], refp)?;
        let m = TestStructureBench::meijer_from_points(
            [&pts[0], &pts[1], &pts[2]],
            [t_cold, refp.sensor_temperature, t_hot],
        );
        let fit = extract(&m)?;
        Ok::<CornerValues, icvbe_core::ExtractionError>(CornerValues {
            eg_ev: fit.eg.value(),
            xti: fit.xti,
            rms_residual_v: fit.rms_residual_volts,
            t_cold_k: t_cold.value(),
            t_hot_k: t_hot.value(),
            t_cold_err_k: t_cold.value() - pts[0].die_temperature.value(),
            t_hot_err_k: t_hot.value() - pts[2].die_temperature.value(),
        })
    })();
    timing.extract_ns += t_extract.elapsed().as_nanos() as u64;

    match out {
        Ok(v) => CornerOutcome {
            bin: classify(&spec.window, v.eg_ev, v.xti),
            values: Some(v),
        },
        Err(_) => CornerOutcome {
            bin: YieldBin::SolveFail,
            values: None,
        },
    }
}

/// Runs the full pipeline of one die. Infallible by design: failures are
/// binned, not raised, because a wafer campaign must outlive bad dies.
///
/// Convenience wrapper over [`run_die_with`] with a private scratch; both
/// are pure functions of `(spec, site)` and produce identical outcomes.
#[must_use]
pub fn run_die(spec: &CampaignSpec, site: DieSite) -> DieOutcome {
    run_die_with(spec, site, &spec.plan.setpoints(), &mut DieScratch::new())
}

/// [`run_die`] for the worker hot path: the caller hoists the setpoint
/// list (computed once per campaign, not once per corner) and owns the
/// scratch that carries solver buffers and counters across dies.
#[must_use]
pub fn run_die_with(
    spec: &CampaignSpec,
    site: DieSite,
    setpoints: &[Celsius],
    scratch: &mut DieScratch,
) -> DieOutcome {
    let mut timing = DieTiming::default();

    let t_sample = Instant::now();
    let process_seed = stream_seed(spec.seed, site.index as u64, Stream::Process);
    let sample = SampleFactory::seeded(process_seed)
        .with_spec(spec.variation)
        .draw(site.index + 1);
    timing.sample_ns = t_sample.elapsed().as_nanos() as u64;

    let corners = (0..spec.corners.len())
        .map(|k| run_corner(spec, &sample, site, k, setpoints, scratch, &mut timing))
        .collect();

    DieOutcome {
        index: site.index,
        row: site.row,
        col: site.col,
        corners,
        timing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WaferMap;

    fn small_spec() -> CampaignSpec {
        let mut s = CampaignSpec::paper_default(WaferMap::full(2, 2), 77);
        s.corners.truncate(1);
        s
    }

    #[test]
    fn run_die_is_deterministic() {
        let spec = small_spec();
        let site = spec.wafer.sites()[1];
        let a = run_die(&spec, site);
        let b = run_die(&spec, site);
        assert_eq!(a.corners, b.corners);
        assert_eq!(a.index, 1);
    }

    #[test]
    fn healthy_die_passes_window() {
        let spec = small_spec();
        let out = run_die(&spec, spec.wafer.sites()[0]);
        let c = &out.corners[0];
        assert_eq!(c.bin, YieldBin::Pass, "healthy die binned {:?}", c.bin);
        let v = c.values.unwrap();
        assert!(v.eg_ev > 1.05 && v.eg_ev < 1.25, "EG {}", v.eg_ev);
        // Computed die temperatures land near the plan's -25/+75 °C, plus
        // self-heating of some tens of kelvin.
        assert!(
            v.t_cold_k > 230.0 && v.t_cold_k < 310.0,
            "T1 {}",
            v.t_cold_k
        );
        assert!(v.t_hot_k > 330.0 && v.t_hot_k < 410.0, "T3 {}", v.t_hot_k);
        // The computed temperatures are referenced to the chamber sensor
        // at the reference setpoint, so they sit below the true (self-
        // heated) die temperature by roughly the reference self-heating
        // (~15 K on the paper bench) — bounded, not zero.
        assert!(
            v.t_cold_err_k < 0.0 && v.t_cold_err_k > -25.0,
            "cold err {}",
            v.t_cold_err_k
        );
        assert!(
            v.t_hot_err_k < 0.0 && v.t_hot_err_k > -25.0,
            "hot err {}",
            v.t_hot_err_k
        );
    }

    #[test]
    fn warm_and_cold_dies_are_bit_identical() {
        let spec = small_spec();
        let mut cold_spec = spec.clone();
        cold_spec.warm_start = false;
        for site in spec.wafer.sites() {
            let warm = run_die(&spec, site);
            let cold = run_die(&cold_spec, site);
            assert_eq!(warm.corners, cold.corners, "die {}", site.index);
        }
    }

    #[test]
    fn scratch_reuse_does_not_change_outcomes() {
        let spec = small_spec();
        let setpoints = spec.plan.setpoints();
        let mut scratch = DieScratch::new();
        // Drive several dies through ONE scratch; each must match a run
        // with a fresh scratch bit for bit.
        for site in spec.wafer.sites() {
            let reused = run_die_with(&spec, site, &setpoints, &mut scratch);
            let fresh = run_die(&spec, site);
            assert_eq!(reused.corners, fresh.corners, "die {}", site.index);
        }
    }

    #[test]
    fn classification_covers_every_edge() {
        let w = SpecWindow {
            eg_min: 1.0,
            eg_max: 1.2,
            xti_min: 1.0,
            xti_max: 4.0,
        };
        assert_eq!(classify(&w, 1.1, 2.0), YieldBin::Pass);
        assert_eq!(classify(&w, 0.9, 2.0), YieldBin::EgLow);
        assert_eq!(classify(&w, 1.3, 2.0), YieldBin::EgHigh);
        assert_eq!(classify(&w, 1.1, 0.5), YieldBin::XtiLow);
        assert_eq!(classify(&w, 1.1, 4.5), YieldBin::XtiHigh);
    }

    #[test]
    fn corners_see_independent_bench_noise() {
        let mut spec = CampaignSpec::paper_default(WaferMap::full(1, 1), 5);
        // Two corners at the SAME bias: identical physics, different
        // bench streams -> different noise realizations.
        spec.corners.truncate(2);
        spec.corners[1].ic = spec.corners[0].ic;
        let out = run_die(&spec, spec.wafer.sites()[0]);
        let a = out.corners[0].values.unwrap();
        let b = out.corners[1].values.unwrap();
        assert_ne!(a.eg_ev, b.eg_ev);
    }
}
