//! The per-die pipeline: process sample → virtual bench sweep → dVBE die
//! thermometry → Meijer extraction → yield bin.
//!
//! This is exactly the single-die flow of the paper (and of
//! `examples/extraction_campaign.rs`), packaged as a pure function of
//! `(spec, site)`: every random stream the die touches derives from the
//! campaign seed and the die index (see [`crate::seeding`]), so the
//! function is referentially transparent — the precondition for fanning
//! dies out across threads in any order.
//!
//! # Graceful degradation
//!
//! With fault injection enabled the corner pipeline becomes
//! *measure-once, corrupt-per-attempt*: the bench runs once into a
//! pristine buffer, and each attempt copies it and applies a fresh seeded
//! corruption before extraction. A failed or out-of-window attempt burns
//! one unit of the retry budget; when the budget is exhausted a pooled
//! robust (Tukey IRLS) eq.-13 fit over *all* attempts' samples gets the
//! last word. Failures are classified by **detection** (what does the
//! data look like?), never by injection knowledge, into the
//! [`FailureKind`] taxonomy. With faults disabled exactly one attempt
//! runs and no fault stream is ever touched, so the zero-fault pipeline
//! is bit-identical to the unfaulted one.
//!
//! # Adaptive corner scheduling
//!
//! With [`CampaignSpec::adaptive`] set, a die first runs only its **probe
//! corner** (spec corner 0). If the probe is clean — passes the spec
//! window on one analytic attempt with a negligible fit residual (see
//! [`CornerOutcome::flags_escalation`]) — the remaining corners are
//! retired as [`YieldBin::Skipped`] without running; anything suspicious
//! escalates the die to the full exhaustive plan. Because every corner
//! derives its own bench and fault streams (`Stream::Bench(k)` /
//! `Stream::Faults{corner: k, ..}`), skipping later corners cannot
//! perturb the probe's bits: the corners an adaptive run *does* execute
//! are bit-identical to the same corners of an exhaustive run.

use icvbe_core::meijer::extract;
use icvbe_core::nonlinear::Eq13PointModel;
use icvbe_core::tempcomp::{temperature_from_dvbe_corrected, PairCurrents};
use icvbe_instrument::bench::{
    run_pair_campaign_batch, BatchSweepStats, BenchError, BenchLane, BenchScratch,
    PairCampaignPoint, SolveMode, TestStructureBench,
};
use icvbe_instrument::faults::FaultPlan;
use icvbe_instrument::montecarlo::{DieSample, SampleFactory};
use icvbe_numerics::robust::{fit_robust_traced, RobustLoss, RobustOptions, RobustWorkspace};
use icvbe_spice::batch::BatchWorkspace;
use icvbe_trace::{SpanKind, TraceBuf, TraceEvent};
use icvbe_units::{Celsius, Kelvin};

use crate::aggregate::YieldBin;
use crate::seeding::{stream_seed, Stream};
use crate::spec::{BenchProfile, CampaignSpec, DieSite, SpecWindow};
use crate::taxonomy::FailureKind;

/// Extracted values of one corner (present unless the solve failed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerValues {
    /// Extracted `EG`, eV.
    pub eg_ev: f64,
    /// Extracted `XTI`.
    pub xti: f64,
    /// RMS fit residual, volts.
    pub rms_residual_v: f64,
    /// dVBE-computed cold die temperature, kelvin.
    pub t_cold_k: f64,
    /// dVBE-computed hot die temperature, kelvin.
    pub t_hot_k: f64,
    /// Computed-minus-true cold die temperature, kelvin.
    pub t_cold_err_k: f64,
    /// Computed-minus-true hot die temperature, kelvin.
    pub t_hot_err_k: f64,
}

/// One corner's outcome: a yield bin, values when extraction ran, and the
/// robustness bookkeeping (taxonomy kind, attempts, recovery provenance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerOutcome {
    /// Where the corner binned.
    pub bin: YieldBin,
    /// Extracted values; `None` iff `bin` is [`YieldBin::SolveFail`].
    pub values: Option<CornerValues>,
    /// Taxonomy kind of a quarantined corner; `Some` iff `bin` is
    /// [`YieldBin::SolveFail`].
    pub failure: Option<FailureKind>,
    /// Corruption/extraction attempts consumed (always 1 with faults
    /// disabled).
    pub attempts: u32,
    /// When values were produced after at least one failed attempt: the
    /// first failure's kind. Robust recoveries with no preceding hard
    /// failure report [`FailureKind::OutlierRejected`] (the fit rejected
    /// the outliers that kept the analytic attempts out of window).
    pub recovered_from: Option<FailureKind>,
    /// The values came from the pooled robust IRLS fit, not from a clean
    /// analytic attempt.
    pub robust_recovery: bool,
    /// Samples the robust fit flagged as outliers (0 unless
    /// `robust_recovery`).
    pub outliers_rejected: u32,
}

/// Per-die solve containment budget. Zero fields (the default) disable
/// enforcement entirely.
///
/// The iteration budget counts damped Newton iterations consumed by the
/// die so far; once exceeded, the die's **remaining** corners are retired
/// as [`FailureKind::BudgetExhausted`] without running. Iteration counts
/// are deterministic per `(spec, die)` on the scalar path, so the verdict
/// is byte-reproducible at any thread count — the worker forces the
/// scalar path whenever a budget is active, because the batched driver's
/// solver-effort counters legitimately differ from scalar's.
///
/// The wall-clock budget is a *nondeterministic* operational escape hatch
/// for production daemons (a hung die cannot stall a tenant forever); it
/// trades reproducibility for liveness and is off by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DieBudget {
    /// Maximum Newton iterations one die may consume across its corners
    /// (0 = unlimited).
    pub max_newton_iterations: u64,
    /// Maximum wall-clock milliseconds per die (0 = unlimited).
    pub max_wall_ms: u64,
}

impl DieBudget {
    /// Whether enforcement is disabled (both limits zero).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        *self == DieBudget::default()
    }
}

/// Adaptive escalation threshold on the probe corner's RMS fit residual,
/// volts. The analytic three-point eq.-13 fit is exactly determined
/// (three parameters, three points), so a healthy corner's residual is
/// pure rounding noise — femtovolts. A residual above a nanovolt means
/// the values came from somewhere strange (e.g. a robust fit, which also
/// trips the `robust_recovery` trigger) and the die deserves its full
/// corner plan.
pub const ADAPTIVE_RMS_RESIDUAL_V: f64 = 1e-9;

impl CornerOutcome {
    fn quarantined(kind: FailureKind, attempts: u32) -> Self {
        CornerOutcome {
            bin: YieldBin::SolveFail,
            values: None,
            failure: Some(kind),
            attempts,
            recovered_from: None,
            robust_recovery: false,
            outliers_rejected: 0,
        }
    }

    /// A corner the adaptive scheduler retired without running.
    #[must_use]
    pub fn skipped() -> Self {
        CornerOutcome {
            bin: YieldBin::Skipped,
            values: None,
            failure: None,
            attempts: 0,
            recovered_from: None,
            robust_recovery: false,
            outliers_rejected: 0,
        }
    }

    /// Whether this outcome, as an adaptive probe, escalates its die to
    /// the full corner plan. Anything short of a first-attempt analytic
    /// pass with a negligible residual escalates: an out-of-window or
    /// failed bin, a recorded failure, a retry, a robust recovery,
    /// rejected outliers, or an RMS residual above
    /// [`ADAPTIVE_RMS_RESIDUAL_V`].
    #[must_use]
    pub fn flags_escalation(&self) -> bool {
        self.bin != YieldBin::Pass
            || self.failure.is_some()
            || self.attempts > 1
            || self.recovered_from.is_some()
            || self.robust_recovery
            || self.outliers_rejected > 0
            || self
                .values
                .is_none_or(|v| v.rms_residual_v > ADAPTIVE_RMS_RESIDUAL_V)
    }
}

/// Wall-clock of the die's pipeline stages (observability only — never
/// part of the deterministic aggregate).
///
/// # Contract
///
/// Every field is an **accumulator** over all entries of its stage within
/// one die: a stage entered once per corner (measure, extract) sums
/// across corners, never overwrites. The totals are derived from the same
/// [`icvbe_trace::TraceBuf`] stage spans the campaign trace exports, so
/// the coarse histograms in `campaign_metrics.json` and the span trace in
/// `campaign_trace.json` share one timing source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DieTiming {
    /// Process-sample generation, ns.
    pub sample_ns: u64,
    /// Bench measurement (all corners, all setpoints), ns.
    pub measure_ns: u64,
    /// Thermometry + extraction (all attempts + robust recovery), ns.
    pub extract_ns: u64,
}

/// Everything one die produced.
#[derive(Debug, Clone, PartialEq)]
pub struct DieOutcome {
    /// Dense die index (campaign order).
    pub index: usize,
    /// Wafer row.
    pub row: usize,
    /// Wafer column.
    pub col: usize,
    /// Per-corner outcomes, in spec corner order.
    pub corners: Vec<CornerOutcome>,
    /// Stage wall-clocks.
    pub timing: DieTiming,
    /// Span records of this die's pipeline (empty unless the scratch's
    /// trace buffer was enabled). Logical fields are deterministic; the
    /// `ts_ns`/`worker` fields are wall clock.
    pub spans: Vec<TraceEvent>,
}

/// Per-thread scratch for the die pipeline: solver workspaces, iteration
/// counters, the reusable measurement-point buffers (pristine + working
/// copy), the robust-fit pool and its IRLS workspace.
///
/// With the default (unlimited) [`budget`], nothing in here affects
/// results — [`run_die_with`] is bitwise identical to [`run_die`] for any
/// scratch state — it only removes per-die allocations and carries the
/// solver statistics the worker pool folds into the campaign metrics. An
/// armed budget is the one deliberate exception: it retires corners.
///
/// [`budget`]: DieScratch::budget
#[derive(Debug, Default)]
pub struct DieScratch {
    /// Bench-level scratch: circuit solver workspace plus counters.
    pub bench: BenchScratch,
    /// Per-die solve containment budget (default: unlimited). Unlike the
    /// rest of the scratch this *does* affect results when set — corners
    /// past exhaustion are retired — which is exactly its job.
    pub budget: DieBudget,
    /// The uncorrupted measurement of the current corner.
    pristine: Vec<PairCampaignPoint>,
    /// Working copy the fault plan corrupts per attempt.
    points: Vec<PairCampaignPoint>,
    /// Pooled `(T, VBE, IC)` samples across attempts for robust recovery.
    pool_t: Vec<f64>,
    pool_vbe: Vec<f64>,
    pool_ic: Vec<f64>,
    /// IRLS workspace for the pooled robust fit.
    robust: RobustWorkspace,
}

impl DieScratch {
    /// An empty scratch.
    #[must_use]
    pub fn new() -> Self {
        DieScratch::default()
    }
}

fn classify(window: &SpecWindow, eg: f64, xti: f64) -> YieldBin {
    if eg < window.eg_min {
        YieldBin::EgLow
    } else if eg > window.eg_max {
        YieldBin::EgHigh
    } else if xti < window.xti_min {
        YieldBin::XtiLow
    } else if xti > window.xti_max {
        YieldBin::XtiHigh
    } else {
        YieldBin::Pass
    }
}

fn make_bench(profile: BenchProfile, seed: u64) -> TestStructureBench {
    match profile {
        BenchProfile::Paper => TestStructureBench::paper_bench(seed),
        BenchProfile::Ideal => TestStructureBench::ideal(seed),
    }
}

/// The eq.-16/20 die-temperature computation for a non-reference point.
fn computed_temperature(
    p: &PairCampaignPoint,
    refp: &PairCampaignPoint,
) -> Result<Kelvin, icvbe_core::ExtractionError> {
    let x = PairCurrents {
        ica_t: p.ic_a,
        icb_t: p.ic_b,
        ica_ref: refp.ic_a,
        icb_ref: refp.ic_b,
    }
    .x_factor()?;
    temperature_from_dvbe_corrected(p.dvbe, refp.dvbe, refp.sensor_temperature, x)
}

/// A point the chamber lost outright: every electrical reading dead.
fn point_is_dead(p: &PairCampaignPoint) -> bool {
    !p.sensor_temperature.value().is_finite()
        && !p.vbe_a.value().is_finite()
        && !p.dvbe.value().is_finite()
}

fn point_is_finite(p: &PairCampaignPoint) -> bool {
    p.sensor_temperature.value().is_finite()
        && p.vbe_a.value().is_finite()
        && p.vbe_b.value().is_finite()
        && p.dvbe.value().is_finite()
        && p.ic_a.value().is_finite()
        && p.ic_b.value().is_finite()
}

/// Two consecutive points with verbatim-identical readings: a latched
/// instrument. Clean measurements can never collide exactly (independent
/// noise on every reading), so the check is inert on unfaulted data.
fn point_is_latched(p: &PairCampaignPoint, prev: &PairCampaignPoint) -> bool {
    p.sensor_temperature.value() == prev.sensor_temperature.value()
        && p.vbe_a.value() == prev.vbe_a.value()
        && p.dvbe.value() == prev.dvbe.value()
}

/// One analytic extraction attempt over a (possibly corrupted) series,
/// classified by detection on failure.
fn attempt_extract(pts: &[PairCampaignPoint]) -> Result<CornerValues, FailureKind> {
    if pts.len() < 3 || pts.iter().any(point_is_dead) {
        return Err(FailureKind::InsufficientPoints);
    }
    if !pts.iter().all(point_is_finite) {
        return Err(FailureKind::NonFiniteInput);
    }
    if pts.windows(2).any(|w| point_is_latched(&w[1], &w[0])) {
        return Err(FailureKind::Degenerate);
    }
    let refp = &pts[1];
    let run = || {
        let t_cold = computed_temperature(&pts[0], refp)?;
        let t_hot = computed_temperature(&pts[2], refp)?;
        let m = TestStructureBench::meijer_from_points(
            [&pts[0], &pts[1], &pts[2]],
            [t_cold, refp.sensor_temperature, t_hot],
        );
        let fit = extract(&m)?;
        Ok::<CornerValues, icvbe_core::ExtractionError>(CornerValues {
            eg_ev: fit.eg.value(),
            xti: fit.xti,
            rms_residual_v: fit.rms_residual_volts,
            t_cold_k: t_cold.value(),
            t_hot_k: t_hot.value(),
            t_cold_err_k: t_cold.value() - pts[0].die_temperature.value(),
            t_hot_err_k: t_hot.value() - pts[2].die_temperature.value(),
        })
    };
    let v = run().map_err(|_| FailureKind::Degenerate)?;
    if v.eg_ev.is_finite() && v.xti.is_finite() && v.rms_residual_v.is_finite() {
        Ok(v)
    } else {
        Err(FailureKind::Degenerate)
    }
}

/// Pools one attempt's samples for the robust fallback fit. Temperatures
/// come from the *corrupted* attempt itself (per-attempt dVBE thermometry
/// for the cold/hot points, the sensor reading for the reference) — the
/// recovery never peeks at the pristine buffer; only non-finite triples
/// are screened out, the robust loss handles the merely-wrong ones.
fn pool_attempt(pts: &[PairCampaignPoint], pool: &mut RecoveryPool) {
    let refp = &pts[1];
    let temps = [
        computed_temperature(&pts[0], refp)
            .map(|t| t.value())
            .unwrap_or(f64::NAN),
        refp.sensor_temperature.value(),
        computed_temperature(&pts[2], refp)
            .map(|t| t.value())
            .unwrap_or(f64::NAN),
    ];
    for (i, (&t, p)) in temps.iter().zip(pts.iter()).enumerate() {
        let (vbe, ic) = (p.vbe_a.value(), p.ic_a.value());
        if t.is_finite() && t > 0.0 && vbe.is_finite() && ic.is_finite() && ic > 0.0 {
            pool.t.push(t);
            pool.vbe.push(vbe);
            pool.ic.push(ic);
            match i {
                0 => {
                    pool.cold_sum += t;
                    pool.cold_n += 1;
                }
                2 => {
                    pool.hot_sum += t;
                    pool.hot_n += 1;
                }
                _ => {
                    if pool.reference.is_none() {
                        pool.reference = Some((t, ic, vbe));
                    }
                }
            }
        }
    }
}

/// Borrowed view over the scratch's pooled-sample buffers plus the small
/// per-corner accumulators of the robust recovery.
struct RecoveryPool<'a> {
    t: &'a mut Vec<f64>,
    vbe: &'a mut Vec<f64>,
    ic: &'a mut Vec<f64>,
    /// `(t_ref, ic_ref, vbe_ref guess)` from the first usable reference.
    reference: Option<(f64, f64, f64)>,
    cold_sum: f64,
    cold_n: u32,
    hot_sum: f64,
    hot_n: u32,
}

/// The pooled robust IRLS fit over every attempt's samples. Returns a
/// passing outcome or `None` when the fit fails, blows up, or stays out
/// of window.
#[allow(clippy::too_many_arguments)]
fn robust_recovery(
    spec: &CampaignSpec,
    pool: &RecoveryPool<'_>,
    ws: &mut RobustWorkspace,
    trace: &mut TraceBuf,
    true_cold: f64,
    true_hot: f64,
    attempts: u32,
    first_error: Option<FailureKind>,
) -> Option<CornerOutcome> {
    let (t_ref, ic_ref, vbe_guess) = pool.reference?;
    // Three parameters need slack to reject outliers: below four pooled
    // samples the fit is a tautology, not a recovery.
    if pool.t.len() < 4 {
        return None;
    }
    let model = Eq13PointModel::new(pool.t, pool.vbe, pool.ic, t_ref, ic_ref).ok()?;
    let options = RobustOptions {
        loss: RobustLoss::Tukey,
        ..RobustOptions::default()
    };
    let mut p = [1.16, 3.0, vbe_guess];
    let fit = fit_robust_traced(&model, &mut p, &options, ws, trace).ok()?;
    let (eg, xti) = (p[0], p[1]);
    if !eg.is_finite() || !xti.is_finite() {
        return None;
    }
    let bin = classify(&spec.window, eg, xti);
    if bin != YieldBin::Pass {
        return None;
    }
    // Unweighted RMS over the inlier residuals, the robust analogue of
    // the analytic fit's residual figure.
    let mut ss = 0.0;
    let mut n = 0u32;
    for (&r, &out) in ws.residuals().iter().zip(ws.outlier_flags()) {
        if !out && r.is_finite() {
            ss += r * r;
            n += 1;
        }
    }
    let rms = if n > 0 {
        (ss / f64::from(n)).sqrt()
    } else {
        fit.scale
    };
    let t_cold_k = if pool.cold_n > 0 {
        pool.cold_sum / f64::from(pool.cold_n)
    } else {
        f64::NAN
    };
    let t_hot_k = if pool.hot_n > 0 {
        pool.hot_sum / f64::from(pool.hot_n)
    } else {
        f64::NAN
    };
    Some(CornerOutcome {
        bin,
        values: Some(CornerValues {
            eg_ev: eg,
            xti,
            rms_residual_v: rms,
            t_cold_k,
            t_hot_k,
            t_cold_err_k: t_cold_k - true_cold,
            t_hot_err_k: t_hot_k - true_hot,
        }),
        failure: None,
        attempts,
        recovered_from: Some(first_error.unwrap_or(FailureKind::OutlierRejected)),
        robust_recovery: true,
        outliers_rejected: u32::try_from(fit.outliers).unwrap_or(u32::MAX),
    })
}

/// The attempt loop over one pristine measurement: corrupt, extract,
/// retry, then fall back to the pooled robust fit.
fn corner_recovery(
    spec: &CampaignSpec,
    site: DieSite,
    corner_idx: usize,
    scratch: &mut DieScratch,
) -> CornerOutcome {
    let inject = !spec.faults.is_none();
    let budget = if inject { 1 + spec.retry_budget } else { 1 };
    let pooling = inject && spec.robust;
    scratch.pool_t.clear();
    scratch.pool_vbe.clear();
    scratch.pool_ic.clear();
    let mut pool = RecoveryPool {
        t: &mut scratch.pool_t,
        vbe: &mut scratch.pool_vbe,
        ic: &mut scratch.pool_ic,
        reference: None,
        cold_sum: 0.0,
        cold_n: 0,
        hot_sum: 0.0,
        hot_n: 0,
    };
    // Ground truth for the temperature-error columns comes from the
    // pristine measurement: corruption garbles readings, not the die.
    let true_cold = scratch.pristine[0].die_temperature.value();
    let true_hot = scratch.pristine[2].die_temperature.value();

    let mut first_error: Option<FailureKind> = None;
    let mut fallback: Option<(CornerValues, Option<FailureKind>, u32)> = None;
    let mut attempts = 0u32;

    for attempt in 0..budget {
        attempts = attempt + 1;
        scratch.points.clear();
        scratch.points.extend_from_slice(&scratch.pristine);
        if inject {
            let seed = stream_seed(
                spec.seed,
                site.index as u64,
                Stream::Faults {
                    corner: corner_idx as u32,
                    attempt,
                },
            );
            FaultPlan::new(spec.faults, seed).apply(&mut scratch.points);
        }
        scratch.bench.solve.trace.set_attempt(attempt as i32);
        let attempt_span = scratch.bench.solve.trace.span(SpanKind::Attempt);
        let result = attempt_extract(&scratch.points);
        scratch
            .bench
            .solve
            .trace
            .span_end_with(attempt_span, u64::from(result.is_ok()), 0);
        match result {
            Ok(v) => {
                let bin = classify(&spec.window, v.eg_ev, v.xti);
                if bin == YieldBin::Pass {
                    scratch.bench.solve.trace.set_attempt(-1);
                    return CornerOutcome {
                        bin,
                        values: Some(v),
                        failure: None,
                        attempts,
                        recovered_from: first_error,
                        robust_recovery: false,
                        outliers_rejected: 0,
                    };
                }
                if fallback.is_none() {
                    fallback = Some((v, first_error, attempts));
                }
            }
            Err(kind) => {
                if first_error.is_none() {
                    first_error = Some(kind);
                }
            }
        }
        if pooling {
            pool_attempt(&scratch.points, &mut pool);
        }
    }
    scratch.bench.solve.trace.set_attempt(-1);

    let mut robust_ran = false;
    if pooling {
        robust_ran = pool.reference.is_some() && pool.t.len() >= 4;
        if let Some(out) = robust_recovery(
            spec,
            &pool,
            &mut scratch.robust,
            &mut scratch.bench.solve.trace,
            true_cold,
            true_hot,
            attempts,
            first_error,
        ) {
            return out;
        }
    }
    if let Some((v, recovered_from, _)) = fallback {
        return CornerOutcome {
            bin: classify(&spec.window, v.eg_ev, v.xti),
            values: Some(v),
            failure: None,
            attempts,
            recovered_from,
            robust_recovery: false,
            outliers_rejected: 0,
        };
    }
    // Every attempt hard-failed. If the robust fit got to examine the
    // pooled data and still rejected it, that verdict supersedes the
    // first raw symptom.
    let kind = if robust_ran {
        FailureKind::OutlierRejected
    } else {
        first_error.unwrap_or(FailureKind::Degenerate)
    };
    CornerOutcome::quarantined(kind, attempts)
}

fn run_corner(
    spec: &CampaignSpec,
    sample: &DieSample,
    site: DieSite,
    corner_idx: usize,
    setpoints: &[Celsius],
    scratch: &mut DieScratch,
) -> CornerOutcome {
    let bench_seed = stream_seed(
        spec.seed,
        site.index as u64,
        Stream::Bench(corner_idx as u32),
    );
    let mut bench = make_bench(spec.bench, bench_seed);

    scratch.bench.solve.trace.set_corner(corner_idx as i32);
    let corner_span = scratch.bench.solve.trace.span(SpanKind::Corner);
    let measure = scratch.bench.solve.trace.stage(SpanKind::Measure);
    let measured = bench.run_pair_campaign_with(
        sample,
        spec.corners[corner_idx].ic,
        setpoints,
        &mut scratch.bench,
        &mut scratch.pristine,
        SolveMode {
            warm_start: spec.warm_start,
            bypass: spec.bypass,
            sparse: spec.sparse,
        },
    );
    scratch.bench.solve.trace.stage_end(measure);
    if measured.is_err() {
        scratch.bench.solve.trace.span_end(corner_span);
        scratch.bench.solve.trace.set_corner(-1);
        // The circuit never converged; there is nothing to corrupt or
        // retry (the bench is deterministic per corner).
        return CornerOutcome::quarantined(FailureKind::NonConvergence, 1);
    }

    let extract_stage = scratch.bench.solve.trace.stage(SpanKind::Extract);
    let out = corner_recovery(spec, site, corner_idx, scratch);
    scratch.bench.solve.trace.stage_end(extract_stage);
    scratch.bench.solve.trace.span_end(corner_span);
    scratch.bench.solve.trace.set_corner(-1);
    out
}

/// Runs the full pipeline of one die. Infallible by design: failures are
/// binned, not raised, because a wafer campaign must outlive bad dies.
///
/// Convenience wrapper over [`run_die_with`] with a private scratch; both
/// are pure functions of `(spec, site)` and produce identical outcomes.
#[must_use]
pub fn run_die(spec: &CampaignSpec, site: DieSite) -> DieOutcome {
    run_die_with(spec, site, &spec.plan.setpoints(), &mut DieScratch::new())
}

/// [`run_die`] for the worker hot path: the caller hoists the setpoint
/// list (computed once per campaign, not once per corner) and owns the
/// scratch that carries solver buffers and counters across dies.
#[must_use]
pub fn run_die_with(
    spec: &CampaignSpec,
    site: DieSite,
    setpoints: &[Celsius],
    scratch: &mut DieScratch,
) -> DieOutcome {
    scratch.bench.solve.trace.begin_die(site.index as u32);

    let sample_stage = scratch.bench.solve.trace.stage(SpanKind::Sample);
    let process_seed = stream_seed(spec.seed, site.index as u64, Stream::Process);
    let sample = SampleFactory::seeded(process_seed)
        .with_spec(spec.variation)
        .draw(site.index + 1);
    scratch.bench.solve.trace.stage_end(sample_stage);

    // Containment watchdog: snapshot the cumulative Newton-iteration
    // counter at die start and re-check after every corner; the wall
    // clock only ticks when a wall budget is armed. A corner that is
    // *started* always runs to completion — the budget retires only the
    // corners after the overrun, so the iteration verdict is a pure
    // function of `(spec, die)` and stays thread-count independent.
    let budget = scratch.budget;
    let newton_start = scratch.bench.solve.stats.newton_iterations;
    let wall_start = (budget.max_wall_ms > 0).then(std::time::Instant::now);

    let mut corners = Vec::with_capacity(spec.corners.len());
    let mut exhausted = false;
    let mut skip_rest = false;
    for k in 0..spec.corners.len() {
        // Budget exhaustion outranks adaptive skipping: a die that blew
        // its containment budget is quarantined, not quietly skipped.
        if exhausted {
            corners.push(CornerOutcome::quarantined(FailureKind::BudgetExhausted, 0));
            continue;
        }
        if skip_rest {
            corners.push(CornerOutcome::skipped());
            continue;
        }
        corners.push(run_corner(spec, &sample, site, k, setpoints, scratch));
        if spec.adaptive && k == 0 {
            skip_rest = !corners[0].flags_escalation();
        }
        if budget.max_newton_iterations > 0 {
            let spent = scratch
                .bench
                .solve
                .stats
                .newton_iterations
                .wrapping_sub(newton_start);
            exhausted |= spent >= budget.max_newton_iterations;
        }
        if let Some(t0) = wall_start {
            exhausted |= t0.elapsed().as_millis() as u64 >= budget.max_wall_ms;
        }
    }

    // One timing source of truth: the coarse DieTiming totals come from
    // the same stage-span accumulators the trace exports, and they
    // *accumulate* across corners by construction (see `DieTiming`).
    let (stage_ns, spans) = scratch.bench.solve.trace.end_die();
    DieOutcome {
        index: site.index,
        row: site.row,
        col: site.col,
        corners,
        timing: DieTiming {
            sample_ns: stage_ns[0],
            measure_ns: stage_ns[1],
            extract_ns: stage_ns[2],
        },
        spans,
    }
}

/// The outcome recorded for a die whose pipeline panicked: every corner
/// retired as [`FailureKind::InternalPanic`], zero timing, no spans.
///
/// Used by the worker's unwind guard — the die's scratch is poisoned
/// mid-flight when a panic escapes, so nothing measured survives; the
/// campaign records the containment instead of dying with the die.
#[must_use]
pub fn contained_panic_outcome(spec: &CampaignSpec, site: DieSite) -> DieOutcome {
    DieOutcome {
        index: site.index,
        row: site.row,
        col: site.col,
        corners: (0..spec.corners.len())
            .map(|_| CornerOutcome::quarantined(FailureKind::InternalPanic, 0))
            .collect(),
        timing: DieTiming::default(),
        spans: Vec::new(),
    }
}

/// Per-worker scratch of the batched die pipeline: one [`DieScratch`]
/// per lane plus the shared lane-strided solver workspace and the
/// lane-utilization accumulator.
///
/// Like [`DieScratch`], nothing in here affects results:
/// [`run_dies_batch`] is bitwise identical to running each die through
/// [`run_die_with`] with the corresponding lane's scratch.
#[derive(Debug, Default)]
pub struct BatchDieScratch {
    /// One solver scratch per lane; the worker pool installs symbolic
    /// caches and enables tracing on each before the first group.
    pub lanes: Vec<DieScratch>,
    /// Lane-strided factorization/state buffers of the batched driver.
    batch: BatchWorkspace,
    /// Lane-utilization stats accumulated since the last [`take_sweep`].
    ///
    /// [`take_sweep`]: BatchDieScratch::take_sweep
    sweep: BatchSweepStats,
    /// Per-lane sweep errors, reused across corners.
    errors: Vec<Option<BenchError>>,
}

impl BatchDieScratch {
    /// A scratch with `lanes` empty per-lane slots.
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        BatchDieScratch {
            lanes: (0..lanes).map(|_| DieScratch::new()).collect(),
            ..BatchDieScratch::default()
        }
    }

    /// Drains the accumulated lane-utilization stats.
    pub fn take_sweep(&mut self) -> BatchSweepStats {
        std::mem::take(&mut self.sweep)
    }
}

/// Runs up to `scratch.lanes.len()` dies in lockstep through the batched
/// solve pipeline, appending one [`DieOutcome`] per site (in site order)
/// to `out`.
///
/// Bitwise identical to running each site through [`run_die_with`]: the
/// batched sweep replays the scalar sweep's arithmetic per lane, retired
/// or unprimed lanes redo the affected solve on the scalar path against
/// device caches the batched attempt only ever warmed with exact bits,
/// and the per-lane recovery/extract stages are the scalar ones. Only
/// solver-effort counters and span counts differ.
///
/// # Panics
///
/// If `sites` exceeds the scratch's lane count, or if the spec enables
/// adaptive corner scheduling — the lockstep driver iterates corners in
/// the outer loop across all lanes, which cannot express a per-die skip
/// decision taken after the probe corner; the worker pool forces the
/// scalar path for adaptive specs.
pub fn run_dies_batch(
    spec: &CampaignSpec,
    sites: &[DieSite],
    setpoints: &[Celsius],
    scratch: &mut BatchDieScratch,
    out: &mut Vec<DieOutcome>,
) {
    let n = sites.len();
    assert!(
        n <= scratch.lanes.len(),
        "{n} sites for {} lanes",
        scratch.lanes.len()
    );
    assert!(
        !spec.adaptive,
        "adaptive corner scheduling requires the scalar die path"
    );

    // Per-lane sample stage, exactly as `run_die_with`.
    let mut samples: Vec<DieSample> = Vec::with_capacity(n);
    for (ds, site) in scratch.lanes[..n].iter_mut().zip(sites) {
        ds.bench.solve.trace.begin_die(site.index as u32);
        let sample_stage = ds.bench.solve.trace.stage(SpanKind::Sample);
        let process_seed = stream_seed(spec.seed, site.index as u64, Stream::Process);
        samples.push(
            SampleFactory::seeded(process_seed)
                .with_spec(spec.variation)
                .draw(site.index + 1),
        );
        ds.bench.solve.trace.stage_end(sample_stage);
    }

    let mut corners: Vec<Vec<CornerOutcome>> = (0..n)
        .map(|_| Vec::with_capacity(spec.corners.len()))
        .collect();
    for k in 0..spec.corners.len() {
        let mut benches: Vec<TestStructureBench> = sites
            .iter()
            .map(|site| {
                let bench_seed = stream_seed(spec.seed, site.index as u64, Stream::Bench(k as u32));
                make_bench(spec.bench, bench_seed)
            })
            .collect();
        let mut corner_spans = Vec::with_capacity(n);
        let mut measure_stages = Vec::with_capacity(n);
        for ds in scratch.lanes[..n].iter_mut() {
            ds.bench.solve.trace.set_corner(k as i32);
            corner_spans.push(ds.bench.solve.trace.span(SpanKind::Corner));
            measure_stages.push(ds.bench.solve.trace.stage(SpanKind::Measure));
        }

        scratch.errors.clear();
        scratch.errors.resize_with(n, || None);
        {
            let mut lane_views: Vec<BenchLane<'_>> = Vec::with_capacity(n);
            for ((ds, bench), sample) in scratch.lanes[..n]
                .iter_mut()
                .zip(benches.iter_mut())
                .zip(samples.iter())
            {
                let DieScratch {
                    bench: lane_scratch,
                    pristine,
                    ..
                } = ds;
                lane_views.push(BenchLane {
                    bench,
                    sample,
                    scratch: lane_scratch,
                    out: pristine,
                });
            }
            run_pair_campaign_batch(
                &mut lane_views,
                spec.corners[k].ic,
                setpoints,
                SolveMode {
                    warm_start: spec.warm_start,
                    bypass: spec.bypass,
                    sparse: spec.sparse,
                },
                &mut scratch.batch,
                &mut scratch.sweep,
                &mut scratch.errors,
            );
        }

        for (l, (site, ds)) in sites.iter().zip(scratch.lanes[..n].iter_mut()).enumerate() {
            ds.bench.solve.trace.stage_end(measure_stages[l]);
            if scratch.errors[l].is_some() {
                ds.bench.solve.trace.span_end(corner_spans[l]);
                ds.bench.solve.trace.set_corner(-1);
                // Same verdict as the scalar path: the circuit never
                // converged; there is nothing to corrupt or retry.
                corners[l].push(CornerOutcome::quarantined(FailureKind::NonConvergence, 1));
                continue;
            }
            let extract_stage = ds.bench.solve.trace.stage(SpanKind::Extract);
            let outcome = corner_recovery(spec, *site, k, ds);
            ds.bench.solve.trace.stage_end(extract_stage);
            ds.bench.solve.trace.span_end(corner_spans[l]);
            ds.bench.solve.trace.set_corner(-1);
            corners[l].push(outcome);
        }
    }

    for ((ds, site), lane_corners) in scratch.lanes[..n].iter_mut().zip(sites).zip(corners) {
        let (stage_ns, spans) = ds.bench.solve.trace.end_die();
        out.push(DieOutcome {
            index: site.index,
            row: site.row,
            col: site.col,
            corners: lane_corners,
            timing: DieTiming {
                sample_ns: stage_ns[0],
                measure_ns: stage_ns[1],
                extract_ns: stage_ns[2],
            },
            spans,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WaferMap;
    use icvbe_instrument::faults::FaultSpec;

    fn small_spec() -> CampaignSpec {
        let mut s = CampaignSpec::paper_default(WaferMap::full(2, 2), 77);
        s.corners.truncate(1);
        s
    }

    #[test]
    fn run_die_is_deterministic() {
        let spec = small_spec();
        let site = spec.wafer.sites()[1];
        let a = run_die(&spec, site);
        let b = run_die(&spec, site);
        assert_eq!(a.corners, b.corners);
        assert_eq!(a.index, 1);
    }

    #[test]
    fn healthy_die_passes_window() {
        let spec = small_spec();
        let out = run_die(&spec, spec.wafer.sites()[0]);
        let c = &out.corners[0];
        assert_eq!(c.bin, YieldBin::Pass, "healthy die binned {:?}", c.bin);
        assert_eq!(c.failure, None);
        assert_eq!(c.attempts, 1, "faults off must mean exactly one attempt");
        assert_eq!(c.recovered_from, None);
        assert!(!c.robust_recovery);
        let v = c.values.unwrap();
        assert!(v.eg_ev > 1.05 && v.eg_ev < 1.25, "EG {}", v.eg_ev);
        // Computed die temperatures land near the plan's -25/+75 °C, plus
        // self-heating of some tens of kelvin.
        assert!(
            v.t_cold_k > 230.0 && v.t_cold_k < 310.0,
            "T1 {}",
            v.t_cold_k
        );
        assert!(v.t_hot_k > 330.0 && v.t_hot_k < 410.0, "T3 {}", v.t_hot_k);
        // The computed temperatures are referenced to the chamber sensor
        // at the reference setpoint, so they sit below the true (self-
        // heated) die temperature by roughly the reference self-heating
        // (~15 K on the paper bench) — bounded, not zero.
        assert!(
            v.t_cold_err_k < 0.0 && v.t_cold_err_k > -25.0,
            "cold err {}",
            v.t_cold_err_k
        );
        assert!(
            v.t_hot_err_k < 0.0 && v.t_hot_err_k > -25.0,
            "hot err {}",
            v.t_hot_err_k
        );
    }

    #[test]
    fn warm_and_cold_dies_are_bit_identical() {
        let spec = small_spec();
        let mut cold_spec = spec.clone();
        cold_spec.warm_start = false;
        for site in spec.wafer.sites() {
            let warm = run_die(&spec, site);
            let cold = run_die(&cold_spec, site);
            assert_eq!(warm.corners, cold.corners, "die {}", site.index);
        }
    }

    #[test]
    fn scratch_reuse_does_not_change_outcomes() {
        let spec = small_spec();
        let setpoints = spec.plan.setpoints();
        let mut scratch = DieScratch::new();
        // Drive several dies through ONE scratch; each must match a run
        // with a fresh scratch bit for bit.
        for site in spec.wafer.sites() {
            let reused = run_die_with(&spec, site, &setpoints, &mut scratch);
            let fresh = run_die(&spec, site);
            assert_eq!(reused.corners, fresh.corners, "die {}", site.index);
        }
    }

    #[test]
    fn classification_covers_every_edge() {
        let w = SpecWindow {
            eg_min: 1.0,
            eg_max: 1.2,
            xti_min: 1.0,
            xti_max: 4.0,
        };
        assert_eq!(classify(&w, 1.1, 2.0), YieldBin::Pass);
        assert_eq!(classify(&w, 0.9, 2.0), YieldBin::EgLow);
        assert_eq!(classify(&w, 1.3, 2.0), YieldBin::EgHigh);
        assert_eq!(classify(&w, 1.1, 0.5), YieldBin::XtiLow);
        assert_eq!(classify(&w, 1.1, 4.5), YieldBin::XtiHigh);
    }

    #[test]
    fn corners_see_independent_bench_noise() {
        let mut spec = CampaignSpec::paper_default(WaferMap::full(1, 1), 5);
        // Two corners at the SAME bias: identical physics, different
        // bench streams -> different noise realizations.
        spec.corners.truncate(2);
        spec.corners[1].ic = spec.corners[0].ic;
        let out = run_die(&spec, spec.wafer.sites()[0]);
        let a = out.corners[0].values.unwrap();
        let b = out.corners[1].values.unwrap();
        assert_ne!(a.eg_ev, b.eg_ev);
    }

    #[test]
    fn faulted_die_is_deterministic_and_consistent() {
        let mut spec = small_spec();
        spec.faults = FaultSpec::heavy();
        for site in spec.wafer.sites() {
            let a = run_die(&spec, site);
            let b = run_die(&spec, site);
            assert_eq!(a.corners, b.corners, "die {}", site.index);
            for c in &a.corners {
                assert_eq!(c.failure.is_some(), c.bin == YieldBin::SolveFail);
                assert_eq!(c.values.is_some(), c.bin != YieldBin::SolveFail);
                assert!(c.attempts >= 1 && c.attempts <= 1 + spec.retry_budget);
            }
        }
    }

    #[test]
    fn certain_drop_quarantines_as_insufficient_points() {
        let mut spec = small_spec();
        spec.faults = FaultSpec {
            drop_probability: 1.0,
            ..FaultSpec::none()
        };
        spec.robust = false;
        let out = run_die(&spec, spec.wafer.sites()[0]);
        let c = &out.corners[0];
        assert_eq!(c.bin, YieldBin::SolveFail);
        assert_eq!(c.failure, Some(FailureKind::InsufficientPoints));
        assert_eq!(c.attempts, 1 + spec.retry_budget);
    }

    #[test]
    fn certain_stuck_quarantines_as_degenerate() {
        let mut spec = small_spec();
        spec.faults = FaultSpec {
            stuck_probability: 1.0,
            ..FaultSpec::none()
        };
        spec.robust = false;
        let out = run_die(&spec, spec.wafer.sites()[0]);
        let c = &out.corners[0];
        assert_eq!(c.bin, YieldBin::SolveFail);
        assert_eq!(c.failure, Some(FailureKind::Degenerate));
    }

    #[test]
    fn certain_nan_quarantines_as_non_finite_input() {
        let mut spec = small_spec();
        spec.faults = FaultSpec {
            nan_probability: 1.0,
            ..FaultSpec::none()
        };
        spec.robust = false;
        let out = run_die(&spec, spec.wafer.sites()[0]);
        let c = &out.corners[0];
        assert_eq!(c.bin, YieldBin::SolveFail);
        assert_eq!(c.failure, Some(FailureKind::NonFiniteInput));
    }

    #[test]
    fn retry_recovers_an_intermittent_drop() {
        // Moderate drop rate: the first realization may kill a point, a
        // retry usually survives. Across 4 dies at this rate at least one
        // corner must record a successful retry.
        let mut spec = small_spec();
        spec.faults = FaultSpec {
            drop_probability: 0.4,
            ..FaultSpec::none()
        };
        spec.retry_budget = 8;
        spec.robust = false;
        let mut recovered = 0u32;
        for site in spec.wafer.sites() {
            let out = run_die(&spec, site);
            let c = &out.corners[0];
            if c.recovered_from == Some(FailureKind::InsufficientPoints)
                && c.bin != YieldBin::SolveFail
            {
                recovered += 1;
                assert!(c.attempts > 1);
            }
        }
        assert!(recovered > 0, "no corner recovered via retry");
    }

    #[test]
    fn batched_dies_match_scalar_dies_bitwise() {
        let mut spec = CampaignSpec::paper_default(WaferMap::full(2, 2), 77);
        spec.corners.truncate(2);
        let setpoints = spec.plan.setpoints();
        let sites = spec.wafer.sites();
        for lanes in [1usize, 2, 4] {
            let mut scratch = BatchDieScratch::new(lanes);
            let mut batched = Vec::new();
            for group in sites.chunks(lanes) {
                run_dies_batch(&spec, group, &setpoints, &mut scratch, &mut batched);
            }
            assert_eq!(batched.len(), sites.len());
            for (out, site) in batched.iter().zip(&sites) {
                let scalar = run_die(&spec, *site);
                assert_eq!(out.index, scalar.index);
                assert_eq!(
                    out.corners, scalar.corners,
                    "lanes={lanes} die {}",
                    site.index
                );
            }
            let sweep = scratch.take_sweep();
            if lanes > 1 {
                assert!(sweep.rounds > 0, "no lockstep rounds at lanes={lanes}");
                assert!(sweep.lanes_active[lanes] > 0, "never fully packed");
            }
        }
    }

    #[test]
    fn batched_dies_match_scalar_dies_under_fault_injection() {
        let mut spec = CampaignSpec::paper_default(WaferMap::full(2, 2), 77);
        spec.corners.truncate(1);
        spec.faults = FaultSpec::heavy();
        let setpoints = spec.plan.setpoints();
        let sites = spec.wafer.sites();
        let mut scratch = BatchDieScratch::new(4);
        let mut batched = Vec::new();
        run_dies_batch(&spec, &sites, &setpoints, &mut scratch, &mut batched);
        for (out, site) in batched.iter().zip(&sites) {
            let scalar = run_die(&spec, *site);
            assert_eq!(out.corners, scalar.corners, "die {}", site.index);
        }
    }

    #[test]
    fn adaptive_clean_die_skips_trailing_corners_and_keeps_probe_bits() {
        let mut spec = CampaignSpec::paper_default(WaferMap::full(2, 2), 77);
        spec.adaptive = true;
        let mut exhaustive = spec.clone();
        exhaustive.adaptive = false;
        for site in spec.wafer.sites() {
            let a = run_die(&spec, site);
            let e = run_die(&exhaustive, site);
            assert!(
                !a.corners[0].flags_escalation(),
                "die {} not clean",
                site.index
            );
            // Probe corner bit-identical to the exhaustive run's corner 0.
            assert_eq!(a.corners[0], e.corners[0], "die {}", site.index);
            for (k, c) in a.corners.iter().enumerate().skip(1) {
                assert_eq!(c.bin, YieldBin::Skipped, "die {} corner {k}", site.index);
                assert_eq!(c.values, None);
                assert_eq!(c.failure, None);
                assert_eq!(c.attempts, 0);
            }
        }
    }

    #[test]
    fn adaptive_flagged_die_escalates_to_the_full_plan() {
        let mut spec = CampaignSpec::paper_default(WaferMap::full(2, 2), 77);
        spec.faults = FaultSpec::heavy();
        spec.adaptive = true;
        let mut exhaustive = spec.clone();
        exhaustive.adaptive = false;
        let mut escalated = 0u32;
        for site in spec.wafer.sites() {
            let a = run_die(&spec, site);
            let e = run_die(&exhaustive, site);
            if a.corners[0].flags_escalation() {
                escalated += 1;
                // Escalated dies run everything: bit-identical to the
                // exhaustive schedule, no Skipped bins anywhere.
                assert_eq!(a.corners, e.corners, "die {}", site.index);
                assert!(a.corners.iter().all(|c| c.bin != YieldBin::Skipped));
            }
        }
        assert!(escalated > 0, "heavy faults flagged no probe corner");
    }

    #[test]
    fn budget_exhaustion_outranks_adaptive_skipping() {
        let mut spec = CampaignSpec::paper_default(WaferMap::full(1, 1), 77);
        spec.adaptive = true;
        let setpoints = spec.plan.setpoints();
        let mut scratch = DieScratch::new();
        scratch.budget.max_newton_iterations = 1; // exhausted after the probe
        let out = run_die_with(&spec, spec.wafer.sites()[0], &setpoints, &mut scratch);
        for c in &out.corners[1..] {
            assert_eq!(c.failure, Some(FailureKind::BudgetExhausted));
            assert_ne!(c.bin, YieldBin::Skipped);
        }
    }

    #[test]
    fn zero_fault_spec_matches_the_unfaulted_pipeline_bitwise() {
        let spec = small_spec();
        let mut explicit = spec.clone();
        explicit.faults = FaultSpec::none();
        explicit.retry_budget = 10; // irrelevant with faults off
        for site in spec.wafer.sites() {
            assert_eq!(
                run_die(&spec, site).corners,
                run_die(&explicit, site).corners
            );
        }
    }
}
