//! Wire codec for [`CampaignSpec`]: a canonical JSON form that travels
//! over the service protocol, plus a fingerprint binding checkpoints to
//! the exact spec that produced them.
//!
//! # Canonical form
//!
//! [`spec_to_json`] emits members in a fixed order with `f64`s in Rust's
//! shortest-round-trip `Display` form, so equal specs always serialize to
//! equal bytes — which is what lets [`spec_fingerprint`] be a plain hash
//! of the document. The campaign seed travels as a **string**: it is a
//! full-width `u64`, and JSON numbers (`f64` on this parser) lose exact
//! integers above 2⁵³.

use icvbe_instrument::faults::FaultSpec;
use icvbe_instrument::montecarlo::VariationSpec;
use icvbe_units::{Ampere, Celsius};

use crate::json::{escape, parse, Json};
use crate::spec::{BenchProfile, BiasCorner, CampaignSpec, SpecWindow, TemperaturePlan, WaferMap};
use crate::CampaignError;

/// Schema tag carried by every encoded spec.
pub const SPEC_SCHEMA: &str = "icvbe-campaign-spec-v1";

fn num(x: f64) -> String {
    format!("{x}")
}

/// Encodes `spec` into its canonical wire JSON (one line, fixed member
/// order).
#[must_use]
pub fn spec_to_json(spec: &CampaignSpec) -> String {
    let corners: Vec<String> = spec
        .corners
        .iter()
        .map(|c| {
            format!(
                "{{\"name\":\"{}\",\"ic\":{}}}",
                escape(&c.name),
                num(c.ic.value())
            )
        })
        .collect();
    let v = &spec.variation;
    let f = &spec.faults;
    format!(
        concat!(
            "{{\"schema\":\"{schema}\",",
            "\"wafer\":{{\"rows\":{rows},\"cols\":{cols},\"circular\":{circ}}},",
            "\"variation\":{{\"is_sigma\":{isg},\"bias_mismatch_sigma\":{bms},",
            "\"readout_offset_mean\":{rom},\"readout_offset_sigma\":{ros},",
            "\"opamp_offset_sigma\":{oos},\"leak_scale_mean\":{lsm},",
            "\"leak_scale_sigma\":{lss},\"rth_sigma\":{rth}}},",
            "\"corners\":[{corners}],",
            "\"plan\":{{\"cold\":{cold},\"reference\":{refr},\"hot\":{hot}}},",
            "\"window\":{{\"eg_min\":{egl},\"eg_max\":{egh},",
            "\"xti_min\":{xtl},\"xti_max\":{xth}}},",
            "\"seed\":\"{seed}\",\"bench\":\"{bench}\",",
            "\"warm_start\":{warm},\"bypass\":{bypass},\"sparse\":{sparse},",
            "\"faults\":{{\"noise_probability\":{fnp},\"noise_sigma_volts\":{fns},",
            "\"stuck_probability\":{fsp},\"drop_probability\":{fdp},",
            "\"drift_sigma_volts\":{fds},\"nan_probability\":{fnn}}},",
            "\"retry_budget\":{retries},\"robust\":{robust}{adaptive}}}"
        ),
        schema = SPEC_SCHEMA,
        rows = spec.wafer.rows(),
        cols = spec.wafer.cols(),
        circ = spec.wafer.is_circular(),
        isg = num(v.is_sigma),
        bms = num(v.bias_mismatch_sigma),
        rom = num(v.readout_offset_mean),
        ros = num(v.readout_offset_sigma),
        oos = num(v.opamp_offset_sigma),
        lsm = num(v.leak_scale_mean),
        lss = num(v.leak_scale_sigma),
        rth = num(v.rth_sigma),
        corners = corners.join(","),
        cold = num(spec.plan.cold.value()),
        refr = num(spec.plan.reference.value()),
        hot = num(spec.plan.hot.value()),
        egl = num(spec.window.eg_min),
        egh = num(spec.window.eg_max),
        xtl = num(spec.window.xti_min),
        xth = num(spec.window.xti_max),
        seed = spec.seed,
        bench = match spec.bench {
            BenchProfile::Paper => "paper",
            BenchProfile::Ideal => "ideal",
        },
        warm = spec.warm_start,
        bypass = spec.bypass,
        sparse = spec.sparse,
        fnp = num(f.noise_probability),
        fns = num(f.noise_sigma_volts),
        fsp = num(f.stuck_probability),
        fdp = num(f.drop_probability),
        fds = num(f.drift_sigma_volts),
        fnn = num(f.nan_probability),
        retries = spec.retry_budget,
        robust = spec.robust,
        // Emitted only when enabled so pre-adaptive specs keep their
        // historical canonical bytes — and therefore their fingerprints,
        // which bind existing checkpoints.
        adaptive = if spec.adaptive {
            ",\"adaptive\":true"
        } else {
            ""
        },
    )
}

fn want<'a>(v: &'a Json, key: &str) -> Result<&'a Json, CampaignError> {
    v.get(key)
        .ok_or_else(|| CampaignError::invalid(format!("spec wire: missing field {key:?}")))
}

fn want_f64(v: &Json, key: &str) -> Result<f64, CampaignError> {
    want(v, key)?
        .as_f64()
        .ok_or_else(|| CampaignError::invalid(format!("spec wire: field {key:?} must be a number")))
}

fn want_bool(v: &Json, key: &str) -> Result<bool, CampaignError> {
    want(v, key)?.as_bool().ok_or_else(|| {
        CampaignError::invalid(format!("spec wire: field {key:?} must be a boolean"))
    })
}

fn want_usize(v: &Json, key: &str) -> Result<usize, CampaignError> {
    let n = want(v, key)?.as_u64().ok_or_else(|| {
        CampaignError::invalid(format!("spec wire: field {key:?} must be a small integer"))
    })?;
    usize::try_from(n)
        .map_err(|_| CampaignError::invalid(format!("spec wire: field {key:?} out of range")))
}

/// Decodes and validates a spec from its wire JSON.
///
/// # Errors
///
/// [`CampaignError::InvalidSpec`] on malformed JSON, a wrong or missing
/// schema tag, missing/ill-typed fields, or a spec that fails
/// [`CampaignSpec::validate`].
pub fn spec_from_json(text: &str) -> Result<CampaignSpec, CampaignError> {
    let v = parse(text).map_err(|e| CampaignError::invalid(format!("spec wire: {e}")))?;
    spec_from_value(&v)
}

/// [`spec_from_json`] over an already-parsed document (the service reads
/// specs embedded inside larger request objects).
///
/// # Errors
///
/// Same contract as [`spec_from_json`].
pub fn spec_from_value(v: &Json) -> Result<CampaignSpec, CampaignError> {
    match want(v, "schema")?.as_str() {
        Some(SPEC_SCHEMA) => {}
        Some(other) => {
            return Err(CampaignError::invalid(format!(
                "spec wire: unsupported schema {other:?} (want {SPEC_SCHEMA:?})"
            )))
        }
        None => return Err(CampaignError::invalid("spec wire: schema must be a string")),
    }

    let wafer_v = want(v, "wafer")?;
    let rows = want_usize(wafer_v, "rows")?;
    let cols = want_usize(wafer_v, "cols")?;
    let wafer = if want_bool(wafer_v, "circular")? {
        if rows != cols {
            return Err(CampaignError::invalid(
                "spec wire: circular wafer must have rows == cols",
            ));
        }
        WaferMap::circular(rows)
    } else {
        WaferMap::full(rows, cols)
    };

    let var_v = want(v, "variation")?;
    let variation = VariationSpec {
        is_sigma: want_f64(var_v, "is_sigma")?,
        bias_mismatch_sigma: want_f64(var_v, "bias_mismatch_sigma")?,
        readout_offset_mean: want_f64(var_v, "readout_offset_mean")?,
        readout_offset_sigma: want_f64(var_v, "readout_offset_sigma")?,
        opamp_offset_sigma: want_f64(var_v, "opamp_offset_sigma")?,
        leak_scale_mean: want_f64(var_v, "leak_scale_mean")?,
        leak_scale_sigma: want_f64(var_v, "leak_scale_sigma")?,
        rth_sigma: want_f64(var_v, "rth_sigma")?,
    };

    let corners_v = want(v, "corners")?
        .as_arr()
        .ok_or_else(|| CampaignError::invalid("spec wire: corners must be an array"))?;
    let mut corners = Vec::with_capacity(corners_v.len());
    for c in corners_v {
        let name = want(c, "name")?
            .as_str()
            .ok_or_else(|| CampaignError::invalid("spec wire: corner name must be a string"))?;
        corners.push(BiasCorner::new(name, Ampere::new(want_f64(c, "ic")?)));
    }

    let plan_v = want(v, "plan")?;
    let plan = TemperaturePlan {
        cold: Celsius::new(want_f64(plan_v, "cold")?),
        reference: Celsius::new(want_f64(plan_v, "reference")?),
        hot: Celsius::new(want_f64(plan_v, "hot")?),
    };

    let win_v = want(v, "window")?;
    let window = SpecWindow {
        eg_min: want_f64(win_v, "eg_min")?,
        eg_max: want_f64(win_v, "eg_max")?,
        xti_min: want_f64(win_v, "xti_min")?,
        xti_max: want_f64(win_v, "xti_max")?,
    };

    let seed = want(v, "seed")?
        .as_str()
        .ok_or_else(|| CampaignError::invalid("spec wire: seed must be a decimal string"))?
        .parse::<u64>()
        .map_err(|_| CampaignError::invalid("spec wire: seed must be a decimal string"))?;

    let bench = match want(v, "bench")?.as_str() {
        Some("paper") => BenchProfile::Paper,
        Some("ideal") => BenchProfile::Ideal,
        _ => {
            return Err(CampaignError::invalid(
                "spec wire: bench must be \"paper\" or \"ideal\"",
            ))
        }
    };

    let faults_v = want(v, "faults")?;
    let faults = FaultSpec {
        noise_probability: want_f64(faults_v, "noise_probability")?,
        noise_sigma_volts: want_f64(faults_v, "noise_sigma_volts")?,
        stuck_probability: want_f64(faults_v, "stuck_probability")?,
        drop_probability: want_f64(faults_v, "drop_probability")?,
        drift_sigma_volts: want_f64(faults_v, "drift_sigma_volts")?,
        nan_probability: want_f64(faults_v, "nan_probability")?,
    };

    let retry_budget = u32::try_from(want_usize(v, "retry_budget")?)
        .map_err(|_| CampaignError::invalid("spec wire: retry_budget out of range"))?;

    let spec = CampaignSpec {
        wafer,
        variation,
        corners,
        plan,
        window,
        seed,
        bench,
        warm_start: want_bool(v, "warm_start")?,
        bypass: want_bool(v, "bypass")?,
        sparse: want_bool(v, "sparse")?,
        faults,
        retry_budget,
        robust: want_bool(v, "robust")?,
        // Absent on pre-adaptive documents: default off.
        adaptive: v.get("adaptive").and_then(Json::as_bool).unwrap_or(false),
    };
    spec.validate()?;
    Ok(spec)
}

/// FNV-1a 64 over the canonical wire form. Two specs share a fingerprint
/// iff they serialize identically, which (canonical form) means they are
/// equal — this is what binds a checkpoint to its spec.
#[must_use]
pub fn spec_fingerprint(spec: &CampaignSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in spec_to_json(spec).as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use icvbe_instrument::faults::FaultSpec;

    fn exotic_spec() -> CampaignSpec {
        let mut s = CampaignSpec::paper_default(WaferMap::circular(7), u64::MAX - 3);
        s.corners[0].name = "weird \"name\"\n".to_string();
        s.corners[1].ic = Ampere::new(1.234_567_890_123e-6);
        s.bench = BenchProfile::Ideal;
        s.warm_start = false;
        s.faults = FaultSpec::light();
        s.retry_budget = 7;
        s.robust = false;
        s
    }

    #[test]
    fn round_trips_paper_default() {
        let s = CampaignSpec::paper_default(WaferMap::full(3, 5), 2002);
        assert_eq!(spec_from_json(&spec_to_json(&s)).unwrap(), s);
    }

    #[test]
    fn round_trips_exotic_spec_including_full_width_seed() {
        let s = exotic_spec();
        let decoded = spec_from_json(&spec_to_json(&s)).unwrap();
        assert_eq!(decoded, s);
        assert_eq!(decoded.seed, u64::MAX - 3);
    }

    #[test]
    fn fingerprint_tracks_spec_identity() {
        let a = exotic_spec();
        let b = exotic_spec();
        assert_eq!(spec_fingerprint(&a), spec_fingerprint(&b));
        let mut c = exotic_spec();
        c.seed ^= 1;
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&c));
    }

    #[test]
    fn adaptive_round_trips_and_leaves_legacy_bytes_untouched() {
        let base = CampaignSpec::paper_default(WaferMap::full(3, 3), 11);
        let text = spec_to_json(&base);
        // Non-adaptive specs must not mention the field at all — their
        // canonical bytes (and fingerprints) predate it.
        assert!(!text.contains("adaptive"));
        // A document without the field decodes as non-adaptive.
        assert!(!spec_from_json(&text).unwrap().adaptive);

        let mut s = base.clone();
        s.adaptive = true;
        let text = spec_to_json(&s);
        assert!(text.contains("\"adaptive\":true"));
        assert_eq!(spec_from_json(&text).unwrap(), s);
        assert_ne!(spec_fingerprint(&s), spec_fingerprint(&base));
    }

    #[test]
    fn decode_rejects_bad_documents() {
        assert!(spec_from_json("not json").is_err());
        assert!(spec_from_json("{}").is_err());
        let s = CampaignSpec::paper_default(WaferMap::full(2, 2), 1);
        let good = spec_to_json(&s);
        assert!(spec_from_json(&good.replace(SPEC_SCHEMA, "wrong-schema")).is_err());
        assert!(spec_from_json(&good.replace("\"seed\":\"1\"", "\"seed\":1")).is_err());
        // An invalid spec (empty corners) decodes structurally but fails
        // validation.
        assert!(spec_from_json(&good.replace(
            "\"corners\":[",
            "\"corners\":[]}" // truncated: malformed, still an error
        ))
        .is_err());
    }

    #[test]
    fn decode_validates_the_spec() {
        let mut s = CampaignSpec::paper_default(WaferMap::full(2, 2), 1);
        s.window.eg_max = s.window.eg_min; // empty window
        let text = spec_to_json(&s);
        assert!(spec_from_json(&text).is_err());
    }
}
