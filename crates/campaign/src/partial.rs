//! Partial-aggregate codec: the complete result of one shard's
//! contiguous die-range slice, serialized so a supervisor process can
//! fold N shards back into the exact bytes of a single-process run.
//!
//! A partial carries three layers:
//!
//! - the **deterministic fold state** ([`CampaignAggregate`]) — exact
//!   superaccumulators, yield bins, taxonomy arrays and quarantine
//!   records, encoded with the same helpers as the checkpoint codec;
//! - the **observability counters** ([`CampaignCounters`]) — scalar
//!   counts, by-kind arrays and log₂ histograms, all plain integers;
//! - the **slice binding** — spec fingerprint plus the `[start_die,
//!   end_die)` range the shard folded, so the supervisor can verify the
//!   shards tile the wafer with no gap or overlap before merging.
//!
//! # Association order
//!
//! [`PartialAggregate::merge`] requires `self.end_die == other.start_die`
//! (checked): partials merge **left to right in ascending die order**,
//! exactly the order the single-process fold visits dies. The moment
//! accumulators are exact (integer limb addition), so they are
//! order-insensitive; the ordering contract exists for the quarantine
//! record list, which is concatenated and must come out die-sorted.
//!
//! Like the checkpoint, the document carries a FNV-1a content checksum so
//! a torn pipe or truncated capture is detected instead of merged.

use crate::aggregate::CampaignAggregate;
use crate::checkpoint::{
    bad, corners_body, corners_from, fnv1a64, quarantine_body, quarantine_from, verify_checksum,
    want, want_u64, want_usize,
};
use crate::json::{parse, Json};
use crate::metrics::{CampaignCounters, LogHistogram, BUCKETS};
use crate::taxonomy::FailureKind;
use crate::CampaignError;
use icvbe_spice::batch::MAX_LANES;
use std::sync::atomic::Ordering;

/// Schema tag carried by every partial-aggregate document.
pub const PARTIAL_SCHEMA: &str = "icvbe-campaign-partial-v1";

/// One shard's complete output: fold state, counters and slice binding.
#[derive(Debug)]
pub struct PartialAggregate {
    /// [`crate::wire::spec_fingerprint`] of the spec the shard ran. The
    /// supervisor must refuse to merge partials from different specs.
    pub fingerprint: u64,
    /// First die of the shard's slice (inclusive).
    pub start_die: usize,
    /// One past the last die of the shard's slice (exclusive).
    pub end_die: usize,
    /// The deterministic fold state over `start_die..end_die`.
    pub aggregate: CampaignAggregate,
    /// The shard's observability counters and histograms.
    pub counters: CampaignCounters,
    /// Peak reorder-buffer size inside the shard (merged by max).
    pub max_reorder_buffer: usize,
}

impl PartialAggregate {
    /// Folds `other` into `self` left to right.
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidSpec`] when the fingerprints differ or the
    /// slices are not adjacent in ascending order (`self.end_die !=
    /// other.start_die`) — merging out of order or across specs would
    /// silently diverge from the single-process bytes.
    pub fn merge(&mut self, other: PartialAggregate) -> Result<(), CampaignError> {
        if self.fingerprint != other.fingerprint {
            return Err(bad(format!(
                "partial fingerprint mismatch: {:016x} vs {:016x}",
                self.fingerprint, other.fingerprint
            )));
        }
        if self.end_die != other.start_die {
            return Err(bad(format!(
                "partials are not adjacent: [{}, {}) then [{}, {})",
                self.start_die, self.end_die, other.start_die, other.end_die
            )));
        }
        self.aggregate.merge(&other.aggregate);
        self.counters.merge(&other.counters);
        self.max_reorder_buffer = self.max_reorder_buffer.max(other.max_reorder_buffer);
        self.end_die = other.end_die;
        Ok(())
    }
}

/// Sparse histogram encoding: nonzero buckets as `[index,count]` pairs
/// plus the running total. All counts are far below 2⁵³, so they travel
/// as plain JSON numbers.
fn hist_json(h: &LogHistogram) -> String {
    let (buckets, total_ns) = h.raw();
    let items: Vec<String> = buckets
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(i, n)| format!("[{i},{n}]"))
        .collect();
    format!(
        "{{\"buckets\":[{}],\"total_ns\":{total_ns}}}",
        items.join(",")
    )
}

fn hist_from(v: &Json, into: &LogHistogram) -> Result<(), CampaignError> {
    let mut buckets = [0u64; BUCKETS];
    for item in want(v, "buckets")?
        .as_arr()
        .ok_or_else(|| bad("histogram buckets must be an array"))?
    {
        let pair = item
            .as_arr()
            .ok_or_else(|| bad("histogram bucket must be an [index, count] pair"))?;
        if pair.len() != 2 {
            return Err(bad("histogram bucket must be an [index, count] pair"));
        }
        let idx = pair[0]
            .as_u64()
            .and_then(|n| usize::try_from(n).ok())
            .filter(|&i| i < BUCKETS)
            .ok_or_else(|| bad("histogram bucket index out of range"))?;
        let n = pair[1]
            .as_u64()
            .ok_or_else(|| bad("histogram bucket count must be a count"))?;
        if buckets[idx] != 0 {
            return Err(bad("duplicate histogram bucket index"));
        }
        buckets[idx] = n;
    }
    into.absorb_raw(&buckets, want_u64(v, "total_ns")?);
    Ok(())
}

fn u64_list_json(xs: &[u64]) -> String {
    let items: Vec<String> = xs.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

fn u64_list_from<const N: usize>(v: &Json, key: &str) -> Result<[u64; N], CampaignError> {
    let a = want(v, key)?
        .as_arr()
        .ok_or_else(|| bad(format!("field {key:?} must be an array")))?;
    if a.len() != N {
        return Err(bad(format!("field {key:?} must have {N} elements")));
    }
    let mut out = [0u64; N];
    for (slot, item) in out.iter_mut().zip(a) {
        *slot = item
            .as_u64()
            .ok_or_else(|| bad(format!("field {key:?} holds non-counts")))?;
    }
    Ok(out)
}

fn counters_json(c: &CampaignCounters) -> String {
    let scalars: Vec<String> = c
        .scalars()
        .iter()
        .map(|(name, v)| format!("\"{name}\":{}", v.load(Ordering::Relaxed)))
        .collect();
    let stages: Vec<String> = c.stages.iter().map(hist_json).collect();
    let by_kind: Vec<u64> = c
        .recovered_by_kind
        .iter()
        .map(|v| v.load(Ordering::Relaxed))
        .collect();
    let lanes: Vec<u64> = c
        .lanes_active
        .iter()
        .map(|v| v.load(Ordering::Relaxed))
        .collect();
    format!(
        concat!(
            "{{{scalars},\"recovered_by_kind\":{by_kind},",
            "\"lanes_active\":{lanes},\"stages\":[{stages}],",
            "\"newton_per_die\":{npd},\"selfheat_per_die\":{spd}}}"
        ),
        scalars = scalars.join(","),
        by_kind = u64_list_json(&by_kind),
        lanes = u64_list_json(&lanes),
        stages = stages.join(","),
        npd = hist_json(&c.newton_per_die),
        spd = hist_json(&c.selfheat_per_die),
    )
}

fn counters_from(v: &Json) -> Result<CampaignCounters, CampaignError> {
    let c = CampaignCounters::default();
    for (name, slot) in c.scalars() {
        slot.store(want_u64(v, name)?, Ordering::Relaxed);
    }
    let by_kind = u64_list_from::<{ FailureKind::COUNT }>(v, "recovered_by_kind")?;
    for (slot, n) in c.recovered_by_kind.iter().zip(by_kind) {
        slot.store(n, Ordering::Relaxed);
    }
    let lanes = u64_list_from::<{ MAX_LANES + 1 }>(v, "lanes_active")?;
    for (slot, n) in c.lanes_active.iter().zip(lanes) {
        slot.store(n, Ordering::Relaxed);
    }
    let stages = want(v, "stages")?
        .as_arr()
        .ok_or_else(|| bad("stages must be an array"))?;
    if stages.len() != c.stages.len() {
        return Err(bad("stages must have one histogram per pipeline stage"));
    }
    for (h, s) in c.stages.iter().zip(stages) {
        hist_from(s, h)?;
    }
    hist_from(want(v, "newton_per_die")?, &c.newton_per_die)?;
    hist_from(want(v, "selfheat_per_die")?, &c.selfheat_per_die)?;
    Ok(c)
}

/// Encodes a partial aggregate as one line of JSON with an embedded
/// FNV-1a content checksum (same excision scheme as the checkpoint).
#[must_use]
pub fn partial_to_json(p: &PartialAggregate) -> String {
    let prefix = format!(
        "{{\"schema\":\"{PARTIAL_SCHEMA}\",\"fingerprint\":\"{:016x}\",",
        p.fingerprint
    );
    let suffix = format!(
        concat!(
            "\"start_die\":{start},\"end_die\":{end},",
            "\"max_reorder_buffer\":{buf},",
            "\"dies\":{dies},\"dies_failed\":{failed},",
            "\"corners\":[{corners}],\"quarantine\":[{quarantine}],",
            "\"counters\":{counters}}}"
        ),
        start = p.start_die,
        end = p.end_die,
        buf = p.max_reorder_buffer,
        dies = p.aggregate.dies,
        failed = p.aggregate.dies_failed,
        corners = corners_body(&p.aggregate),
        quarantine = quarantine_body(&p.aggregate),
        counters = counters_json(&p.counters),
    );
    let mut h = fnv1a64(prefix.as_bytes());
    for &b in suffix.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{prefix}\"checksum\":\"{h:016x}\",{suffix}")
}

/// Decodes a partial-aggregate document.
///
/// # Errors
///
/// [`CampaignError::InvalidSpec`] on malformed JSON, a wrong schema tag,
/// a content-checksum mismatch, or missing/ill-typed fields.
pub fn partial_from_json(text: &str) -> Result<PartialAggregate, CampaignError> {
    verify_checksum(text)?;
    let v = parse(text).map_err(|e| bad(e.to_string()))?;
    if want(&v, "schema")?.as_str() != Some(PARTIAL_SCHEMA) {
        return Err(bad(format!("schema tag must be {PARTIAL_SCHEMA:?}")));
    }
    let fingerprint = want(&v, "fingerprint")?
        .as_str()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| bad("fingerprint must be a hex string"))?;
    let start_die = want_usize(&v, "start_die")?;
    let end_die = want_usize(&v, "end_die")?;
    if end_die < start_die {
        return Err(bad("end_die must be >= start_die"));
    }
    Ok(PartialAggregate {
        fingerprint,
        start_die,
        end_die,
        aggregate: CampaignAggregate {
            dies: want_u64(&v, "dies")?,
            dies_failed: want_u64(&v, "dies_failed")?,
            corners: corners_from(&v)?,
            quarantine: quarantine_from(&v)?,
        },
        counters: counters_from(want(&v, "counters")?)?,
        max_reorder_buffer: want_usize(&v, "max_reorder_buffer")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, WaferMap};
    use crate::wire::spec_fingerprint;
    use crate::worker::run_campaign;

    fn shard_partial(spec: &CampaignSpec, start: usize, end: usize) -> PartialAggregate {
        // Build a partial from a full run (the real shard path slices;
        // the codec doesn't care).
        let run = run_campaign(spec, 1).unwrap();
        let counters = CampaignCounters::default();
        counters
            .completed
            .store(run.aggregate.dies, Ordering::Relaxed);
        counters.stages[0].record_ns(1234);
        counters.newton_per_die.record_ns(17);
        PartialAggregate {
            fingerprint: spec_fingerprint(spec),
            start_die: start,
            end_die: end,
            aggregate: run.aggregate,
            counters,
            max_reorder_buffer: 2,
        }
    }

    #[test]
    fn partial_round_trips_and_re_encodes_byte_identically() {
        let mut spec = CampaignSpec::paper_default(WaferMap::full(3, 3), 41);
        spec.corners.truncate(2);
        let p = shard_partial(&spec, 0, 9);
        let text = partial_to_json(&p);
        let back = partial_from_json(&text).unwrap();
        assert_eq!(back.fingerprint, p.fingerprint);
        assert_eq!((back.start_die, back.end_die), (0, 9));
        assert_eq!(back.aggregate, p.aggregate);
        assert_eq!(back.max_reorder_buffer, 2);
        // The decoded document re-encodes to the same bytes — counters,
        // histograms and aggregate state all survived exactly.
        assert_eq!(partial_to_json(&back), text);
    }

    #[test]
    fn decode_rejects_corrupt_and_mismatched_documents() {
        assert!(partial_from_json("").is_err());
        assert!(partial_from_json("{}").is_err());
        let mut spec = CampaignSpec::paper_default(WaferMap::full(2, 2), 9);
        spec.corners.truncate(1);
        let text = partial_to_json(&shard_partial(&spec, 0, 4));
        assert!(partial_from_json(&text.replace(PARTIAL_SCHEMA, "x")).is_err());
        // A flipped content byte trips the checksum.
        let mut flipped = text.clone().into_bytes();
        let at = text.find("\"start_die\"").unwrap() + 2;
        flipped[at] ^= 0x01;
        assert!(partial_from_json(&String::from_utf8(flipped).unwrap()).is_err());
    }

    #[test]
    fn merge_refuses_gaps_overlaps_and_foreign_specs() {
        let mut spec = CampaignSpec::paper_default(WaferMap::full(2, 2), 9);
        spec.corners.truncate(1);
        let mut left = shard_partial(&spec, 0, 2);
        let gap = shard_partial(&spec, 3, 4);
        assert!(left.merge(gap).is_err());
        let overlap = shard_partial(&spec, 1, 4);
        assert!(left.merge(overlap).is_err());
        let mut foreign = shard_partial(&spec, 2, 4);
        foreign.fingerprint ^= 1;
        assert!(left.merge(foreign).is_err());
        let adjacent = shard_partial(&spec, 2, 4);
        left.merge(adjacent).unwrap();
        assert_eq!((left.start_die, left.end_die), (0, 4));
    }
}
