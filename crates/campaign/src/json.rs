//! A minimal hand-rolled JSON parser (no serde, per the workspace's
//! hermetic-build rule) for the wire and checkpoint codecs.
//!
//! The grammar is standard JSON with two deliberate restrictions that
//! match what this workspace ever produces: numbers are parsed as `f64`
//! (exact integers above 2⁵³ must travel as strings — see
//! [`crate::wire`]), and nesting is depth-limited so a hostile client
//! cannot blow the stack of a service thread parsing its submission.
//!
//! Object member order is preserved (`Vec<(String, Json)>`), duplicate
//! keys resolve to the first occurrence on lookup, and parsing rejects
//! trailing garbage — a concatenation of two documents is not a document.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`]. Far above anything the
/// wire or checkpoint schemas produce (≤ 6), low enough that recursion
/// cannot exhaust a service thread's stack.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first occurrence), `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, `None` on non-strings.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, `None` on non-numbers.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, `None` on non-booleans.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, `None` on non-arrays.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A number that is an exact non-negative integer within `u64` range
    /// **and** below 2⁵³ (where `f64` is still exact), `None` otherwise.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if x.is_finite() && (0.0..9_007_199_254_740_992.0).contains(&x) && x.fract() == 0.0 {
            Some(x as u64)
        } else {
            None
        }
    }
}

/// Parse failure: a message and the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub detail: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.detail)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: impl Into<String>) -> JsonError {
        JsonError {
            detail: detail.into(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word}")))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by any
                            // in-tree writer; reject rather than mis-decode.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("unpaired surrogate"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ if c < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let len = utf8_len(c).ok_or_else(|| self.err("invalid utf-8"))?;
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let x: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        Ok(Json::Num(x))
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.value(depth + 1)?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }
}

/// Length of a UTF-8 sequence from its lead byte (`None` for a
/// continuation or invalid lead byte).
fn utf8_len(lead: u8) -> Option<usize> {
    match lead {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Minimal JSON string escaping (quotes, backslash, control characters) —
/// the inverse of the parser's unescaping, shared by every writer that
/// emits user-influenced strings (tenant names, labels, error details).
#[must_use]
pub fn escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("-2.5e3").unwrap(), Json::Num(-2500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures_and_lookup() {
        let v = parse(r#"{"a":[1,2,{"b":"x"}],"c":null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(arr[0].as_u64(), Some(1));
    }

    #[test]
    fn escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}f λ";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\"", "nul"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn u64_helper_guards_precision() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        // 2^53 itself is no longer trustworthy (2^53 + 1 rounds onto it).
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), None);
    }

    #[test]
    fn round_trips_report_artifacts() {
        // The existing report writers must produce documents this parser
        // accepts — one source of truth for the wire format.
        use crate::spec::{CampaignSpec, WaferMap};
        use crate::worker::run_campaign;
        let mut s = CampaignSpec::paper_default(WaferMap::full(2, 2), 3);
        s.corners.truncate(1);
        let run = run_campaign(&s, 1).unwrap();
        for doc in [
            crate::report::aggregate_json(&run),
            crate::report::quarantine_json(&run),
            crate::report::metrics_json(&run),
        ] {
            parse(&doc).unwrap();
        }
    }
}
