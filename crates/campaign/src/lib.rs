//! Wafer-scale parallel extraction campaigns over the `IC(VBE)` test
//! structure.
//!
//! The paper's test structure exists so that `EG`/`XTI` extraction can run
//! *in production test* across every die of a lot, not once on a lab
//! bench. This crate turns the workspace's single-die pipeline (virtual
//! bench → dVBE die thermometry → Meijer extraction) into a batch engine:
//!
//! - [`spec`]: a [`CampaignSpec`](spec::CampaignSpec) describes the wafer
//!   map, the per-die process perturbations, the bias corners and the
//!   three-setpoint temperature plan, plus the `EG`/`XTI` spec window the
//!   yield is binned against.
//! - [`seeding`]: every die derives its own PRNG streams from the campaign
//!   seed with SplitMix64 mixing, so a die's result depends only on the
//!   campaign seed and the die index — never on scheduling.
//! - [`worker`]: a pure-`std` pool (`std::thread::scope` over an
//!   `Arc<AtomicUsize>` chunk cursor) fans dies out across `N` threads;
//!   outcomes stream back over a channel and are folded **in die-index
//!   order** through a bounded reorder buffer, which is what makes the
//!   aggregate bit-identical for any thread count.
//! - [`aggregate`]: streaming Welford statistics, min/max, yield bins and
//!   the characteristic-straight `EG`-`XTI` scatter summary — memory stays
//!   O(1) in the die count.
//! - [`metrics`]: atomic progress counters and per-stage log₂ wall-clock
//!   histograms, snapshotted into a
//!   [`CampaignMetrics`](metrics::CampaignMetrics).
//! - [`report`]: hand-rolled JSON and CSV writers (no serde) producing the
//!   deterministic `aggregate` and `quarantine` artifacts and the
//!   (timing-bearing, hence non-deterministic) `metrics` artifact.
//! - [`json`] / [`wire`] / [`checkpoint`]: a hand-rolled JSON parser, the
//!   canonical wire codec for specs (with a fingerprint binding state to
//!   the spec that produced it) and a bit-exact checkpoint codec — the
//!   substrate the campaign service (`icvbe-serve`) builds its
//!   submit/stream/resume protocol on.
//! - [`taxonomy`]: the per-corner failure taxonomy. With fault injection
//!   enabled (see `icvbe_instrument::faults`), the die pipeline retries
//!   corrupted measurements under a bounded budget, falls back to a pooled
//!   robust IRLS fit, and quarantines what it cannot recover under a named
//!   [`FailureKind`](taxonomy::FailureKind).
//!
//! # Determinism guarantee
//!
//! For a fixed [`CampaignSpec`](spec::CampaignSpec), the aggregate report
//! bytes are identical for **any** worker-thread count. Two mechanisms
//! combine to give this: per-die seeding (no shared PRNG stream to race
//! on) and in-order folding (floating-point accumulation happens in die
//! order regardless of completion order).
//!
//! # Examples
//!
//! ```
//! use icvbe_campaign::spec::{CampaignSpec, WaferMap};
//! use icvbe_campaign::worker::run_campaign;
//!
//! let spec = CampaignSpec::paper_default(WaferMap::circular(6), 2002);
//! let one = run_campaign(&spec, 1).unwrap();
//! let two = run_campaign(&spec, 2).unwrap();
//! assert_eq!(
//!     icvbe_campaign::report::aggregate_json(&one),
//!     icvbe_campaign::report::aggregate_json(&two),
//! );
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod aggregate;
pub mod checkpoint;
pub mod die;
mod error;
pub mod json;
pub mod metrics;
pub mod partial;
pub mod report;
pub mod seeding;
pub mod spec;
pub mod taxonomy;
pub mod wire;
pub mod worker;

pub use error::CampaignError;
pub use spec::CampaignSpec;
pub use taxonomy::FailureKind;
pub use worker::{
    run_campaign, run_campaign_streaming, run_campaign_with, CampaignRun, RunOptions, StreamOptions,
};
