//! Streaming aggregation: exact-sum statistics, yield bins and the
//! characteristic-straight scatter summary.
//!
//! The engine folds [`DieOutcome`](crate::die::DieOutcome)s **in die-index
//! order** (the worker pool's reorder buffer guarantees the order), so
//! aggregation is reproducible for any thread count while memory stays
//! O(corners), independent of the die count.
//!
//! # Merge semantics
//!
//! Every accumulator here supports a true pairwise `merge` in addition to
//! streaming `absorb`, and the two are **bit-for-bit interchangeable**:
//! absorbing values one at a time, or splitting them into contiguous
//! runs, accumulating each run separately and merging the partials — in
//! left-to-right order or any other tree shape — produces identical
//! state and identical report bytes. The statistics achieve this by
//! accumulating on [`ExactSum`] fixed-point superaccumulators (integer
//! addition is associative; rounding happens once, at report time); the
//! counters are plain integer adds; min/max use `f64::min`/`max`, which
//! are associative over the finite measurement values (the empty
//! accumulator's ±∞ sentinels are absorbing-identity elements). The one
//! order-*sensitive* field is the quarantine list, which is concatenated
//! in merge order — so campaign-level merges must fold partials covering
//! contiguous, ascending die ranges left to right (the shard supervisor's
//! contract, checked by a debug assertion in
//! [`CampaignAggregate::merge`]).

use icvbe_numerics::exact::{ExactSum, Wide, SCALE_EXP};

use crate::die::{CornerOutcome, DieOutcome};
use crate::spec::CampaignSpec;
use crate::taxonomy::FailureKind;

/// Bit shift aligning an accumulator integer with the square of one:
/// `Σx = I·2^s` and `Σx² = Q·2^s` share the scale `s = SCALE_EXP`, so the
/// exact numerator `n·Σx² − (Σx)²` at scale `2s` is `n·Q·2^-s − I²` —
/// and `-s` is this many bits.
const ALIGN_BITS: usize = (-SCALE_EXP) as usize;

/// Scale exponent of derived-statistic numerators (`2 · SCALE_EXP`).
const NUM_SCALE: i64 = 2 * SCALE_EXP as i64;

/// Exact `n·sumsq − sum²` — the non-negative variance/covariance
/// numerator pattern shared by [`Welford`] and [`Scatter`].
fn cross_numerator(n: u64, prod_sum: &ExactSum, a: &ExactSum, b: &ExactSum) -> Wide {
    prod_sum
        .to_wide()
        .mul_u64(n)
        .shl_bits(ALIGN_BITS)
        .sub(&a.to_wide().mul(&b.to_wide()))
}

/// The yield bin of one corner extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YieldBin {
    /// Extraction inside the spec window.
    Pass,
    /// `EG` below the window.
    EgLow,
    /// `EG` above the window.
    EgHigh,
    /// `XTI` below the window.
    XtiLow,
    /// `XTI` above the window.
    XtiHigh,
    /// The die pipeline failed (circuit, thermal or extraction error).
    SolveFail,
    /// The adaptive corner scheduler skipped this corner on a die whose
    /// probe corners showed no anomaly (never emitted on exhaustive
    /// runs; reports only mention the bin when its count is non-zero, so
    /// exhaustive artifacts keep their historical bytes).
    Skipped,
}

impl YieldBin {
    /// Number of bins (the width of a bin-count array).
    pub const COUNT: usize = 7;

    /// All bins, in report order.
    pub const ALL: [YieldBin; YieldBin::COUNT] = [
        YieldBin::Pass,
        YieldBin::EgLow,
        YieldBin::EgHigh,
        YieldBin::XtiLow,
        YieldBin::XtiHigh,
        YieldBin::SolveFail,
        YieldBin::Skipped,
    ];

    /// Stable label used in the JSON/CSV reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            YieldBin::Pass => "pass",
            YieldBin::EgLow => "eg_low",
            YieldBin::EgHigh => "eg_high",
            YieldBin::XtiLow => "xti_low",
            YieldBin::XtiHigh => "xti_high",
            YieldBin::SolveFail => "solve_fail",
            YieldBin::Skipped => "skipped",
        }
    }

    /// Dense index into a bin-count array.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            YieldBin::Pass => 0,
            YieldBin::EgLow => 1,
            YieldBin::EgHigh => 2,
            YieldBin::XtiLow => 3,
            YieldBin::XtiHigh => 4,
            YieldBin::SolveFail => 5,
            YieldBin::Skipped => 6,
        }
    }
}

/// Streaming mean/variance with min/max tracking, on exact sums.
///
/// Historically a Welford recurrence (whose running `mean`/`m2` are
/// order-sensitive and admit no bit-exact pairwise merge); now `Σx` and
/// `Σx²` on [`ExactSum`] superaccumulators, which makes
/// [`Welford::merge`] exactly equivalent to having absorbed the other
/// accumulator's observations in any order. The derived mean, variance
/// and standard deviation are pure functions of the exact state, each
/// rounded from the exactly computed value — so they too are identical
/// between a streamed and a merged accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Welford {
    count: u64,
    sum: ExactSum,
    sumsq: ExactSum,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Welford {
            count: 0,
            sum: ExactSum::zero(),
            sumsq: ExactSum::zero(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Welford {
    /// Folds one observation in.
    pub fn absorb(&mut self, x: f64) {
        self.count += 1;
        self.sum.add_f64(x);
        self.sumsq.add_prod(x, x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Folds another accumulator in. Bit-for-bit equivalent to having
    /// absorbed `other`'s observations directly (in any order); see the
    /// module docs for why the empty accumulator's ±∞ min/max sentinels
    /// merge as identity elements.
    pub fn merge(&mut self, other: &Welford) {
        self.count += other.count;
        self.sum.merge(&other.sum);
        self.sumsq.merge(&other.sumsq);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty): the exact sum rounded once, then
    /// one division.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum.to_f64() / self.count as f64
        }
    }

    /// Unbiased sample variance (0 below two observations), from the
    /// exact numerator `n·Σx² − (Σx)²` — which is non-negative by
    /// Cauchy–Schwarz and *exactly* zero for constant data, so the
    /// catastrophic cancellation of the naive two-sum formula cannot
    /// occur.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let t = cross_numerator(self.count, &self.sumsq, &self.sum, &self.sum);
        t.to_f64_scaled(NUM_SCALE) / (self.count * (self.count - 1)) as f64
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The raw accumulator state `(count, sum, sumsq, min, max)`, for
    /// the checkpoint codec. The empty accumulator's `±inf` min/max
    /// travel through here too — the codec must preserve them
    /// bit-exactly.
    #[must_use]
    pub fn raw(&self) -> (u64, &ExactSum, &ExactSum, f64, f64) {
        (self.count, &self.sum, &self.sumsq, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`Welford::raw`] state. Resuming from
    /// this state and folding the remaining observations produces exactly
    /// the accumulator an uninterrupted run would.
    #[must_use]
    pub fn from_raw(count: u64, sum: ExactSum, sumsq: ExactSum, min: f64, max: f64) -> Self {
        Welford {
            count,
            sum,
            sumsq,
            min,
            max,
        }
    }
}

/// Streaming bivariate moments of the `(XTI, EG)` cloud — the campaign
/// view of the paper's Fig.-6 characteristic straight.
///
/// Extracted pairs are *effective* parameters: each die's `(EG, XTI)`
/// lies on that die's characteristic straight, so across a lot the cloud
/// collapses onto a line whose slope/intercept this summarizes, along
/// with the correlation that tells how tight the collapse is.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scatter {
    n: u64,
    sx: ExactSum,
    sy: ExactSum,
    sxx: ExactSum,
    syy: ExactSum,
    sxy: ExactSum,
}

impl Scatter {
    /// Folds one `(xti, eg)` pair in.
    pub fn absorb(&mut self, xti: f64, eg: f64) {
        self.n += 1;
        self.sx.add_f64(xti);
        self.sy.add_f64(eg);
        self.sxx.add_prod(xti, xti);
        self.syy.add_prod(eg, eg);
        self.sxy.add_prod(xti, eg);
    }

    /// Folds another moment accumulator in — bit-for-bit equivalent to
    /// having absorbed `other`'s pairs directly, in any order.
    pub fn merge(&mut self, other: &Scatter) {
        self.n += other.n;
        self.sx.merge(&other.sx);
        self.sy.merge(&other.sy);
        self.sxx.merge(&other.sxx);
        self.syy.merge(&other.syy);
        self.sxy.merge(&other.sxy);
    }

    /// Number of pairs.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Exact regression numerators at scale `2^NUM_SCALE`:
    /// `(n·Σxy − ΣxΣy, n·Σx² − (Σx)², n·Σy² − (Σy)²)`. The last two are
    /// non-negative by Cauchy–Schwarz and exactly zero for a degenerate
    /// (constant) cloud — which is what lets the guards below test exact
    /// integer positivity instead of comparing rounded floats.
    fn numerators(&self) -> (Wide, Wide, Wide) {
        (
            cross_numerator(self.n, &self.sxy, &self.sx, &self.sy),
            cross_numerator(self.n, &self.sxx, &self.sx, &self.sx),
            cross_numerator(self.n, &self.syy, &self.sy, &self.sy),
        )
    }

    /// Slope of the regression of `EG` on `XTI` (eV per unit `XTI`).
    #[must_use]
    pub fn slope(&self) -> f64 {
        let (a, b, _) = self.numerators();
        if b.is_positive() {
            a.to_f64_scaled(NUM_SCALE) / b.to_f64_scaled(NUM_SCALE)
        } else {
            0.0
        }
    }

    /// Mean of the `XTI` coordinates (0 when empty).
    fn mean_x(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sx.to_f64() / self.n as f64
        }
    }

    /// Mean of the `EG` coordinates (0 when empty).
    fn mean_y(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sy.to_f64() / self.n as f64
        }
    }

    /// Intercept of the regression (eV at `XTI = 0`).
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.mean_y() - self.slope() * self.mean_x()
    }

    /// Pearson correlation of the cloud (0 for a degenerate cloud).
    #[must_use]
    pub fn correlation(&self) -> f64 {
        let (a, b, c) = self.numerators();
        if b.is_positive() && c.is_positive() {
            let bf = b.to_f64_scaled(NUM_SCALE);
            let cf = c.to_f64_scaled(NUM_SCALE);
            a.to_f64_scaled(NUM_SCALE) / (bf.sqrt() * cf.sqrt())
        } else {
            0.0
        }
    }

    /// Coefficient of determination of the straight.
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        let c = self.correlation();
        c * c
    }

    /// The raw moment state `(n, Σx, Σy, Σx², Σy², Σxy)`, for the
    /// checkpoint codec.
    #[must_use]
    #[allow(clippy::type_complexity)]
    pub fn raw(&self) -> (u64, [&ExactSum; 5]) {
        (
            self.n,
            [&self.sx, &self.sy, &self.sxx, &self.syy, &self.sxy],
        )
    }

    /// Rebuilds the moments from [`Scatter::raw`] state.
    #[must_use]
    pub fn from_raw(n: u64, [sx, sy, sxx, syy, sxy]: [ExactSum; 5]) -> Self {
        Scatter {
            n,
            sx,
            sy,
            sxx,
            syy,
            sxy,
        }
    }
}

/// Aggregate over one bias corner.
#[derive(Debug, Clone, PartialEq)]
pub struct CornerAggregate {
    /// Corner label (from the spec).
    pub name: String,
    /// Extracted `EG` statistics, eV.
    pub eg_ev: Welford,
    /// Extracted `XTI` statistics.
    pub xti: Welford,
    /// Fit RMS residual statistics, volts.
    pub rms_residual_v: Welford,
    /// Error of the computed cold-point die temperature vs truth, kelvin.
    pub t_cold_err_k: Welford,
    /// Error of the computed hot-point die temperature vs truth, kelvin.
    pub t_hot_err_k: Welford,
    /// Characteristic-straight scatter of the `(XTI, EG)` cloud.
    pub straight: Scatter,
    /// Yield bin counts, indexed by [`YieldBin::index`].
    pub bins: [u64; YieldBin::COUNT],
    /// Quarantined corners by taxonomy kind, indexed by
    /// [`FailureKind::index`].
    pub failures: [u64; FailureKind::COUNT],
    /// Corners that produced values after at least one failed attempt, by
    /// the kind of the failure they recovered from.
    pub recovered: [u64; FailureKind::COUNT],
    /// Corners whose values came from the pooled robust IRLS fit.
    pub robust_recoveries: u64,
    /// Extra extraction attempts beyond the first, summed over corners.
    pub retries: u64,
    /// Samples the robust fits flagged as outliers, summed over corners.
    pub outliers_rejected: u64,
}

impl CornerAggregate {
    fn new(name: &str) -> Self {
        CornerAggregate {
            name: name.to_string(),
            eg_ev: Welford::default(),
            xti: Welford::default(),
            rms_residual_v: Welford::default(),
            t_cold_err_k: Welford::default(),
            t_hot_err_k: Welford::default(),
            straight: Scatter::default(),
            bins: [0; YieldBin::COUNT],
            failures: [0; FailureKind::COUNT],
            recovered: [0; FailureKind::COUNT],
            robust_recoveries: 0,
            retries: 0,
            outliers_rejected: 0,
        }
    }

    fn absorb(&mut self, c: &CornerOutcome) {
        self.bins[c.bin.index()] += 1;
        if let Some(kind) = c.failure {
            self.failures[kind.index()] += 1;
        }
        if let Some(kind) = c.recovered_from {
            self.recovered[kind.index()] += 1;
        }
        if c.robust_recovery {
            self.robust_recoveries += 1;
        }
        self.retries += u64::from(c.attempts.saturating_sub(1));
        self.outliers_rejected += u64::from(c.outliers_rejected);
        if let Some(v) = &c.values {
            // Robust-recovered corners can carry NaN temperature columns
            // (every cold or hot thermometry sample lost); keep those out
            // of the running moments. Clean-pipeline values are always
            // finite, so the guards are no-ops there.
            self.eg_ev.absorb(v.eg_ev);
            self.xti.absorb(v.xti);
            self.rms_residual_v.absorb(v.rms_residual_v);
            if v.t_cold_err_k.is_finite() {
                self.t_cold_err_k.absorb(v.t_cold_err_k);
            }
            if v.t_hot_err_k.is_finite() {
                self.t_hot_err_k.absorb(v.t_hot_err_k);
            }
            self.straight.absorb(v.xti, v.eg_ev);
        }
    }

    /// Folds another corner's aggregate in — bit-for-bit equivalent to
    /// having absorbed the other aggregate's corner outcomes directly.
    /// Both sides must describe the same spec corner.
    pub fn merge(&mut self, other: &CornerAggregate) {
        debug_assert_eq!(self.name, other.name, "merging different corners");
        self.eg_ev.merge(&other.eg_ev);
        self.xti.merge(&other.xti);
        self.rms_residual_v.merge(&other.rms_residual_v);
        self.t_cold_err_k.merge(&other.t_cold_err_k);
        self.t_hot_err_k.merge(&other.t_hot_err_k);
        self.straight.merge(&other.straight);
        for (a, b) in self.bins.iter_mut().zip(other.bins) {
            *a += b;
        }
        for (a, b) in self.failures.iter_mut().zip(other.failures) {
            *a += b;
        }
        for (a, b) in self.recovered.iter_mut().zip(other.recovered) {
            *a += b;
        }
        self.robust_recoveries += other.robust_recoveries;
        self.retries += other.retries;
        self.outliers_rejected += other.outliers_rejected;
    }

    /// Fraction of *measured* extractions landing in [`YieldBin::Pass`].
    /// Corners the adaptive scheduler skipped are not measurements and
    /// stay out of the denominator (on exhaustive runs the skipped bin is
    /// always zero, so the historical value is unchanged).
    #[must_use]
    pub fn yield_fraction(&self) -> f64 {
        let total: u64 = self.bins.iter().sum::<u64>() - self.bins[YieldBin::Skipped.index()];
        if total == 0 {
            0.0
        } else {
            self.bins[YieldBin::Pass.index()] as f64 / total as f64
        }
    }
}

/// One quarantined corner, pinned to its wafer site — the row format of
/// the quarantine report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Dense die index (campaign order).
    pub die: usize,
    /// Wafer row.
    pub row: usize,
    /// Wafer column.
    pub col: usize,
    /// Corner index into the spec's corner list.
    pub corner: usize,
    /// Why the corner was quarantined.
    pub kind: FailureKind,
    /// Attempts consumed before giving up.
    pub attempts: u32,
}

/// The whole campaign's streaming aggregate.
///
/// Memory is O(corners) plus one [`QuarantineRecord`] per *failed*
/// corner — zero on a healthy campaign, bounded by the fault rate
/// otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignAggregate {
    /// Dies folded in so far.
    pub dies: u64,
    /// Dies with at least one solve-failed corner.
    pub dies_failed: u64,
    /// Per-corner aggregates, in spec order.
    pub corners: Vec<CornerAggregate>,
    /// Every quarantined corner, in die-index order.
    pub quarantine: Vec<QuarantineRecord>,
}

impl CampaignAggregate {
    /// An empty aggregate shaped for `spec`'s corners.
    #[must_use]
    pub fn new(spec: &CampaignSpec) -> Self {
        CampaignAggregate {
            dies: 0,
            dies_failed: 0,
            corners: spec
                .corners
                .iter()
                .map(|c| CornerAggregate::new(&c.name))
                .collect(),
            quarantine: Vec::new(),
        }
    }

    /// Folds one die in. **Must** be called in die-index order to keep
    /// the aggregate deterministic across thread counts.
    pub fn absorb(&mut self, die: &DieOutcome) {
        self.dies += 1;
        if die.corners.iter().any(|c| c.bin == YieldBin::SolveFail) {
            self.dies_failed += 1;
        }
        for (k, (agg, out)) in self.corners.iter_mut().zip(&die.corners).enumerate() {
            agg.absorb(out);
            if let Some(kind) = out.failure {
                self.quarantine.push(QuarantineRecord {
                    die: die.index,
                    row: die.row,
                    col: die.col,
                    corner: k,
                    kind,
                    attempts: out.attempts,
                });
            }
        }
    }

    /// Folds a partial aggregate covering a *later* contiguous die range
    /// in — the shard supervisor's merge step.
    ///
    /// # Association order
    ///
    /// The statistics and counters are order-insensitive (exact sums and
    /// integer adds — see the module docs), but the quarantine list is
    /// concatenated, so partials must be folded **left to right over
    /// ascending die ranges** to reproduce the single-process report
    /// bytes. A debug assertion checks the ordering contract.
    pub fn merge(&mut self, other: &CampaignAggregate) {
        debug_assert_eq!(
            self.corners.len(),
            other.corners.len(),
            "merging aggregates of different specs"
        );
        debug_assert!(
            match (self.quarantine.last(), other.quarantine.first()) {
                (Some(a), Some(b)) => a.die <= b.die,
                _ => true,
            },
            "partials must merge in ascending die order"
        );
        self.dies += other.dies;
        self.dies_failed += other.dies_failed;
        for (a, b) in self.corners.iter_mut().zip(&other.corners) {
            a.merge(b);
        }
        self.quarantine.extend(other.quarantine.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass_stats() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.5, -3.25];
        let mut w = Welford::default();
        for &x in &xs {
            w.absorb(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.min(), -3.25);
        assert_eq!(w.max(), 16.5);
        assert_eq!(w.count(), 6);
    }

    #[test]
    fn scatter_recovers_exact_line() {
        let mut s = Scatter::default();
        // EG = 1.2 - 0.025 * XTI, exactly.
        for i in 0..50 {
            let xti = 0.1 * i as f64;
            s.absorb(xti, 1.2 - 0.025 * xti);
        }
        assert!((s.slope() + 0.025).abs() < 1e-12);
        assert!((s.intercept() - 1.2).abs() < 1e-12);
        assert!((s.correlation() + 1.0).abs() < 1e-12);
        assert!((s.r_squared() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_scatter_is_finite() {
        let mut s = Scatter::default();
        s.absorb(2.58, 1.13);
        s.absorb(2.58, 1.13);
        assert_eq!(s.slope(), 0.0);
        assert_eq!(s.correlation(), 0.0);
    }

    #[test]
    fn bin_labels_and_indices_are_dense() {
        for (i, b) in YieldBin::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
            assert!(!b.label().is_empty());
        }
    }

    #[test]
    fn welford_mean_and_variance_are_exact_for_representable_data() {
        let mut w = Welford::default();
        for x in [1.0, 2.0, 3.0] {
            w.absorb(x);
        }
        assert_eq!(w.mean(), 2.0);
        assert_eq!(w.variance(), 1.0);
        assert_eq!(w.std_dev(), 1.0);
    }

    /// A deterministic stream of measurement-like values (no rand crate).
    fn stream(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Mixed magnitudes around the EG/XTI/residual ranges.
                let m = (state >> 11) as f64 / (1u64 << 53) as f64;
                let e = [(1e0, 1.1), (1e-3, 0.0), (1e-6, 0.0), (1e3, -0.5)][(state % 4) as usize];
                m * e.0 + e.1
            })
            .collect()
    }

    #[test]
    fn welford_merge_of_shard_accumulators_matches_absorb_all_bit_for_bit() {
        let values = stream(2002, 137);
        let mut whole = Welford::default();
        for &x in &values {
            whole.absorb(x);
        }
        for shards in [1usize, 2, 3, 4, 8, 137, 200] {
            let chunk = values.len().div_ceil(shards);
            let parts: Vec<Welford> = values
                .chunks(chunk.max(1))
                .map(|c| {
                    let mut w = Welford::default();
                    for &x in c {
                        w.absorb(x);
                    }
                    w
                })
                .collect();
            // Left-to-right fold (the shard supervisor's order)...
            let mut folded = Welford::default();
            for p in &parts {
                folded.merge(p);
            }
            assert_eq!(folded, whole, "{shards} shards: state");
            // ...and every serialized field, down to the bits.
            assert_eq!(folded.count(), whole.count());
            assert_eq!(folded.mean().to_bits(), whole.mean().to_bits());
            assert_eq!(folded.variance().to_bits(), whole.variance().to_bits());
            assert_eq!(folded.std_dev().to_bits(), whole.std_dev().to_bits());
            assert_eq!(folded.min().to_bits(), whole.min().to_bits());
            assert_eq!(folded.max().to_bits(), whole.max().to_bits());
            // A balanced tree merge agrees too (associativity).
            let mut tree = parts.clone();
            while tree.len() > 1 {
                let mut next = Vec::new();
                for pair in tree.chunks(2) {
                    let mut m = pair[0].clone();
                    if let Some(b) = pair.get(1) {
                        m.merge(b);
                    }
                    next.push(m);
                }
                tree = next;
            }
            assert_eq!(tree[0], whole, "{shards} shards: tree merge");
        }
    }

    #[test]
    fn empty_welford_merges_as_identity_including_infinite_min_max() {
        let mut empty = Welford::default();
        empty.merge(&Welford::default());
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.min(), f64::INFINITY);
        assert_eq!(empty.max(), f64::NEG_INFINITY);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.variance(), 0.0);

        let mut w = Welford::default();
        w.absorb(3.5);
        w.absorb(-1.25);
        let before = w.clone();
        w.merge(&Welford::default());
        assert_eq!(w, before, "right identity");
        let mut left = Welford::default();
        left.merge(&before);
        assert_eq!(left, before, "left identity");
        assert_eq!(left.min(), -1.25);
        assert_eq!(left.max(), 3.5);
    }

    #[test]
    fn scatter_merge_of_shard_accumulators_matches_absorb_all_bit_for_bit() {
        let xs = stream(7, 101);
        let ys = stream(13, 101);
        let mut whole = Scatter::default();
        for (&x, &y) in xs.iter().zip(&ys) {
            whole.absorb(x, y);
        }
        for shards in [2usize, 4, 8] {
            let chunk = xs.len().div_ceil(shards);
            let mut folded = Scatter::default();
            for (cx, cy) in xs.chunks(chunk).zip(ys.chunks(chunk)) {
                let mut part = Scatter::default();
                for (&x, &y) in cx.iter().zip(cy) {
                    part.absorb(x, y);
                }
                folded.merge(&part);
            }
            assert_eq!(folded, whole, "{shards} shards: state");
            assert_eq!(folded.slope().to_bits(), whole.slope().to_bits());
            assert_eq!(folded.intercept().to_bits(), whole.intercept().to_bits());
            assert_eq!(
                folded.correlation().to_bits(),
                whole.correlation().to_bits()
            );
            assert_eq!(folded.r_squared().to_bits(), whole.r_squared().to_bits());
        }
    }

    #[test]
    fn degenerate_scatter_stays_exactly_degenerate_under_merge() {
        // Constant clouds accumulated on two "shards": the merged exact
        // numerators must still be exactly zero, so the guards return 0.
        let mut a = Scatter::default();
        let mut b = Scatter::default();
        for _ in 0..3 {
            a.absorb(2.58, 1.13);
            b.absorb(2.58, 1.13);
        }
        a.merge(&b);
        assert_eq!(a.slope(), 0.0);
        assert_eq!(a.correlation(), 0.0);
        assert_eq!(a.r_squared(), 0.0);
    }

    #[test]
    fn yield_fraction_excludes_skipped_corners() {
        let mut c = CornerAggregate::new("nom");
        c.bins[YieldBin::Pass.index()] = 3;
        c.bins[YieldBin::EgLow.index()] = 1;
        c.bins[YieldBin::Skipped.index()] = 6;
        assert_eq!(c.yield_fraction(), 0.75);
        let mut all_skipped = CornerAggregate::new("nom");
        all_skipped.bins[YieldBin::Skipped.index()] = 4;
        assert_eq!(all_skipped.yield_fraction(), 0.0);
    }
}
