//! Streaming aggregation: Welford statistics, yield bins and the
//! characteristic-straight scatter summary.
//!
//! The engine folds [`DieOutcome`](crate::die::DieOutcome)s **in die-index
//! order** (the worker pool's reorder buffer guarantees the order), so
//! the floating-point accumulation below is reproducible for any thread
//! count while memory stays O(corners), independent of the die count.

use crate::die::{CornerOutcome, DieOutcome};
use crate::spec::CampaignSpec;
use crate::taxonomy::FailureKind;

/// The yield bin of one corner extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YieldBin {
    /// Extraction inside the spec window.
    Pass,
    /// `EG` below the window.
    EgLow,
    /// `EG` above the window.
    EgHigh,
    /// `XTI` below the window.
    XtiLow,
    /// `XTI` above the window.
    XtiHigh,
    /// The die pipeline failed (circuit, thermal or extraction error).
    SolveFail,
}

impl YieldBin {
    /// All bins, in report order.
    pub const ALL: [YieldBin; 6] = [
        YieldBin::Pass,
        YieldBin::EgLow,
        YieldBin::EgHigh,
        YieldBin::XtiLow,
        YieldBin::XtiHigh,
        YieldBin::SolveFail,
    ];

    /// Stable label used in the JSON/CSV reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            YieldBin::Pass => "pass",
            YieldBin::EgLow => "eg_low",
            YieldBin::EgHigh => "eg_high",
            YieldBin::XtiLow => "xti_low",
            YieldBin::XtiHigh => "xti_high",
            YieldBin::SolveFail => "solve_fail",
        }
    }

    /// Dense index into a bin-count array.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            YieldBin::Pass => 0,
            YieldBin::EgLow => 1,
            YieldBin::EgHigh => 2,
            YieldBin::XtiLow => 3,
            YieldBin::XtiHigh => 4,
            YieldBin::SolveFail => 5,
        }
    }
}

/// Welford's online mean/variance with min/max tracking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Welford {
    /// Folds one observation in.
    pub fn absorb(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 below two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count > 1 {
            self.m2 / (self.count - 1) as f64
        } else {
            0.0
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The raw accumulator state `(count, mean, m2, min, max)`, for the
    /// checkpoint codec. The empty accumulator's `±inf` min/max travel
    /// through here too — the codec must preserve them bit-exactly.
    #[must_use]
    pub fn raw(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`Welford::raw`] state. Resuming from
    /// this state and folding the remaining observations produces exactly
    /// the accumulator an uninterrupted run would.
    #[must_use]
    pub fn from_raw(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Welford {
            count,
            mean,
            m2,
            min,
            max,
        }
    }
}

/// Streaming bivariate moments of the `(XTI, EG)` cloud — the campaign
/// view of the paper's Fig.-6 characteristic straight.
///
/// Extracted pairs are *effective* parameters: each die's `(EG, XTI)`
/// lies on that die's characteristic straight, so across a lot the cloud
/// collapses onto a line whose slope/intercept this summarizes, along
/// with the correlation that tells how tight the collapse is.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Scatter {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    m2x: f64,
    m2y: f64,
    cxy: f64,
}

impl Scatter {
    /// Folds one `(xti, eg)` pair in.
    pub fn absorb(&mut self, xti: f64, eg: f64) {
        self.n += 1;
        let dx = xti - self.mean_x;
        self.mean_x += dx / self.n as f64;
        let dy = eg - self.mean_y;
        self.mean_y += dy / self.n as f64;
        self.m2x += dx * (xti - self.mean_x);
        self.m2y += dy * (eg - self.mean_y);
        self.cxy += dx * (eg - self.mean_y);
    }

    /// Number of pairs.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Slope of the regression of `EG` on `XTI` (eV per unit `XTI`).
    #[must_use]
    pub fn slope(&self) -> f64 {
        if self.m2x > 0.0 {
            self.cxy / self.m2x
        } else {
            0.0
        }
    }

    /// Intercept of the regression (eV at `XTI = 0`).
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.mean_y - self.slope() * self.mean_x
    }

    /// Pearson correlation of the cloud (0 for a degenerate cloud).
    #[must_use]
    pub fn correlation(&self) -> f64 {
        let d = self.m2x * self.m2y;
        if d > 0.0 {
            self.cxy / d.sqrt()
        } else {
            0.0
        }
    }

    /// Coefficient of determination of the straight.
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        let c = self.correlation();
        c * c
    }

    /// The raw moment state `(n, mean_x, mean_y, m2x, m2y, cxy)`, for the
    /// checkpoint codec.
    #[must_use]
    pub fn raw(&self) -> (u64, f64, f64, f64, f64, f64) {
        (
            self.n,
            self.mean_x,
            self.mean_y,
            self.m2x,
            self.m2y,
            self.cxy,
        )
    }

    /// Rebuilds the moments from [`Scatter::raw`] state.
    #[must_use]
    pub fn from_raw(n: u64, mean_x: f64, mean_y: f64, m2x: f64, m2y: f64, cxy: f64) -> Self {
        Scatter {
            n,
            mean_x,
            mean_y,
            m2x,
            m2y,
            cxy,
        }
    }
}

/// Aggregate over one bias corner.
#[derive(Debug, Clone, PartialEq)]
pub struct CornerAggregate {
    /// Corner label (from the spec).
    pub name: String,
    /// Extracted `EG` statistics, eV.
    pub eg_ev: Welford,
    /// Extracted `XTI` statistics.
    pub xti: Welford,
    /// Fit RMS residual statistics, volts.
    pub rms_residual_v: Welford,
    /// Error of the computed cold-point die temperature vs truth, kelvin.
    pub t_cold_err_k: Welford,
    /// Error of the computed hot-point die temperature vs truth, kelvin.
    pub t_hot_err_k: Welford,
    /// Characteristic-straight scatter of the `(XTI, EG)` cloud.
    pub straight: Scatter,
    /// Yield bin counts, indexed by [`YieldBin::index`].
    pub bins: [u64; 6],
    /// Quarantined corners by taxonomy kind, indexed by
    /// [`FailureKind::index`].
    pub failures: [u64; FailureKind::COUNT],
    /// Corners that produced values after at least one failed attempt, by
    /// the kind of the failure they recovered from.
    pub recovered: [u64; FailureKind::COUNT],
    /// Corners whose values came from the pooled robust IRLS fit.
    pub robust_recoveries: u64,
    /// Extra extraction attempts beyond the first, summed over corners.
    pub retries: u64,
    /// Samples the robust fits flagged as outliers, summed over corners.
    pub outliers_rejected: u64,
}

impl CornerAggregate {
    fn new(name: &str) -> Self {
        CornerAggregate {
            name: name.to_string(),
            eg_ev: Welford::default(),
            xti: Welford::default(),
            rms_residual_v: Welford::default(),
            t_cold_err_k: Welford::default(),
            t_hot_err_k: Welford::default(),
            straight: Scatter::default(),
            bins: [0; 6],
            failures: [0; FailureKind::COUNT],
            recovered: [0; FailureKind::COUNT],
            robust_recoveries: 0,
            retries: 0,
            outliers_rejected: 0,
        }
    }

    fn absorb(&mut self, c: &CornerOutcome) {
        self.bins[c.bin.index()] += 1;
        if let Some(kind) = c.failure {
            self.failures[kind.index()] += 1;
        }
        if let Some(kind) = c.recovered_from {
            self.recovered[kind.index()] += 1;
        }
        if c.robust_recovery {
            self.robust_recoveries += 1;
        }
        self.retries += u64::from(c.attempts.saturating_sub(1));
        self.outliers_rejected += u64::from(c.outliers_rejected);
        if let Some(v) = &c.values {
            // Robust-recovered corners can carry NaN temperature columns
            // (every cold or hot thermometry sample lost); keep those out
            // of the running moments. Clean-pipeline values are always
            // finite, so the guards are no-ops there.
            self.eg_ev.absorb(v.eg_ev);
            self.xti.absorb(v.xti);
            self.rms_residual_v.absorb(v.rms_residual_v);
            if v.t_cold_err_k.is_finite() {
                self.t_cold_err_k.absorb(v.t_cold_err_k);
            }
            if v.t_hot_err_k.is_finite() {
                self.t_hot_err_k.absorb(v.t_hot_err_k);
            }
            self.straight.absorb(v.xti, v.eg_ev);
        }
    }

    /// Fraction of extractions landing in [`YieldBin::Pass`].
    #[must_use]
    pub fn yield_fraction(&self) -> f64 {
        let total: u64 = self.bins.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.bins[YieldBin::Pass.index()] as f64 / total as f64
        }
    }
}

/// One quarantined corner, pinned to its wafer site — the row format of
/// the quarantine report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Dense die index (campaign order).
    pub die: usize,
    /// Wafer row.
    pub row: usize,
    /// Wafer column.
    pub col: usize,
    /// Corner index into the spec's corner list.
    pub corner: usize,
    /// Why the corner was quarantined.
    pub kind: FailureKind,
    /// Attempts consumed before giving up.
    pub attempts: u32,
}

/// The whole campaign's streaming aggregate.
///
/// Memory is O(corners) plus one [`QuarantineRecord`] per *failed*
/// corner — zero on a healthy campaign, bounded by the fault rate
/// otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignAggregate {
    /// Dies folded in so far.
    pub dies: u64,
    /// Dies with at least one solve-failed corner.
    pub dies_failed: u64,
    /// Per-corner aggregates, in spec order.
    pub corners: Vec<CornerAggregate>,
    /// Every quarantined corner, in die-index order.
    pub quarantine: Vec<QuarantineRecord>,
}

impl CampaignAggregate {
    /// An empty aggregate shaped for `spec`'s corners.
    #[must_use]
    pub fn new(spec: &CampaignSpec) -> Self {
        CampaignAggregate {
            dies: 0,
            dies_failed: 0,
            corners: spec
                .corners
                .iter()
                .map(|c| CornerAggregate::new(&c.name))
                .collect(),
            quarantine: Vec::new(),
        }
    }

    /// Folds one die in. **Must** be called in die-index order to keep
    /// the aggregate deterministic across thread counts.
    pub fn absorb(&mut self, die: &DieOutcome) {
        self.dies += 1;
        if die.corners.iter().any(|c| c.bin == YieldBin::SolveFail) {
            self.dies_failed += 1;
        }
        for (k, (agg, out)) in self.corners.iter_mut().zip(&die.corners).enumerate() {
            agg.absorb(out);
            if let Some(kind) = out.failure {
                self.quarantine.push(QuarantineRecord {
                    die: die.index,
                    row: die.row,
                    col: die.col,
                    corner: k,
                    kind,
                    attempts: out.attempts,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass_stats() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.5, -3.25];
        let mut w = Welford::default();
        for &x in &xs {
            w.absorb(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.min(), -3.25);
        assert_eq!(w.max(), 16.5);
        assert_eq!(w.count(), 6);
    }

    #[test]
    fn scatter_recovers_exact_line() {
        let mut s = Scatter::default();
        // EG = 1.2 - 0.025 * XTI, exactly.
        for i in 0..50 {
            let xti = 0.1 * i as f64;
            s.absorb(xti, 1.2 - 0.025 * xti);
        }
        assert!((s.slope() + 0.025).abs() < 1e-12);
        assert!((s.intercept() - 1.2).abs() < 1e-12);
        assert!((s.correlation() + 1.0).abs() < 1e-12);
        assert!((s.r_squared() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_scatter_is_finite() {
        let mut s = Scatter::default();
        s.absorb(2.58, 1.13);
        s.absorb(2.58, 1.13);
        assert_eq!(s.slope(), 0.0);
        assert_eq!(s.correlation(), 0.0);
    }

    #[test]
    fn bin_labels_and_indices_are_dense() {
        for (i, b) in YieldBin::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
            assert!(!b.label().is_empty());
        }
    }
}
