//! Hand-rolled JSON and CSV report writers (no serde).
//!
//! Three artifact families with different contracts:
//!
//! - **aggregate** (`campaign_aggregate.json` / `.csv`): derived only from
//!   the deterministic fold, so the bytes are identical for any worker
//!   thread count — the campaign determinism tests compare them verbatim.
//!   The schema is frozen: fault-injection campaigns add *artifacts*, not
//!   columns, so a zero-fault run reproduces historical bytes exactly.
//! - **quarantine** (`campaign_quarantine.json` / `.csv`): the failure
//!   taxonomy — per-corner kind counts, recovery counts and one record per
//!   quarantined corner. Deterministic like the aggregate (it is part of
//!   the fold), and empty-but-present on a healthy campaign.
//! - **metrics** (`campaign_metrics.json`): wall-clock, throughput and
//!   stage histograms of one particular run; inherently non-deterministic
//!   and therefore kept out of the aggregate artifacts.
//!
//! Floats are emitted with Rust's shortest round-trip `Display`, which is
//! a pure function of the bits — determinism needs no fixed-precision
//! rounding. Non-finite values (an empty corner's min/max) become JSON
//! `null` / empty CSV cells.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::aggregate::{CornerAggregate, Welford, YieldBin};
use crate::spec::BenchProfile;
use crate::taxonomy::FailureKind;
use crate::worker::CampaignRun;

/// JSON number or `null` for non-finite input.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// CSV cell: empty for non-finite input.
fn cell(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        String::new()
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn welford_json(w: &Welford) -> String {
    format!(
        "{{\"count\":{},\"mean\":{},\"std_dev\":{},\"min\":{},\"max\":{}}}",
        w.count(),
        num(w.mean()),
        num(w.std_dev()),
        num(w.min()),
        num(w.max()),
    )
}

fn corner_json(run: &CampaignRun, idx: usize, c: &CornerAggregate) -> String {
    // Frozen schema: the historical bins are emitted unconditionally so a
    // non-adaptive run reproduces historical report bytes exactly; the
    // `skipped` bin (adaptive scheduling) appears only when it counted
    // something.
    let mut bins = String::new();
    for b in YieldBin::ALL {
        if b.index() == YieldBin::Skipped.index() && c.bins[b.index()] == 0 {
            continue;
        }
        let _ = write!(bins, "\"{}\":{},", b.label(), c.bins[b.index()]);
    }
    format!(
        concat!(
            "    {{\n",
            "      \"name\":\"{name}\",\n",
            "      \"ic_amps\":{ic},\n",
            "      \"extracted\":{extracted},\n",
            "      \"eg_ev\":{eg},\n",
            "      \"xti\":{xti},\n",
            "      \"rms_residual_v\":{resid},\n",
            "      \"t_cold_err_k\":{tcold},\n",
            "      \"t_hot_err_k\":{thot},\n",
            "      \"straight\":{{\"slope_ev_per_xti\":{slope},\"intercept_ev\":{icept},\
             \"correlation\":{corr},\"r_squared\":{r2}}},\n",
            "      \"yield\":{{{bins}\"fraction\":{yf}}}\n",
            "    }}",
        ),
        name = esc(&c.name),
        ic = num(run.spec.corners[idx].ic.value()),
        extracted = c.eg_ev.count(),
        eg = welford_json(&c.eg_ev),
        xti = welford_json(&c.xti),
        resid = welford_json(&c.rms_residual_v),
        tcold = welford_json(&c.t_cold_err_k),
        thot = welford_json(&c.t_hot_err_k),
        slope = num(c.straight.slope()),
        icept = num(c.straight.intercept()),
        corr = num(c.straight.correlation()),
        r2 = num(c.straight.r_squared()),
        bins = bins,
        yf = num(c.yield_fraction()),
    )
}

/// The deterministic aggregate report as a JSON document.
#[must_use]
pub fn aggregate_json(run: &CampaignRun) -> String {
    let spec = &run.spec;
    let corners: Vec<String> = run
        .aggregate
        .corners
        .iter()
        .enumerate()
        .map(|(i, c)| corner_json(run, i, c))
        .collect();
    let [t1, t2, t3] = spec.plan.setpoints().map(|c| c.value());
    format!(
        concat!(
            "{{\n",
            "  \"schema\":\"icvbe-campaign-aggregate-v1\",\n",
            "  \"campaign\":{{\n",
            "    \"seed\":{seed},\n",
            "    \"wafer\":{{\"rows\":{rows},\"cols\":{cols},\"shape\":\"{shape}\",\
             \"dies\":{dies}}},\n",
            "    \"bench\":\"{bench}\",\n",
            "    \"plan_c\":[{t1},{t2},{t3}],\n",
            "    \"window\":{{\"eg_min\":{egmin},\"eg_max\":{egmax},\
             \"xti_min\":{xtimin},\"xti_max\":{ximax}}}\n",
            "  }},\n",
            "  \"totals\":{{\"dies\":{folded},\"dies_failed\":{failed}}},\n",
            "  \"corners\":[\n{corners}\n  ]\n",
            "}}\n",
        ),
        seed = spec.seed,
        rows = spec.wafer.rows(),
        cols = spec.wafer.cols(),
        shape = if spec.wafer.is_circular() {
            "circular"
        } else {
            "full"
        },
        dies = spec.wafer.die_count(),
        bench = match spec.bench {
            BenchProfile::Paper => "paper",
            BenchProfile::Ideal => "ideal",
        },
        t1 = num(t1),
        t2 = num(t2),
        t3 = num(t3),
        egmin = num(spec.window.eg_min),
        egmax = num(spec.window.eg_max),
        xtimin = num(spec.window.xti_min),
        ximax = num(spec.window.xti_max),
        folded = run.aggregate.dies,
        failed = run.aggregate.dies_failed,
        corners = corners.join(",\n"),
    )
}

/// The deterministic aggregate report as a wide CSV table (one row per
/// bias corner).
#[must_use]
pub fn aggregate_csv(run: &CampaignRun) -> String {
    // Frozen schema: the trailing `skipped` column (adaptive scheduling)
    // appears only when some corner actually skipped dies, so a
    // non-adaptive run reproduces historical CSV bytes exactly.
    let any_skipped = run
        .aggregate
        .corners
        .iter()
        .any(|c| c.bins[YieldBin::Skipped.index()] > 0);
    let mut out = String::from(
        "corner,ic_amps,extracted,\
         eg_mean_ev,eg_std_ev,eg_min_ev,eg_max_ev,\
         xti_mean,xti_std,xti_min,xti_max,\
         rms_residual_mean_v,t_cold_err_mean_k,t_hot_err_mean_k,\
         straight_slope_ev_per_xti,straight_intercept_ev,straight_r_squared,\
         pass,eg_low,eg_high,xti_low,xti_high,solve_fail,yield_fraction",
    );
    if any_skipped {
        out.push_str(",skipped");
    }
    out.push('\n');
    for (i, c) in run.aggregate.corners.iter().enumerate() {
        let skipped_cell = if any_skipped {
            format!(",{}", c.bins[YieldBin::Skipped.index()])
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}{skipped_cell}",
            c.name.replace(',', ";"),
            cell(run.spec.corners[i].ic.value()),
            c.eg_ev.count(),
            cell(c.eg_ev.mean()),
            cell(c.eg_ev.std_dev()),
            cell(c.eg_ev.min()),
            cell(c.eg_ev.max()),
            cell(c.xti.mean()),
            cell(c.xti.std_dev()),
            cell(c.xti.min()),
            cell(c.xti.max()),
            cell(c.rms_residual_v.mean()),
            cell(c.t_cold_err_k.mean()),
            cell(c.t_hot_err_k.mean()),
            cell(c.straight.slope()),
            cell(c.straight.intercept()),
            cell(c.straight.r_squared()),
            c.bins[YieldBin::Pass.index()],
            c.bins[YieldBin::EgLow.index()],
            c.bins[YieldBin::EgHigh.index()],
            c.bins[YieldBin::XtiLow.index()],
            c.bins[YieldBin::XtiHigh.index()],
            c.bins[YieldBin::SolveFail.index()],
            cell(c.yield_fraction()),
        );
    }
    out
}

/// The deterministic quarantine report as a JSON document: the fault
/// spec in force, per-corner taxonomy/recovery counts and one record per
/// quarantined corner.
#[must_use]
pub fn quarantine_json(run: &CampaignRun) -> String {
    let spec = &run.spec;
    let f = &spec.faults;
    let corners: Vec<String> = run
        .aggregate
        .corners
        .iter()
        .map(|c| {
            // Frozen schema: the historical kinds (indices `0..BASE`)
            // are emitted unconditionally so a zero-chaos run reproduces
            // historical report bytes exactly; the containment kinds
            // appear only when they actually counted something.
            let mut kinds = String::new();
            let mut recovered = String::new();
            for (i, k) in FailureKind::ALL.iter().enumerate() {
                if i < FailureKind::BASE || c.failures[i] > 0 {
                    let _ = write!(kinds, "\"{}\":{},", k.label(), c.failures[i]);
                }
                if i < FailureKind::BASE || c.recovered[i] > 0 {
                    let _ = write!(recovered, "\"{}\":{},", k.label(), c.recovered[i]);
                }
            }
            kinds.pop();
            recovered.pop();
            format!(
                concat!(
                    "    {{\n",
                    "      \"name\":\"{name}\",\n",
                    "      \"quarantined\":{{{kinds}}},\n",
                    "      \"recovered\":{{{recovered}}},\n",
                    "      \"robust_recoveries\":{robust},\n",
                    "      \"retries\":{retries},\n",
                    "      \"outliers_rejected\":{outliers}\n",
                    "    }}",
                ),
                name = esc(&c.name),
                kinds = kinds,
                recovered = recovered,
                robust = c.robust_recoveries,
                retries = c.retries,
                outliers = c.outliers_rejected,
            )
        })
        .collect();
    let records: Vec<String> = run
        .aggregate
        .quarantine
        .iter()
        .map(|r| {
            format!(
                "    {{\"die\":{},\"row\":{},\"col\":{},\"corner\":\"{}\",\
                 \"kind\":\"{}\",\"attempts\":{}}}",
                r.die,
                r.row,
                r.col,
                esc(&run.aggregate.corners[r.corner].name),
                r.kind.label(),
                r.attempts,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"schema\":\"icvbe-campaign-quarantine-v1\",\n",
            "  \"faults\":{{\"noise_probability\":{noise_p},\
             \"noise_sigma_volts\":{noise_s},\"stuck_probability\":{stuck},\
             \"drop_probability\":{drop},\"drift_sigma_volts\":{drift},\
             \"nan_probability\":{nan}}},\n",
            "  \"retry_budget\":{budget},\n",
            "  \"robust\":{robust},\n",
            "  \"corners\":[\n{corners}\n  ],\n",
            "  \"records\":[{lead}{records}{trail}]\n",
            "}}\n",
        ),
        noise_p = num(f.noise_probability),
        noise_s = num(f.noise_sigma_volts),
        stuck = num(f.stuck_probability),
        drop = num(f.drop_probability),
        drift = num(f.drift_sigma_volts),
        nan = num(f.nan_probability),
        budget = spec.retry_budget,
        robust = spec.robust,
        corners = corners.join(",\n"),
        lead = if records.is_empty() { "" } else { "\n" },
        records = records.join(",\n"),
        trail = if records.is_empty() { "" } else { "\n  " },
    )
}

/// The deterministic quarantine report as CSV: one row per quarantined
/// corner (header only on a healthy campaign).
#[must_use]
pub fn quarantine_csv(run: &CampaignRun) -> String {
    let mut out = String::from("die,row,col,corner,kind,attempts\n");
    for r in &run.aggregate.quarantine {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            r.die,
            r.row,
            r.col,
            run.aggregate.corners[r.corner].name.replace(',', ";"),
            r.kind.label(),
            r.attempts,
        );
    }
    out
}

/// The per-run observability snapshot as a JSON document. **Not**
/// deterministic — contains wall-clock data.
#[must_use]
pub fn metrics_json(run: &CampaignRun) -> String {
    let m = &run.metrics;
    let stages: Vec<String> = m
        .stages
        .iter()
        .map(|s| {
            format!(
                "    {{\"stage\":\"{}\",\"count\":{},\"total_ns\":{},\"mean_ns\":{},\
                 \"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
                esc(&s.name),
                s.count,
                s.total_ns,
                num(s.mean_ns()),
                s.p50_ns,
                s.p90_ns,
                s.p99_ns,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"schema\":\"icvbe-campaign-metrics-v1\",\n",
            "  \"threads\":{threads},\n",
            "  \"dies_started\":{started},\n",
            "  \"dies_completed\":{completed},\n",
            "  \"dies_failed\":{failed},\n",
            "  \"elapsed_ns\":{elapsed},\n",
            "  \"dies_per_second\":{rate},\n",
            "  \"max_reorder_buffer\":{buf},\n",
            "  \"solver\":{{\"solves\":{solves},\"newton_iterations\":{newton},\
             \"newton_per_solve\":{npsolve},\"selfheat_iterations\":{selfheat},\
             \"warm_start_hits\":{hits},\"warm_start_misses\":{misses},\
             \"warm_hit_rate\":{hitrate},\"device_evals\":{devevals},\
             \"lane_evals\":{laneevals},\"lane_eval_share\":{laneshare},\
             \"device_reuses\":{devreuses},\"bypass_hits\":{byphits},\
             \"bypass_hit_rate\":{byprate},\
             \"restamp_incremental\":{rsincr},\"restamp_full\":{rsfull},\
             \"restamp_savings\":{rssave},\"newton_per_die_p50\":{np50},\
             \"newton_per_die_p99\":{np99}}},\n",
            "  \"batching\":{{\"batched_solves\":{bsolves},\
             \"lane_retires\":{bretires},\"batch_refills\":{brefills},\
             \"lockstep_rounds\":{brounds},\"mean_lanes_active\":{bmean},\
             \"lanes_active\":[{blanes}]}},\n",
            "  \"recovery\":{{\"corners_retried\":{retried},\
             \"corners_recovered\":{recovered},\"robust_recoveries\":{robust},\
             \"corners_quarantined\":{quarantined},\
             \"recovered_by_kind\":{{{bykind}}}}},\n",
            "  \"containment\":{{\"die_panics\":{cpanic},\
             \"budgets_exhausted\":{cbudget},\
             \"checkpoint_write_errors\":{cckwrite},\
             \"checkpoint_generation_fallbacks\":{cckfall}}},\n",
            "  \"stages\":[\n{stages}\n  ]\n",
            "}}\n",
        ),
        threads = m.threads,
        started = m.dies_started,
        completed = m.dies_completed,
        failed = m.dies_failed,
        elapsed = m.elapsed_ns,
        rate = num(m.dies_per_second),
        buf = m.max_reorder_buffer,
        solves = m.solver.solves,
        newton = m.solver.newton_iterations,
        npsolve = num(m.solver.newton_per_solve()),
        selfheat = m.solver.selfheat_iterations,
        hits = m.solver.warm_start_hits,
        misses = m.solver.warm_start_misses,
        hitrate = num(m.solver.warm_hit_rate()),
        devevals = m.solver.device_evals,
        laneevals = m.solver.lane_evals,
        laneshare = num(m.solver.lane_eval_share()),
        devreuses = m.solver.device_reuses,
        byphits = m.solver.bypass_hits,
        byprate = num(m.solver.bypass_hit_rate()),
        rsincr = m.solver.restamp_incremental,
        rsfull = m.solver.restamp_full,
        rssave = num(m.solver.restamp_savings()),
        np50 = m.solver.newton_per_die_p50,
        np99 = m.solver.newton_per_die_p99,
        bsolves = m.batching.batched_solves,
        bretires = m.batching.lane_retires,
        brefills = m.batching.batch_refills,
        brounds = m.batching.lockstep_rounds,
        bmean = num(m.batching.mean_lanes_active()),
        blanes = m
            .batching
            .lanes_active
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
        retried = m.recovery.corners_retried,
        recovered = m.recovery.corners_recovered,
        robust = m.recovery.robust_recoveries,
        quarantined = m.recovery.corners_quarantined,
        bykind = {
            let mut s = String::new();
            for k in FailureKind::ALL {
                let _ = write!(
                    s,
                    "\"{}\":{},",
                    k.label(),
                    m.recovery.recovered_by_kind[k.index()]
                );
            }
            s.pop();
            s
        },
        cpanic = m.containment.die_panics,
        cbudget = m.containment.budgets_exhausted,
        cckwrite = m.containment.checkpoint_write_errors,
        cckfall = m.containment.checkpoint_generation_fallbacks,
        stages = stages.join(",\n"),
    )
}

/// Writes the five report artifacts into `dir` (created if missing) and
/// returns the written paths.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_reports(dir: &Path, run: &CampaignRun) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let artifacts = [
        ("campaign_aggregate.json", aggregate_json(run)),
        ("campaign_aggregate.csv", aggregate_csv(run)),
        ("campaign_quarantine.json", quarantine_json(run)),
        ("campaign_quarantine.csv", quarantine_csv(run)),
        ("campaign_metrics.json", metrics_json(run)),
    ];
    let mut paths = Vec::with_capacity(artifacts.len());
    for (name, body) in artifacts {
        let path = dir.join(name);
        fs::write(&path, body)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, WaferMap};
    use crate::worker::run_campaign;

    fn tiny_run() -> CampaignRun {
        let mut s = CampaignSpec::paper_default(WaferMap::full(2, 2), 3);
        s.corners.truncate(2);
        run_campaign(&s, 2).unwrap()
    }

    #[test]
    fn json_has_expected_shape() {
        let run = tiny_run();
        let j = aggregate_json(&run);
        assert!(j.contains("\"schema\":\"icvbe-campaign-aggregate-v1\""));
        assert!(j.contains("\"dies\":4"));
        assert!(j.contains("\"name\":\"low\""));
        assert!(j.contains("\"name\":\"nom\""));
        assert!(j.contains("\"pass\":"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn csv_has_header_and_one_row_per_corner() {
        let run = tiny_run();
        let csv = aggregate_csv(&run);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("corner,ic_amps,extracted"));
        let cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols, "ragged row: {row}");
        }
    }

    #[test]
    fn metrics_json_reports_stages() {
        let run = tiny_run();
        let j = metrics_json(&run);
        assert!(j.contains("\"stage\":\"sample\""));
        assert!(j.contains("\"stage\":\"measure\""));
        assert!(j.contains("\"stage\":\"extract\""));
        assert!(j.contains("\"dies_completed\":4"));
        assert!(j.contains("\"batching\":{\"batched_solves\":"));
        assert!(j.contains("\"lanes_active\":["));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn non_finite_values_do_not_leak_into_json() {
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(cell(f64::NEG_INFINITY), "");
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn write_reports_persists_five_artifacts() {
        let run = tiny_run();
        let dir = std::env::temp_dir().join("icvbe_campaign_report_test");
        let _ = fs::remove_dir_all(&dir);
        let paths = write_reports(&dir, &run).unwrap();
        assert_eq!(paths.len(), 5);
        for p in &paths {
            assert!(p.exists());
            assert!(fs::metadata(p).unwrap().len() > 0);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_report_is_well_formed_and_empty_when_healthy() {
        let run = tiny_run();
        let j = quarantine_json(&run);
        assert!(j.contains("\"schema\":\"icvbe-campaign-quarantine-v1\""));
        assert!(j.contains("\"records\":[]"));
        assert!(j.contains("\"non_convergence\":0"));
        assert!(j.contains("\"outlier_rejected\":0"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        let csv = quarantine_csv(&run);
        assert_eq!(csv, "die,row,col,corner,kind,attempts\n");
    }

    #[test]
    fn quarantine_report_lists_faulted_corners() {
        use icvbe_instrument::faults::FaultSpec;
        let mut s = CampaignSpec::paper_default(WaferMap::full(2, 2), 3);
        s.corners.truncate(1);
        s.faults = FaultSpec {
            nan_probability: 1.0,
            ..FaultSpec::none()
        };
        s.robust = false;
        let run = run_campaign(&s, 1).unwrap();
        let csv = quarantine_csv(&run);
        assert_eq!(csv.lines().count(), 1 + 4, "all four dies quarantined");
        assert!(csv.contains("non_finite_input"));
        let j = quarantine_json(&run);
        assert!(j.contains("\"non_finite_input\":4"));
        assert!(j.contains("\"nan_probability\":1"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
