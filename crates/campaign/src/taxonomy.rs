//! The per-corner failure taxonomy.
//!
//! A production campaign must never collapse every kind of trouble into
//! one opaque bucket: a die whose circuit never converged needs a solver
//! fix, a die whose chamber lost a temperature point needs a re-measure,
//! and a die whose readings went non-finite needs an instrument check.
//! [`FailureKind`] names those causes; quarantined corners carry one in
//! their [`CornerOutcome`](crate::die::CornerOutcome) and in the
//! quarantine report.
//!
//! Classification is **detection-based**: the pipeline looks at the data
//! it was handed (are readings finite? is a point entirely dead? did two
//! points latch to identical readings?), never at what the fault injector
//! actually did. A real bench has no injector to ask.

use std::fmt;

/// Why a corner was quarantined (or what it recovered from).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The circuit solver exhausted its escalation ladder; no measurement
    /// exists for this corner at all.
    NonConvergence,
    /// A reading in the measured series is NaN/Inf (instrument A/D
    /// glitch), so the analytical extraction cannot run.
    NonFiniteInput,
    /// A temperature point was lost outright (every reading of the point
    /// dead); the three-point method is underdetermined.
    InsufficientPoints,
    /// The data is finite but degenerate: latched (repeated) points,
    /// singular thermometry, or an extraction that blew up numerically.
    Degenerate,
    /// The corner's data was examined by the pooled robust fit and
    /// rejected — too outlier-dominated to yield an in-window result.
    OutlierRejected,
    /// The die blew through its per-die solve budget (Newton iterations
    /// or wall clock); remaining corners were retired unmeasured so one
    /// runaway die cannot stall the whole campaign.
    BudgetExhausted,
    /// The die's pipeline panicked mid-flight; the worker contained the
    /// unwind and retired every corner of the die.
    InternalPanic,
}

impl FailureKind {
    /// Number of kinds ([`FailureKind::ALL`]'s length).
    pub const COUNT: usize = 7;

    /// Number of *historical* kinds: the first [`FailureKind::BASE`]
    /// entries of [`FailureKind::ALL`] predate the containment bins and
    /// are emitted unconditionally in the frozen quarantine report; later
    /// kinds appear only when counted, so a zero-chaos run reproduces
    /// historical report bytes exactly.
    pub const BASE: usize = 5;

    /// All kinds, in report order.
    pub const ALL: [FailureKind; FailureKind::COUNT] = [
        FailureKind::NonConvergence,
        FailureKind::NonFiniteInput,
        FailureKind::InsufficientPoints,
        FailureKind::Degenerate,
        FailureKind::OutlierRejected,
        FailureKind::BudgetExhausted,
        FailureKind::InternalPanic,
    ];

    /// Stable label used in the JSON/CSV reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::NonConvergence => "non_convergence",
            FailureKind::NonFiniteInput => "non_finite_input",
            FailureKind::InsufficientPoints => "insufficient_points",
            FailureKind::Degenerate => "degenerate",
            FailureKind::OutlierRejected => "outlier_rejected",
            FailureKind::BudgetExhausted => "budget_exhausted",
            FailureKind::InternalPanic => "internal_panic",
        }
    }

    /// Dense index into a kind-count array.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FailureKind::NonConvergence => 0,
            FailureKind::NonFiniteInput => 1,
            FailureKind::InsufficientPoints => 2,
            FailureKind::Degenerate => 3,
            FailureKind::OutlierRejected => 4,
            FailureKind::BudgetExhausted => 5,
            FailureKind::InternalPanic => 6,
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_indices_are_dense_and_unique() {
        for (i, k) in FailureKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.label().is_empty());
        }
        for a in FailureKind::ALL {
            for b in FailureKind::ALL {
                if a != b {
                    assert_ne!(a.label(), b.label());
                }
            }
        }
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(FailureKind::NonConvergence.to_string(), "non_convergence");
        assert_eq!(FailureKind::OutlierRejected.to_string(), "outlier_rejected");
    }
}
