//! Campaign observability: atomic progress counters and per-stage
//! wall-clock histograms.
//!
//! Everything here is updated lock-free from the worker threads and
//! snapshotted once at the end of the run. Timing data is inherently
//! non-deterministic, so none of it flows into the aggregate report — the
//! [`CampaignMetrics`] snapshot is its own artifact.

use std::sync::atomic::{AtomicU64, Ordering};

use icvbe_instrument::bench::BatchSweepStats;
use icvbe_spice::batch::MAX_LANES;
use icvbe_spice::workspace::SolveStats;

use crate::taxonomy::FailureKind;

/// The pipeline stages timed per die.
pub const STAGE_NAMES: [&str; 3] = ["sample", "measure", "extract"];

/// Index of the process-sampling stage.
pub const STAGE_SAMPLE: usize = 0;
/// Index of the bench-measurement stage (all corners, all setpoints).
pub const STAGE_MEASURE: usize = 1;
/// Index of the thermometry + Meijer extraction stage.
pub const STAGE_EXTRACT: usize = 2;

/// Number of log₂ buckets in a [`LogHistogram`] (fixed by the u64 range).
pub const BUCKETS: usize = 64;

/// A lock-free log₂ histogram of nanosecond durations.
///
/// Bucket `b` counts samples in `(2^(b-1), 2^b]` ns (bucket 0 counts 0 and
/// 1 ns), so an exact power of two lands in the bucket whose reported
/// upper edge *equals* it; recording is one `fetch_add` on the owning
/// bucket.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    total_ns: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total_ns: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// Records one duration.
    pub fn record_ns(&self, ns: u64) {
        // ceil(log2(ns)) via `ns - 1`: 2^k must land in bucket k (upper
        // edge 2^k), not one bucket higher — `64 - ns.leading_zeros()`
        // reported a 2x-too-high edge at every power-of-two boundary.
        let b = (64 - ns.saturating_sub(1).leading_zeros()) as usize;
        self.buckets[b.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Raw bucket counts and running total, for the shard partial codec.
    #[must_use]
    pub fn raw(&self) -> ([u64; BUCKETS], u64) {
        (
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            self.total_ns.load(Ordering::Relaxed),
        )
    }

    /// Adds raw bucket counts and a running total (a shard's serialized
    /// histogram) into this one.
    pub fn absorb_raw(&self, buckets: &[u64; BUCKETS], total_ns: u64) {
        for (slot, &n) in self.buckets.iter().zip(buckets) {
            slot.fetch_add(n, Ordering::Relaxed);
        }
        self.total_ns.fetch_add(total_ns, Ordering::Relaxed);
    }

    /// Pairwise merge for shard fan-in: bucket-wise and total addition —
    /// exactly associative and commutative (all integers).
    pub fn merge(&self, other: &LogHistogram) {
        let (buckets, total_ns) = other.raw();
        self.absorb_raw(&buckets, total_ns);
    }

    /// Immutable snapshot of the bucket counts.
    #[must_use]
    pub fn snapshot(&self, name: &str) -> StageSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let total_ns = self.total_ns.load(Ordering::Relaxed);
        // Nearest-rank quantile: the p-quantile is the value at rank
        // max(1, ceil(p * count)) in the sorted sample (1-based). The rank
        // is computed exactly in integer arithmetic — `p * count as f64`
        // rounds for counts above 2^53 and can land one bucket low.
        let q = |num: u128, den: u128| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = (u128::from(count) * num).div_ceil(den).max(1);
            let mut seen: u128 = 0;
            for (b, &c) in counts.iter().enumerate() {
                seen += u128::from(c);
                if seen >= rank {
                    // Upper edge of the bucket: 2^b ns.
                    return 1u64.checked_shl(b as u32).unwrap_or(u64::MAX);
                }
            }
            u64::MAX
        };
        StageSnapshot {
            name: name.to_string(),
            count,
            total_ns,
            p50_ns: q(1, 2),
            p90_ns: q(9, 10),
            p99_ns: q(99, 100),
        }
    }
}

/// One stage's timing summary (log₂-bucket upper-bound quantiles).
#[derive(Debug, Clone, PartialEq)]
pub struct StageSnapshot {
    /// Stage name (see [`STAGE_NAMES`]).
    pub name: String,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of all recorded durations.
    pub total_ns: u64,
    /// Median bucket upper bound.
    pub p50_ns: u64,
    /// 90th-percentile bucket upper bound.
    pub p90_ns: u64,
    /// 99th-percentile bucket upper bound.
    pub p99_ns: u64,
}

impl StageSnapshot {
    /// Mean nanoseconds per recorded duration.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Live counters shared by the worker pool.
#[derive(Debug, Default)]
pub struct CampaignCounters {
    /// Dies whose pipeline has started.
    pub started: AtomicU64,
    /// Dies whose pipeline finished (pass or binned fail).
    pub completed: AtomicU64,
    /// Dies with at least one corner that failed to solve/extract.
    pub failed: AtomicU64,
    /// Per-stage histograms, indexed by the `STAGE_*` constants.
    pub stages: [LogHistogram; 3],
    /// Circuit solves issued (every Newton entry of every die).
    pub solves: AtomicU64,
    /// Damped Newton iterations, summed over all solves.
    pub newton_total: AtomicU64,
    /// Electro-thermal fixed-point iterations, summed over all setpoints.
    pub selfheat_total: AtomicU64,
    /// Solves seeded from a previous converged solution.
    pub warm_hits: AtomicU64,
    /// Solves started from the flat initial guess.
    pub warm_misses: AtomicU64,
    /// Full nonlinear device evaluations performed.
    pub device_evals: AtomicU64,
    /// The subset of `device_evals` computed by the lane-array device
    /// kernel of the batched driver (the vexp lane path).
    pub lane_evals: AtomicU64,
    /// Device evaluations skipped by an exact-bit cache hit.
    pub device_reuses: AtomicU64,
    /// Device evaluations skipped by the tolerance bypass.
    pub bypass_hits: AtomicU64,
    /// Jacobian passes that restamped only operating-point-dependent slots.
    pub restamp_incremental: AtomicU64,
    /// Jacobian passes that stamped every element.
    pub restamp_full: AtomicU64,
    /// Per-die Newton iteration totals (histogram of counts, not ns).
    pub newton_per_die: LogHistogram,
    /// Per-die self-heating iteration totals (histogram of counts).
    pub selfheat_per_die: LogHistogram,
    /// Corners that needed more than one extraction attempt.
    pub corners_retried: AtomicU64,
    /// Corners that produced values after at least one failed attempt.
    pub corners_recovered: AtomicU64,
    /// Corners whose values came from the pooled robust IRLS fit.
    pub robust_recoveries: AtomicU64,
    /// Corners quarantined after exhausting every recovery stage.
    pub corners_quarantined: AtomicU64,
    /// Recovered corners by the taxonomy kind they recovered from,
    /// indexed by [`FailureKind::index`](crate::taxonomy::FailureKind).
    pub recovered_by_kind: [AtomicU64; FailureKind::COUNT],
    /// Dies whose pipeline panicked and was contained by the worker's
    /// unwind guard.
    pub die_panics: AtomicU64,
    /// Dies that blew through the per-die solve budget and had their
    /// remaining corners retired.
    pub budgets_exhausted: AtomicU64,
    /// Checkpoint writes that failed (`ENOSPC`/`EIO`/short write) and
    /// were skipped — the previous checkpoint stays authoritative.
    pub checkpoint_write_errors: AtomicU64,
    /// Resumes that fell back to the previous checkpoint generation
    /// because the latest slot was corrupt or truncated.
    pub checkpoint_generation_fallbacks: AtomicU64,
    /// Solves that entered the lane-parallel batched Newton driver.
    pub batched_solves: AtomicU64,
    /// Lanes the batched driver retired mid-solve (factor failure,
    /// divergence, non-finite state) and handed back to the scalar path.
    pub lane_retires: AtomicU64,
    /// Die groups packed into the batched pipeline (one refill per group).
    pub batch_refills: AtomicU64,
    /// Lockstep solve rounds the batched sweep issued.
    pub lockstep_rounds: AtomicU64,
    /// `lanes_active[k]` counts lockstep rounds with exactly `k` lanes in
    /// batched stepping; bucket 0 counts all-scalar-fallback rounds.
    pub lanes_active: [AtomicU64; MAX_LANES + 1],
}

impl CampaignCounters {
    /// Canonical `(name, counter)` listing of every scalar counter, in a
    /// fixed order shared by [`CampaignCounters::merge`] and the shard
    /// partial-aggregate codec. Arrays and histograms are not listed —
    /// they carry their own encodings.
    #[must_use]
    pub fn scalars(&self) -> [(&'static str, &AtomicU64); 26] {
        [
            ("started", &self.started),
            ("completed", &self.completed),
            ("failed", &self.failed),
            ("solves", &self.solves),
            ("newton_total", &self.newton_total),
            ("selfheat_total", &self.selfheat_total),
            ("warm_hits", &self.warm_hits),
            ("warm_misses", &self.warm_misses),
            ("device_evals", &self.device_evals),
            ("lane_evals", &self.lane_evals),
            ("device_reuses", &self.device_reuses),
            ("bypass_hits", &self.bypass_hits),
            ("restamp_incremental", &self.restamp_incremental),
            ("restamp_full", &self.restamp_full),
            ("corners_retried", &self.corners_retried),
            ("corners_recovered", &self.corners_recovered),
            ("robust_recoveries", &self.robust_recoveries),
            ("corners_quarantined", &self.corners_quarantined),
            ("die_panics", &self.die_panics),
            ("budgets_exhausted", &self.budgets_exhausted),
            ("checkpoint_write_errors", &self.checkpoint_write_errors),
            (
                "checkpoint_generation_fallbacks",
                &self.checkpoint_generation_fallbacks,
            ),
            ("batched_solves", &self.batched_solves),
            ("lane_retires", &self.lane_retires),
            ("batch_refills", &self.batch_refills),
            ("lockstep_rounds", &self.lockstep_rounds),
        ]
    }

    /// Pairwise merge for shard fan-in: every scalar, by-kind array, lane
    /// bucket and histogram of `other` is added into `self`. All integer
    /// addition — exactly associative and commutative, so any fold order
    /// yields the same counters.
    pub fn merge(&self, other: &CampaignCounters) {
        for ((_, a), (_, b)) in self.scalars().iter().zip(other.scalars().iter()) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        for (a, b) in self.stages.iter().zip(&other.stages) {
            a.merge(b);
        }
        self.newton_per_die.merge(&other.newton_per_die);
        self.selfheat_per_die.merge(&other.selfheat_per_die);
        for (a, b) in self.recovered_by_kind.iter().zip(&other.recovered_by_kind) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        for (a, b) in self.lanes_active.iter().zip(&other.lanes_active) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Folds one die's solver counters in (lock-free; any worker thread).
    pub fn record_die_solver(&self, stats: &SolveStats, selfheat_iterations: u64) {
        self.solves.fetch_add(stats.solves, Ordering::Relaxed);
        self.newton_total
            .fetch_add(stats.newton_iterations, Ordering::Relaxed);
        self.selfheat_total
            .fetch_add(selfheat_iterations, Ordering::Relaxed);
        self.warm_hits
            .fetch_add(stats.warm_starts, Ordering::Relaxed);
        self.warm_misses
            .fetch_add(stats.cold_starts, Ordering::Relaxed);
        self.device_evals
            .fetch_add(stats.device_evals, Ordering::Relaxed);
        self.lane_evals
            .fetch_add(stats.lane_evals, Ordering::Relaxed);
        self.device_reuses
            .fetch_add(stats.device_reuses, Ordering::Relaxed);
        self.bypass_hits
            .fetch_add(stats.bypass_hits, Ordering::Relaxed);
        self.restamp_incremental
            .fetch_add(stats.restamp_incremental, Ordering::Relaxed);
        self.restamp_full
            .fetch_add(stats.restamp_full, Ordering::Relaxed);
        self.batched_solves
            .fetch_add(stats.batched_solves, Ordering::Relaxed);
        self.lane_retires
            .fetch_add(stats.lane_retires, Ordering::Relaxed);
        self.newton_per_die.record_ns(stats.newton_iterations);
        self.selfheat_per_die.record_ns(selfheat_iterations);
    }

    /// Folds one die group's lane-utilization stats in (lock-free; any
    /// worker thread). `refills` is the number of groups packed — one per
    /// call on the batched worker path.
    pub fn record_batch_sweep(&self, sweep: &BatchSweepStats, refills: u64) {
        self.batch_refills.fetch_add(refills, Ordering::Relaxed);
        self.lockstep_rounds
            .fetch_add(sweep.rounds, Ordering::Relaxed);
        for (slot, &n) in self.lanes_active.iter().zip(&sweep.lanes_active) {
            slot.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Folds one die's recovery bookkeeping in (lock-free; any worker
    /// thread). All zeros on a fault-free campaign.
    pub fn record_die_recovery(
        &self,
        retried: u64,
        recovered: u64,
        robust: u64,
        quarantined: u64,
        recovered_by_kind: &[u64; FailureKind::COUNT],
    ) {
        self.corners_retried.fetch_add(retried, Ordering::Relaxed);
        self.corners_recovered
            .fetch_add(recovered, Ordering::Relaxed);
        self.robust_recoveries.fetch_add(robust, Ordering::Relaxed);
        self.corners_quarantined
            .fetch_add(quarantined, Ordering::Relaxed);
        for (slot, &n) in self.recovered_by_kind.iter().zip(recovered_by_kind) {
            slot.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Recovery-level observability: how hard the graceful-degradation
/// machinery worked. All zeros on a fault-free campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryMetrics {
    /// Corners that needed more than one extraction attempt.
    pub corners_retried: u64,
    /// Corners that produced values after at least one failed attempt.
    pub corners_recovered: u64,
    /// Corners whose values came from the pooled robust IRLS fit.
    pub robust_recoveries: u64,
    /// Corners quarantined after exhausting every recovery stage.
    pub corners_quarantined: u64,
    /// Recovered corners by the taxonomy kind they recovered from,
    /// indexed by [`FailureKind::index`](crate::taxonomy::FailureKind).
    pub recovered_by_kind: [u64; FailureKind::COUNT],
}

/// Containment-level observability: how often the chaos-hardening
/// machinery fired. All zeros on a healthy, chaos-free campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContainmentMetrics {
    /// Dies whose pipeline panicked and was contained (all corners
    /// retired as `internal_panic`).
    pub die_panics: u64,
    /// Dies that exhausted the per-die solve budget (remaining corners
    /// retired as `budget_exhausted`).
    pub budgets_exhausted: u64,
    /// Checkpoint writes skipped because the write failed.
    pub checkpoint_write_errors: u64,
    /// Resumes served from the previous checkpoint generation after a
    /// corrupt or truncated latest slot.
    pub checkpoint_generation_fallbacks: u64,
}

/// Solver-level observability: how much numerical work the campaign did
/// and how often warm starts paid off. Like all metrics, never part of the
/// deterministic aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverMetrics {
    /// Circuit solves issued.
    pub solves: u64,
    /// Total damped Newton iterations.
    pub newton_iterations: u64,
    /// Total electro-thermal fixed-point iterations.
    pub selfheat_iterations: u64,
    /// Solves seeded from a previous converged solution.
    pub warm_start_hits: u64,
    /// Solves started from the flat initial guess.
    pub warm_start_misses: u64,
    /// Full nonlinear device evaluations performed.
    pub device_evals: u64,
    /// The subset of [`SolverMetrics::device_evals`] computed by the
    /// lane-array device kernel (`device_evals - lane_evals` ran through
    /// the scalar in-stamp path).
    pub lane_evals: u64,
    /// Device evaluations skipped by an exact-bit cache hit.
    pub device_reuses: u64,
    /// Device evaluations skipped by the tolerance bypass.
    pub bypass_hits: u64,
    /// Jacobian passes that restamped only operating-point-dependent slots.
    pub restamp_incremental: u64,
    /// Jacobian passes that stamped every element.
    pub restamp_full: u64,
    /// Median per-die Newton iteration count (log₂-bucket upper bound).
    pub newton_per_die_p50: u64,
    /// 99th-percentile per-die Newton iteration count (bucket upper bound).
    pub newton_per_die_p99: u64,
}

impl SolverMetrics {
    /// Mean Newton iterations per solve.
    #[must_use]
    pub fn newton_per_solve(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.newton_iterations as f64 / self.solves as f64
        }
    }

    /// Fraction of solves that were warm-started (0 when none ran).
    #[must_use]
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.warm_start_hits + self.warm_start_misses;
        if total == 0 {
            0.0
        } else {
            self.warm_start_hits as f64 / total as f64
        }
    }

    /// Fraction of device-evaluation requests answered from a cache —
    /// exact-bit reuse or tolerance bypass (0 when none ran).
    #[must_use]
    pub fn bypass_hit_rate(&self) -> f64 {
        let total = self.device_evals + self.device_reuses + self.bypass_hits;
        if total == 0 {
            0.0
        } else {
            (self.device_reuses + self.bypass_hits) as f64 / total as f64
        }
    }

    /// Fraction of the device evaluations actually performed that came
    /// from the lane-array kernel rather than the scalar in-stamp path
    /// (0 when none ran).
    #[must_use]
    pub fn lane_eval_share(&self) -> f64 {
        if self.device_evals == 0 {
            0.0
        } else {
            self.lane_evals as f64 / self.device_evals as f64
        }
    }

    /// Fraction of Jacobian passes that only restamped
    /// operating-point-dependent slots (0 when none ran).
    #[must_use]
    pub fn restamp_savings(&self) -> f64 {
        let total = self.restamp_incremental + self.restamp_full;
        if total == 0 {
            0.0
        } else {
            self.restamp_incremental as f64 / total as f64
        }
    }
}

/// Lane-utilization observability of the batched (die-parallel) solve
/// path. All zeros when the campaign ran scalar (`batch = 1`, or a spec
/// that disables warm starts / the sparse path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchMetrics {
    /// Solves that entered the lane-parallel batched Newton driver.
    pub batched_solves: u64,
    /// Lanes retired mid-solve and redone on the scalar path.
    pub lane_retires: u64,
    /// Die groups packed into the batched pipeline.
    pub batch_refills: u64,
    /// Lockstep solve rounds issued by the batched sweep.
    pub lockstep_rounds: u64,
    /// Rounds by the number of lanes that entered batched stepping
    /// (bucket 0 = all lanes fell back to scalar that round).
    pub lanes_active: [u64; MAX_LANES + 1],
}

impl BatchMetrics {
    /// Mean lanes entering batched stepping per lockstep round (0 when no
    /// rounds ran).
    #[must_use]
    pub fn mean_lanes_active(&self) -> f64 {
        if self.lockstep_rounds == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .lanes_active
            .iter()
            .enumerate()
            .map(|(k, &c)| k as u64 * c)
            .sum();
        weighted as f64 / self.lockstep_rounds as f64
    }
}

/// End-of-run observability snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignMetrics {
    /// Dies started.
    pub dies_started: u64,
    /// Dies completed.
    pub dies_completed: u64,
    /// Dies with a solve failure in some corner.
    pub dies_failed: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock of the whole run.
    pub elapsed_ns: u64,
    /// Completed dies per wall-clock second.
    pub dies_per_second: f64,
    /// Peak size of the in-order fold's reorder buffer (bounded by the
    /// out-of-order window of the pool, not by the die count).
    pub max_reorder_buffer: usize,
    /// Per-stage timing summaries.
    pub stages: Vec<StageSnapshot>,
    /// Solver iteration counts and warm-start accounting.
    pub solver: SolverMetrics,
    /// Lane-utilization accounting of the batched solve path.
    pub batching: BatchMetrics,
    /// Retry / robust-recovery / quarantine accounting.
    pub recovery: RecoveryMetrics,
    /// Panic/budget containment and checkpoint-degradation accounting.
    pub containment: ContainmentMetrics,
}

impl CampaignCounters {
    /// Snapshots the counters after the pool has joined.
    #[must_use]
    pub fn snapshot(
        &self,
        threads: usize,
        elapsed_ns: u64,
        max_reorder_buffer: usize,
    ) -> CampaignMetrics {
        let completed = self.completed.load(Ordering::Relaxed);
        let secs = elapsed_ns as f64 / 1e9;
        CampaignMetrics {
            dies_started: self.started.load(Ordering::Relaxed),
            dies_completed: completed,
            dies_failed: self.failed.load(Ordering::Relaxed),
            threads,
            elapsed_ns,
            dies_per_second: if secs > 0.0 {
                completed as f64 / secs
            } else {
                0.0
            },
            max_reorder_buffer,
            stages: STAGE_NAMES
                .iter()
                .enumerate()
                .map(|(i, n)| self.stages[i].snapshot(n))
                .collect(),
            solver: {
                let newton = self.newton_per_die.snapshot("newton_per_die");
                SolverMetrics {
                    solves: self.solves.load(Ordering::Relaxed),
                    newton_iterations: self.newton_total.load(Ordering::Relaxed),
                    selfheat_iterations: self.selfheat_total.load(Ordering::Relaxed),
                    warm_start_hits: self.warm_hits.load(Ordering::Relaxed),
                    warm_start_misses: self.warm_misses.load(Ordering::Relaxed),
                    device_evals: self.device_evals.load(Ordering::Relaxed),
                    lane_evals: self.lane_evals.load(Ordering::Relaxed),
                    device_reuses: self.device_reuses.load(Ordering::Relaxed),
                    bypass_hits: self.bypass_hits.load(Ordering::Relaxed),
                    restamp_incremental: self.restamp_incremental.load(Ordering::Relaxed),
                    restamp_full: self.restamp_full.load(Ordering::Relaxed),
                    newton_per_die_p50: newton.p50_ns,
                    newton_per_die_p99: newton.p99_ns,
                }
            },
            batching: BatchMetrics {
                batched_solves: self.batched_solves.load(Ordering::Relaxed),
                lane_retires: self.lane_retires.load(Ordering::Relaxed),
                batch_refills: self.batch_refills.load(Ordering::Relaxed),
                lockstep_rounds: self.lockstep_rounds.load(Ordering::Relaxed),
                lanes_active: std::array::from_fn(|i| self.lanes_active[i].load(Ordering::Relaxed)),
            },
            recovery: RecoveryMetrics {
                corners_retried: self.corners_retried.load(Ordering::Relaxed),
                corners_recovered: self.corners_recovered.load(Ordering::Relaxed),
                robust_recoveries: self.robust_recoveries.load(Ordering::Relaxed),
                corners_quarantined: self.corners_quarantined.load(Ordering::Relaxed),
                recovered_by_kind: std::array::from_fn(|i| {
                    self.recovered_by_kind[i].load(Ordering::Relaxed)
                }),
            },
            containment: ContainmentMetrics {
                die_panics: self.die_panics.load(Ordering::Relaxed),
                budgets_exhausted: self.budgets_exhausted.load(Ordering::Relaxed),
                checkpoint_write_errors: self.checkpoint_write_errors.load(Ordering::Relaxed),
                checkpoint_generation_fallbacks: self
                    .checkpoint_generation_fallbacks
                    .load(Ordering::Relaxed),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LogHistogram::default();
        h.record_ns(0);
        h.record_ns(1);
        h.record_ns(1023);
        h.record_ns(1024);
        let s = h.snapshot("t");
        assert_eq!(s.count, 4);
        assert_eq!(s.total_ns, 2048);
        assert!(s.p50_ns >= 1, "{}", s.p50_ns);
        assert!(s.p99_ns >= 1024);
    }

    #[test]
    fn exact_powers_of_two_land_on_their_own_edge() {
        // Regression: `64 - ns.leading_zeros()` put every exact power of
        // two one bucket high, so the reported upper edge was 2x the true
        // value at every 2^k boundary (record_ns(1) reported 2 ns).
        let h = LogHistogram::default();
        h.record_ns(1);
        assert_eq!(h.snapshot("t").p50_ns, 1, "1 ns must report a 1 ns edge");
        for k in [1u32, 4, 10, 20, 40, 62] {
            let h = LogHistogram::default();
            h.record_ns(1u64 << k);
            let s = h.snapshot("t");
            assert_eq!(
                s.p50_ns,
                1u64 << k,
                "2^{k} must land in the bucket whose upper edge is 2^{k}"
            );
        }
    }

    #[test]
    fn bucket_edges_bound_recorded_values() {
        // Every recorded duration must be <= the edge its bucket reports,
        // and > half that edge (except the 0/1 ns bucket). The top bucket
        // saturates: anything above 2^62 ns reports the 2^63 edge.
        for ns in [0u64, 1, 2, 3, 5, 1023, 1024, 1025] {
            let h = LogHistogram::default();
            h.record_ns(ns);
            let edge = h.snapshot("t").p50_ns;
            assert!(ns <= edge, "ns {ns} above its edge {edge}");
            if ns > 1 {
                assert!(edge / 2 < ns, "ns {ns} below half its edge {edge}");
            }
        }
        let h = LogHistogram::default();
        h.record_ns(u64::MAX);
        assert_eq!(h.snapshot("t").p50_ns, 1u64 << 63);
    }

    #[test]
    fn quantile_rank_is_nearest_rank_for_small_counts() {
        // Nearest-rank definition, rank = max(1, ceil(p * count)), checked
        // for count in {0, 1, 2, odd, even} with values in distinct buckets.
        let empty = LogHistogram::default();
        let s = empty.snapshot("t");
        assert_eq!((s.p50_ns, s.p90_ns, s.p99_ns), (0, 0, 0));

        let one = LogHistogram::default();
        one.record_ns(8);
        let s = one.snapshot("t");
        assert_eq!((s.p50_ns, s.p90_ns, s.p99_ns), (8, 8, 8));

        // count = 2: ceil(0.5 * 2) = 1 -> the lower value is the median.
        let two = LogHistogram::default();
        two.record_ns(8);
        two.record_ns(64);
        let s = two.snapshot("t");
        assert_eq!(s.p50_ns, 8);
        assert_eq!(s.p90_ns, 64);

        // count = 3 (odd): ceil(1.5) = 2 -> the middle value.
        let odd = LogHistogram::default();
        for ns in [8, 64, 512] {
            odd.record_ns(ns);
        }
        let s = odd.snapshot("t");
        assert_eq!(s.p50_ns, 64);
        assert_eq!(s.p99_ns, 512);

        // count = 4 (even): ceil(2.0) = 2 -> the lower middle value.
        let even = LogHistogram::default();
        for ns in [8, 64, 512, 4096] {
            even.record_ns(ns);
        }
        let s = even.snapshot("t");
        assert_eq!(s.p50_ns, 64);
        assert_eq!(s.p90_ns, 4096);
    }

    #[test]
    fn quantile_rank_is_exact_for_large_counts() {
        // The rank must be computed in integer arithmetic: with a count
        // above 2^53 the old `(p * count as f64).ceil()` rounds the rank
        // and can skip the true quantile bucket. Simulate with raw bucket
        // counts (recording 2^54 samples is not practical).
        let h = LogHistogram::default();
        h.buckets[3].store(1u64 << 52, Ordering::Relaxed);
        h.buckets[10].store((1u64 << 52) + 1, Ordering::Relaxed);
        let s = h.snapshot("t");
        // count = 2^53 + 1, so the exact median rank is
        // ceil((2^53 + 1) / 2) = 2^52 + 1 — one past bucket 3's cumulative
        // count, i.e. bucket 10. In f64, `count as f64` rounds 2^53 + 1
        // down to 2^53 and the computed rank 2^52 lands in bucket 3.
        assert_eq!(s.p50_ns, 1024);
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = LogHistogram::default();
        for i in 0..1000u64 {
            h.record_ns(i * 100);
        }
        let s = h.snapshot("t");
        assert!(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns);
        assert!(s.mean_ns() > 0.0);
    }

    #[test]
    fn histogram_merge_matches_recording_everything_in_one() {
        let all = LogHistogram::default();
        let a = LogHistogram::default();
        let b = LogHistogram::default();
        for i in 0..500u64 {
            let ns = i * 37 + 1;
            all.record_ns(ns);
            if i % 2 == 0 { &a } else { &b }.record_ns(ns);
        }
        a.merge(&b);
        assert_eq!(a.raw(), all.raw());
        assert_eq!(a.snapshot("t"), all.snapshot("t"));
    }

    #[test]
    fn counters_merge_adds_every_scalar_and_histogram() {
        let a = CampaignCounters::default();
        let b = CampaignCounters::default();
        for (i, (_, c)) in a.scalars().iter().enumerate() {
            c.store(i as u64 + 1, Ordering::Relaxed);
        }
        for (i, (_, c)) in b.scalars().iter().enumerate() {
            c.store(100 + i as u64, Ordering::Relaxed);
        }
        a.recovered_by_kind[2].store(5, Ordering::Relaxed);
        b.recovered_by_kind[2].store(7, Ordering::Relaxed);
        a.lanes_active[1].store(3, Ordering::Relaxed);
        b.lanes_active[1].store(4, Ordering::Relaxed);
        a.stages[STAGE_SAMPLE].record_ns(10);
        b.stages[STAGE_SAMPLE].record_ns(1000);
        a.merge(&b);
        for (i, (_, c)) in a.scalars().iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), i as u64 + 1 + 100 + i as u64);
        }
        assert_eq!(a.recovered_by_kind[2].load(Ordering::Relaxed), 12);
        assert_eq!(a.lanes_active[1].load(Ordering::Relaxed), 7);
        let s = a.stages[STAGE_SAMPLE].snapshot("sample");
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 1010);
    }

    #[test]
    fn counters_snapshot_computes_rate() {
        let c = CampaignCounters::default();
        c.started.store(10, Ordering::Relaxed);
        c.completed.store(10, Ordering::Relaxed);
        let m = c.snapshot(4, 2_000_000_000, 3);
        assert_eq!(m.dies_completed, 10);
        assert!((m.dies_per_second - 5.0).abs() < 1e-9);
        assert_eq!(m.threads, 4);
        assert_eq!(m.max_reorder_buffer, 3);
        assert_eq!(m.stages.len(), 3);
    }
}
