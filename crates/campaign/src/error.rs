//! Campaign-level error type.

use std::error::Error;
use std::fmt;

/// Error raised by campaign validation or report persistence.
///
/// Per-die pipeline failures are *not* errors: a production campaign must
/// survive bad dies, so those are counted and binned as
/// [`YieldBin::SolveFail`](crate::aggregate::YieldBin::SolveFail) instead.
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// The campaign spec is internally inconsistent.
    InvalidSpec(String),
    /// Writing a report artifact failed.
    Io(std::io::Error),
}

impl CampaignError {
    pub(crate) fn invalid(detail: impl Into<String>) -> Self {
        CampaignError::InvalidSpec(detail.into())
    }
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::InvalidSpec(d) => write!(f, "invalid campaign spec: {d}"),
            CampaignError::Io(e) => write!(f, "report i/o failed: {e}"),
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::Io(e) => Some(e),
            CampaignError::InvalidSpec(_) => None,
        }
    }
}

#[doc(hidden)]
impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}
