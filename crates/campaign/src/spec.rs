//! Campaign description: wafer map, bias corners, temperature plan, spec
//! window.

use icvbe_instrument::faults::FaultSpec;
use icvbe_instrument::montecarlo::VariationSpec;
use icvbe_units::{Ampere, Celsius};

use crate::CampaignError;

/// Upper bound on [`CampaignSpec::retry_budget`]. Keeps the per-corner
/// attempt count bounded (the whole point of a *budget*) and far below
/// the 8-bit attempt field of the fault seed stream.
pub const MAX_RETRY_BUDGET: u32 = 32;

/// One die position on the wafer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DieSite {
    /// Dense index in campaign order (0-based, row-major over the map).
    pub index: usize,
    /// Row on the wafer grid.
    pub row: usize,
    /// Column on the wafer grid.
    pub col: usize,
}

/// A rectangular die grid with an optional circular wafer cut.
///
/// Real wafers are round: a `circular(d)` map keeps only the dies of a
/// `d x d` grid whose centers fall inside the inscribed circle, which is
/// how a 1,000-die campaign gets a realistic edge-die pattern instead of a
/// square block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaferMap {
    rows: usize,
    cols: usize,
    circular: bool,
}

impl WaferMap {
    /// A full rectangular map: every grid position is an active die.
    #[must_use]
    pub fn full(rows: usize, cols: usize) -> Self {
        WaferMap {
            rows,
            cols,
            circular: false,
        }
    }

    /// A circular wafer of `diameter` dies across.
    #[must_use]
    pub fn circular(diameter: usize) -> Self {
        WaferMap {
            rows: diameter,
            cols: diameter,
            circular: true,
        }
    }

    /// Grid rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the map applies the circular wafer cut.
    #[must_use]
    pub fn is_circular(&self) -> bool {
        self.circular
    }

    fn active(&self, row: usize, col: usize) -> bool {
        if !self.circular {
            return true;
        }
        // Die centers at (row + 0.5, col + 0.5) on an r x c grid; keep
        // those inside the inscribed circle.
        let r = self.rows as f64 / 2.0;
        let dy = row as f64 + 0.5 - r;
        let dx = col as f64 + 0.5 - self.cols as f64 / 2.0;
        dx * dx + dy * dy <= r * r
    }

    /// The active dies in campaign order (row-major), with dense indices.
    #[must_use]
    pub fn sites(&self) -> Vec<DieSite> {
        let mut out = Vec::new();
        for row in 0..self.rows {
            for col in 0..self.cols {
                if self.active(row, col) {
                    out.push(DieSite {
                        index: out.len(),
                        row,
                        col,
                    });
                }
            }
        }
        out
    }

    /// Number of active dies.
    #[must_use]
    pub fn die_count(&self) -> usize {
        (0..self.rows)
            .map(|r| (0..self.cols).filter(|&c| self.active(r, c)).count())
            .sum()
    }
}

/// One bias condition the extraction runs at.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasCorner {
    /// Corner label used in reports ("nom", "low", "high", ...).
    pub name: String,
    /// QA collector bias of the pair structure at this corner.
    pub ic: Ampere,
}

impl BiasCorner {
    /// Creates a corner.
    #[must_use]
    pub fn new(name: &str, ic: Ampere) -> Self {
        BiasCorner {
            name: name.to_string(),
            ic,
        }
    }
}

/// The three chamber setpoints of the analytical method (paper section 5:
/// cold and hot are *computed* from dVBE, only the reference is trusted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperaturePlan {
    /// Cold setpoint.
    pub cold: Celsius,
    /// Reference setpoint (the trusted one).
    pub reference: Celsius,
    /// Hot setpoint.
    pub hot: Celsius,
}

impl TemperaturePlan {
    /// The paper's -25 / +25 / +75 °C plan.
    #[must_use]
    pub fn paper() -> Self {
        TemperaturePlan {
            cold: Celsius::new(-25.0),
            reference: Celsius::new(25.0),
            hot: Celsius::new(75.0),
        }
    }

    /// The setpoints in measurement order.
    #[must_use]
    pub fn setpoints(&self) -> [Celsius; 3] {
        [self.cold, self.reference, self.hot]
    }
}

/// The `EG`/`XTI` acceptance window yield is binned against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecWindow {
    /// Minimum acceptable `EG` in eV.
    pub eg_min: f64,
    /// Maximum acceptable `EG` in eV.
    pub eg_max: f64,
    /// Minimum acceptable `XTI`.
    pub xti_min: f64,
    /// Maximum acceptable `XTI`.
    pub xti_max: f64,
}

impl SpecWindow {
    /// A window around the ST BiCMOS card (`EG` 1.1324 eV, `XTI` 2.58)
    /// wide enough for healthy process spread, tight enough to catch
    /// broken extractions.
    #[must_use]
    pub fn st_bicmos_default() -> Self {
        SpecWindow {
            eg_min: 1.05,
            eg_max: 1.25,
            xti_min: 0.0,
            xti_max: 6.0,
        }
    }
}

/// Which virtual bench measures the dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchProfile {
    /// The paper's bench: self-heating package path, HP4156-class SMU,
    /// Pt100 sensor.
    Paper,
    /// Ideal instruments and no self-heating (isolates process spread).
    Ideal,
}

/// Everything a campaign run depends on. Two equal specs produce
/// byte-identical aggregate reports at any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// The die map.
    pub wafer: WaferMap,
    /// Statistical spec of the per-die process perturbations.
    pub variation: VariationSpec,
    /// Bias corners; every die is extracted once per corner.
    pub corners: Vec<BiasCorner>,
    /// The three-setpoint temperature plan.
    pub plan: TemperaturePlan,
    /// Yield window.
    pub window: SpecWindow,
    /// Campaign master seed; every per-die stream derives from it.
    pub seed: u64,
    /// Bench profile.
    pub bench: BenchProfile,
    /// Seed each circuit solve from the previous converged solution
    /// (across self-heating iterations and setpoints within one
    /// die/corner). Newton polishing makes the measured values
    /// bit-identical either way — only iteration counts change — so this
    /// field is deliberately **not** part of the aggregate artifacts and
    /// warm/cold aggregates compare equal.
    pub warm_start: bool,
    /// Skip device re-evaluation inside Newton when controlling voltages
    /// barely moved (SPICE-style bypass). Accepted solutions are
    /// re-verified with the bypass suspended, so — like `warm_start` —
    /// this is a pure speed knob, deliberately **not** part of the
    /// aggregate artifacts; bypassed and bypass-free aggregates compare
    /// byte-identical.
    pub bypass: bool,
    /// Factor circuit Jacobians through the frozen symbolic sparsity plan
    /// instead of dense LU. Bitwise-identical results either way — kept
    /// as a switch for ablation benchmarks, not part of the aggregate
    /// artifacts.
    pub sparse: bool,
    /// Deterministic measurement-fault injection. The all-zero spec
    /// ([`FaultSpec::none`]) is a strict no-op: the per-corner pipeline
    /// runs exactly one attempt and never touches the fault streams, so a
    /// zero-fault campaign reproduces an unfaulted one bit for bit.
    pub faults: FaultSpec,
    /// Extra corruption attempts a corner may consume after its first
    /// measurement fails or lands out of window (each retry re-corrupts
    /// the pristine measurement with a fresh seeded fault realization).
    /// Ignored when `faults` is all-zero. Capped at [`MAX_RETRY_BUDGET`].
    pub retry_budget: u32,
    /// After the retry budget is exhausted without a pass, pool every
    /// attempt's samples and run a robust (Tukey IRLS) eq.-13 fit that
    /// zero-weights the corrupted readings. Ignored when `faults` is
    /// all-zero.
    pub robust: bool,
    /// Adaptive corner scheduling: fit each die on the probe corner(s)
    /// first and run the remaining corners only when the probe flags the
    /// die (fit residual, retries, robust recovery, out-of-window bin or
    /// quarantine). Skipped corners land in the `skipped` yield bin with
    /// no values. **Changes the aggregate artifacts** (skipped corners
    /// contribute no statistics), so — unlike the pure speed knobs — it
    /// IS part of the wire spec and the fingerprint when enabled.
    pub adaptive: bool,
}

impl CampaignSpec {
    /// The paper-faithful campaign: default process spread, the
    /// -25/25/75 °C plan, nominal 1 µA bias plus half/double corners, the
    /// paper bench and the ST BiCMOS spec window.
    #[must_use]
    pub fn paper_default(wafer: WaferMap, seed: u64) -> Self {
        CampaignSpec {
            wafer,
            variation: VariationSpec::default(),
            corners: vec![
                BiasCorner::new("low", Ampere::new(0.5e-6)),
                BiasCorner::new("nom", Ampere::new(1e-6)),
                BiasCorner::new("high", Ampere::new(2e-6)),
            ],
            plan: TemperaturePlan::paper(),
            window: SpecWindow::st_bicmos_default(),
            seed,
            bench: BenchProfile::Paper,
            warm_start: true,
            bypass: true,
            sparse: true,
            faults: FaultSpec::none(),
            retry_budget: 3,
            robust: true,
            adaptive: false,
        }
    }

    /// Checks internal consistency.
    ///
    /// Degenerate inputs are rejected here rather than left to misbehave
    /// downstream: an empty wafer map (`die_count() == 0`, e.g.
    /// `WaferMap::full(0, n)`) and a collapsed temperature plan (any two
    /// setpoints equal — a single- or two-point plan cannot feed the
    /// three-point method) are both `InvalidSpec`.
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidSpec`] on an empty map, no corners,
    /// non-positive bias, a non-monotone temperature plan, an empty spec
    /// window, an out-of-range fault spec or an oversized retry budget.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.wafer.die_count() == 0 {
            return Err(CampaignError::invalid("wafer map has no active dies"));
        }
        if self.corners.is_empty() {
            return Err(CampaignError::invalid("no bias corners"));
        }
        for c in &self.corners {
            if !(c.ic.value() > 0.0) {
                return Err(CampaignError::invalid(format!(
                    "corner {:?} has non-positive bias",
                    c.name
                )));
            }
        }
        let [t1, t2, t3] = self.plan.setpoints().map(|c| c.value());
        if !(t1 < t2 && t2 < t3) {
            return Err(CampaignError::invalid(
                "temperature plan must be strictly increasing cold < reference < hot",
            ));
        }
        if !(self.window.eg_min < self.window.eg_max)
            || !(self.window.xti_min < self.window.xti_max)
        {
            return Err(CampaignError::invalid("empty spec window"));
        }
        self.faults
            .validate()
            .map_err(|e| CampaignError::invalid(format!("fault spec: {}", e.detail)))?;
        if self.retry_budget > MAX_RETRY_BUDGET {
            return Err(CampaignError::invalid(format!(
                "retry budget {} exceeds the cap of {MAX_RETRY_BUDGET}",
                self.retry_budget
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_map_enumerates_every_site() {
        let m = WaferMap::full(3, 4);
        let sites = m.sites();
        assert_eq!(sites.len(), 12);
        assert_eq!(m.die_count(), 12);
        assert_eq!(
            sites[0],
            DieSite {
                index: 0,
                row: 0,
                col: 0
            }
        );
        assert_eq!(
            sites[11],
            DieSite {
                index: 11,
                row: 2,
                col: 3
            }
        );
    }

    #[test]
    fn circular_map_drops_corners() {
        let m = WaferMap::circular(8);
        let n = m.die_count();
        assert!(n < 64, "circle must cut corners, got {n}");
        assert!(n > 32, "circle too aggressive: {n}");
        // Corner die of the grid is outside the circle.
        assert!(m.sites().iter().all(|s| !(s.row == 0 && s.col == 0)));
        // Dense indexing with no gaps.
        for (i, s) in m.sites().iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }

    #[test]
    fn paper_default_validates() {
        let s = CampaignSpec::paper_default(WaferMap::circular(10), 2002);
        assert!(s.validate().is_ok());
        assert_eq!(s.corners.len(), 3);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = CampaignSpec::paper_default(WaferMap::full(2, 2), 1);
        s.corners.clear();
        assert!(s.validate().is_err());

        let mut s = CampaignSpec::paper_default(WaferMap::full(2, 2), 1);
        s.plan.hot = Celsius::new(-40.0);
        assert!(s.validate().is_err());

        let mut s = CampaignSpec::paper_default(WaferMap::full(2, 2), 1);
        s.window.eg_max = s.window.eg_min;
        assert!(s.validate().is_err());

        let mut s = CampaignSpec::paper_default(WaferMap::full(2, 2), 1);
        s.corners[0].ic = Ampere::new(0.0);
        assert!(s.validate().is_err());
    }

    #[test]
    fn degenerate_inputs_are_documented_invalid_specs() {
        // Empty wafer map: no active dies.
        let s = CampaignSpec::paper_default(WaferMap::full(0, 5), 1);
        assert!(s.validate().is_err());
        let s = CampaignSpec::paper_default(WaferMap::circular(0), 1);
        assert!(s.validate().is_err());
        // Collapsed (single-point) temperature plan: the three-point
        // method is underdetermined, rejected up front.
        let mut s = CampaignSpec::paper_default(WaferMap::full(2, 2), 1);
        s.plan.cold = s.plan.reference;
        s.plan.hot = s.plan.reference;
        assert!(s.validate().is_err());
    }

    #[test]
    fn fault_and_retry_knobs_are_validated() {
        let mut s = CampaignSpec::paper_default(WaferMap::full(2, 2), 1);
        s.faults = FaultSpec::heavy();
        assert!(s.validate().is_ok());
        s.faults.noise_probability = 1.5;
        assert!(s.validate().is_err());

        let mut s = CampaignSpec::paper_default(WaferMap::full(2, 2), 1);
        s.retry_budget = MAX_RETRY_BUDGET;
        assert!(s.validate().is_ok());
        s.retry_budget = MAX_RETRY_BUDGET + 1;
        assert!(s.validate().is_err());
    }
}
