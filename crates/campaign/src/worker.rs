//! The pure-`std` worker pool and the in-order streaming fold.
//!
//! Dies are claimed in fixed-size chunks off an `Arc<AtomicUsize>` cursor
//! (cheap work stealing: a fast thread simply claims more chunks), each
//! die runs its referentially transparent pipeline, and outcomes stream
//! over an `mpsc` channel back to the caller's thread. There they pass
//! through a reorder buffer that releases dies **in index order** into the
//! [`CampaignAggregate`] — so the floating-point fold is identical no
//! matter which thread finished first, and memory stays bounded by the
//! pool's out-of-order window rather than the die count.
//!
//! [`run_campaign_streaming`] is the general engine: it can start at any
//! die index, resume from a checkpointed aggregate, observe every folded
//! die through a callback and stop early at a die boundary — which is
//! what the campaign service builds its slice scheduler, result streams
//! and checkpoint/resume on. [`run_campaign_with`] is the one-shot
//! special case (start at die 0, fresh aggregate, never stop early).

use std::collections::BTreeMap;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use icvbe_instrument::bench::BenchScratch;
use icvbe_instrument::chaos::{ChaosPlan, ChaosSpec};
use icvbe_spice::batch::MAX_LANES;
use icvbe_spice::cache::SymbolicCache;
use icvbe_trace::{SpanKind, SpanPhase, Trace, TraceEvent, NO_DIE};

use crate::aggregate::{CampaignAggregate, YieldBin};
use crate::die::{
    contained_panic_outcome, run_die_with, run_dies_batch, BatchDieScratch, DieBudget, DieOutcome,
    DieScratch,
};
use crate::metrics::{
    CampaignCounters, CampaignMetrics, STAGE_EXTRACT, STAGE_MEASURE, STAGE_SAMPLE,
};
use crate::spec::CampaignSpec;
use crate::taxonomy::FailureKind;
use crate::CampaignError;

/// Dies claimed per cursor bump. Small enough to balance a straggling
/// thread, large enough that the atomic is off the hot path — and wide
/// enough that an auto-selected die group fills every lane the batched
/// solver offers ([`icvbe_spice::batch::MAX_LANES`]).
const CHUNK: usize = 16;

/// Lanes per die group when `batch = 0` asks for auto selection. A full
/// claim chunk: every group is claim-aligned, so grouping is identical at
/// any thread count. Wider groups amortize the lockstep round overhead
/// (masked factor, lane scatter, prewarm bookkeeping) over more dies per
/// round, and the lane-array exponential kernel fills wider SIMD vectors.
const AUTO_BATCH: usize = 16;

/// A finished campaign: the deterministic aggregate plus the run's
/// (non-deterministic) observability snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRun {
    /// The spec the run executed.
    pub spec: CampaignSpec,
    /// Streaming aggregate, identical for any thread count.
    pub aggregate: CampaignAggregate,
    /// Counters, throughput and stage histograms of this particular run.
    pub metrics: CampaignMetrics,
    /// Structured span trace, present iff [`RunOptions::trace`] was set.
    /// Logical span order is deterministic (die-index order, per-die
    /// sequence numbers); only timestamps/worker ids vary run to run.
    pub trace: Option<Trace>,
}

/// Knobs of [`run_campaign_with`] beyond the spec itself.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunOptions {
    /// Capture a structured span trace of the run into
    /// [`CampaignRun::trace`]. Off by default; when off the tracing layer
    /// is a no-op sink — no events, no extra clock reads, no allocations
    /// on the die hot path.
    pub trace: bool,
    /// Lanes per die group on the batched solve path: `0` (the default)
    /// selects automatically, `1` forces the scalar per-die path
    /// (ablation), larger values are clamped to the claim chunk and the
    /// solver's lane cap. Batching engages only when the spec leaves warm
    /// starts and the sparse path on; accepted results are bit-identical
    /// to the scalar path at every setting.
    pub batch: usize,
    /// Environment-fault injection (the chaos layer). The worker consults
    /// only the die-panic knob; write/socket faults act at the service
    /// layer. The default ([`ChaosSpec::none`]) is a structural no-op:
    /// no RNG is built and no verdict is drawn.
    pub chaos: ChaosSpec,
    /// Seed of the chaos plan; fault verdicts are a pure function of
    /// `(chaos, chaos_seed, die index)` — thread-count independent.
    pub chaos_seed: u64,
    /// Per-die solve containment budget (see [`DieBudget`]). Zero fields
    /// (the default) disable enforcement. An armed budget forces the
    /// scalar per-die path so the iteration verdict stays deterministic.
    pub budget: DieBudget,
}

/// Knobs of the general streaming engine, [`run_campaign_streaming`].
///
/// The defaults reproduce [`RunOptions::default`] behaviour exactly:
/// start at die 0 with a fresh aggregate, private counters, a run-local
/// symbolic cache, no tracing.
#[derive(Debug, Clone, Default)]
pub struct StreamOptions {
    /// Capture a structured span trace (see [`RunOptions::trace`]).
    pub trace: bool,
    /// First die index to run. Dies `0..start_die` are assumed already
    /// folded into [`StreamOptions::resume`].
    pub start_die: usize,
    /// Aggregate state to continue from (a decoded checkpoint), or `None`
    /// for a fresh one. Must hold exactly the fold of dies
    /// `0..start_die` for the determinism guarantee to carry over.
    pub resume: Option<CampaignAggregate>,
    /// Cross-campaign symbolic-LU plan cache. Jobs whose netlists share a
    /// sparsity pattern reuse one analysis; cached plans are bit-identical
    /// to fresh ones, so sharing never perturbs results. `None` (the
    /// default) still shares a cache *within* the run — dies of one
    /// topology always hold the same plan `Arc`.
    pub symbolic_cache: Option<Arc<SymbolicCache>>,
    /// External counters to accumulate into instead of run-private ones —
    /// a service accumulates one job's counters across its slices.
    pub counters: Option<Arc<CampaignCounters>>,
    /// Lanes per die group on the batched solve path (see
    /// [`RunOptions::batch`]).
    pub batch: usize,
    /// Environment-fault injection (see [`RunOptions::chaos`]).
    pub chaos: ChaosSpec,
    /// Seed of the chaos plan (see [`RunOptions::chaos_seed`]).
    pub chaos_seed: u64,
    /// Per-die solve containment budget (see [`RunOptions::budget`]).
    pub budget: DieBudget,
}

/// Runs `spec` across `threads` worker threads.
///
/// # Degenerate inputs
///
/// - `threads == 0` is clamped to 1 (a sensible default, not an error:
///   callers computing `available_parallelism - k` shouldn't crash a
///   campaign over an undersubscribed box).
/// - An empty wafer map or a collapsed temperature plan is rejected by
///   [`CampaignSpec::validate`] as [`CampaignError::InvalidSpec`] before
///   any thread spawns.
///
/// # Errors
///
/// Only [`CampaignError::InvalidSpec`]: per-die failures are binned as
/// [`YieldBin::SolveFail`], never raised.
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> Result<CampaignRun, CampaignError> {
    run_campaign_with(spec, threads, &RunOptions::default())
}

/// Per-die counter fold shared by the scalar and batched worker paths:
/// drains the lane's solver counters and records stage timings, completion
/// and recovery bookkeeping.
fn account_die(counters: &CampaignCounters, bench: &mut BenchScratch, out: &DieOutcome) {
    let (stats, selfheat) = bench.take_counters();
    counters.record_die_solver(&stats, selfheat);
    counters.stages[STAGE_SAMPLE].record_ns(out.timing.sample_ns);
    counters.stages[STAGE_MEASURE].record_ns(out.timing.measure_ns);
    counters.stages[STAGE_EXTRACT].record_ns(out.timing.extract_ns);
    counters.completed.fetch_add(1, Ordering::Relaxed);
    if out.corners.iter().any(|c| c.bin == YieldBin::SolveFail) {
        counters.failed.fetch_add(1, Ordering::Relaxed);
    }
    let mut retried = 0u64;
    let mut recovered = 0u64;
    let mut robust = 0u64;
    let mut quarantined = 0u64;
    let mut by_kind = [0u64; FailureKind::COUNT];
    for c in &out.corners {
        retried += u64::from(c.attempts > 1);
        robust += u64::from(c.robust_recovery);
        quarantined += u64::from(c.failure.is_some());
        if let Some(kind) = c.recovered_from {
            recovered += 1;
            by_kind[kind.index()] += 1;
        }
    }
    if retried + recovered + robust + quarantined > 0 {
        counters.record_die_recovery(retried, recovered, robust, quarantined, &by_kind);
    }
}

/// A fold-thread record: the campaign root span and the per-die
/// queue-wait spans are emitted by the folding thread, not a worker.
fn fold_event(
    phase: SpanPhase,
    kind: SpanKind,
    die: u32,
    seq: u32,
    ts_ns: u64,
    worker: u32,
    n0: u64,
) -> TraceEvent {
    TraceEvent {
        phase,
        kind,
        die,
        corner: -1,
        attempt: -1,
        label: "",
        seq,
        ts_ns,
        worker,
        n0,
        n1: 0,
    }
}

/// [`run_campaign`] with explicit [`RunOptions`]. With tracing requested,
/// every worker's span buffer shares the campaign epoch, each die's
/// records travel back with its outcome, and the fold thread merges them
/// in **die-index order** — bracketed by a campaign root span and
/// interleaved with one `queue_wait` span per die recording its
/// reorder-buffer latency — so the logical event stream is identical at
/// any thread count.
///
/// # Errors
///
/// Same contract as [`run_campaign`]: only [`CampaignError::InvalidSpec`].
pub fn run_campaign_with(
    spec: &CampaignSpec,
    threads: usize,
    options: &RunOptions,
) -> Result<CampaignRun, CampaignError> {
    let stream = StreamOptions {
        trace: options.trace,
        batch: options.batch,
        chaos: options.chaos,
        chaos_seed: options.chaos_seed,
        budget: options.budget,
        ..StreamOptions::default()
    };
    run_campaign_streaming(spec, threads, &stream, |_, _| ControlFlow::Continue(()))
}

/// The general streaming engine: runs dies `start_die..` of `spec`,
/// folding them **in index order** into a fresh or resumed aggregate, and
/// hands every folded die to `on_die` together with the aggregate state
/// after absorbing it. Returning [`ControlFlow::Break`] stops the run at
/// that die boundary: no further die is folded, workers abandon their
/// remaining claims, and the returned [`CampaignRun`] carries the
/// aggregate exactly as `on_die` last saw it — a valid checkpoint state
/// for `next_die = last_index + 1`.
///
/// Because the fold is strictly index-ordered, running dies `0..k` (via a
/// break), checkpointing, and resuming with `start_die = k` produces an
/// aggregate — and therefore report bytes — identical to one
/// uninterrupted run, at any thread counts on either side of the split.
///
/// # Errors
///
/// [`CampaignError::InvalidSpec`] from spec validation, or when
/// `start_die` exceeds the die count (a resume cursor from a checkpoint
/// that does not belong to this wafer).
pub fn run_campaign_streaming<F>(
    spec: &CampaignSpec,
    threads: usize,
    options: &StreamOptions,
    mut on_die: F,
) -> Result<CampaignRun, CampaignError>
where
    F: FnMut(&DieOutcome, &CampaignAggregate) -> ControlFlow<()>,
{
    spec.validate()?;
    if let Err(e) = options.chaos.validate() {
        return Err(CampaignError::invalid(format!("chaos spec: {e}")));
    }
    let sites = spec.wafer.sites();
    if options.start_die > sites.len() {
        return Err(CampaignError::invalid(format!(
            "start die {} beyond the wafer's {} dies",
            options.start_die,
            sites.len()
        )));
    }
    // Campaign-invariant work hoisted out of the per-die loop: the
    // setpoint list is computed once here, not once per corner per die.
    let setpoints = spec.plan.setpoints();
    let threads = threads.max(1);
    let owned_counters;
    let counters: &CampaignCounters = match options.counters.as_deref() {
        Some(shared) => shared,
        None => {
            owned_counters = CampaignCounters::default();
            &owned_counters
        }
    };
    let cursor = Arc::new(AtomicUsize::new(options.start_die));
    let tracing = options.trace;
    // Containment state. A chaos plan is built only when the die-panic
    // knob is armed — write/socket faults act at the service layer, not
    // here — and panic verdicts are keyed by die index, so they are
    // thread-count independent. Either form of containment forces the
    // scalar per-die path: the batched driver's solver-effort counters
    // legitimately differ from scalar's, which would make an iteration
    // budget's verdict depend on lane packing.
    let budget = options.budget;
    let chaos_plan = (options.chaos.die_panic_probability > 0.0)
        .then(|| ChaosPlan::new(options.chaos, options.chaos_seed));
    let contained = !budget.is_unlimited() || chaos_plan.is_some();
    // Lanes per die group. Batching needs warm seeds and a frozen sparse
    // plan to carry a lane, so a spec disabling either falls back to the
    // scalar per-die path — as does adaptive corner scheduling, whose
    // per-die skip decision the corner-outer lockstep driver cannot
    // express. Groups never straddle a claim chunk, so the grouping —
    // and therefore every accepted bit — is identical at any thread
    // count.
    let batch_lanes = {
        let requested = if options.batch == 0 {
            AUTO_BATCH
        } else {
            options.batch
        };
        if spec.warm_start && spec.sparse && !contained && !spec.adaptive {
            requested.min(CHUNK).min(MAX_LANES)
        } else {
            1
        }
    };
    let dropped = AtomicU64::new(0);
    // Run-shared symbolic-LU cache, created here when the caller did not
    // install a cross-campaign one. Every die of a topology then holds
    // the *same* plan `Arc`, so batch-lane eligibility and per-lane plan
    // install are pointer compares instead of structural ones. Cached
    // plans are bit-identical to private analysis (see
    // `shared_symbolic_cache_does_not_perturb_results`), so the default
    // share never perturbs results.
    let symbolic_cache = options
        .symbolic_cache
        .clone()
        .unwrap_or_else(|| Arc::new(SymbolicCache::new()));
    // The fold thread's `tid` in exported traces: one past the workers.
    let fold_tid = threads as u32;
    let started = Instant::now();

    let mut aggregate = options
        .resume
        .clone()
        .unwrap_or_else(|| CampaignAggregate::new(spec));
    let mut max_buffer = 0usize;
    let mut stopped = false;
    let mut trace = tracing.then(Trace::default);
    if let Some(t) = trace.as_mut() {
        t.events.push(fold_event(
            SpanPhase::Begin,
            SpanKind::Campaign,
            NO_DIE,
            0,
            0,
            fold_tid,
            0,
        ));
    }

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<DieOutcome>();
        for worker in 0..threads {
            let tx = tx.clone();
            let cursor = Arc::clone(&cursor);
            let sites = &sites;
            let setpoints = &setpoints;
            let symbolic_cache = Some(Arc::clone(&symbolic_cache));
            let dropped = &dropped;
            scope.spawn(move || {
                if batch_lanes > 1 {
                    // One batched scratch per worker: a DieScratch per
                    // lane plus the shared lane-strided solver buffers.
                    let mut scratch = BatchDieScratch::new(batch_lanes);
                    for ds in &mut scratch.lanes {
                        ds.bench.symbolic_cache = symbolic_cache.clone();
                        if tracing {
                            ds.bench.solve.trace.enable(started, worker as u32);
                        }
                    }
                    let mut group_out: Vec<DieOutcome> = Vec::with_capacity(batch_lanes);
                    'claim_batched: loop {
                        let base = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                        if base >= sites.len() {
                            break;
                        }
                        let end = (base + CHUNK).min(sites.len());
                        for group in sites[base..end].chunks(batch_lanes) {
                            counters
                                .started
                                .fetch_add(group.len() as u64, Ordering::Relaxed);
                            group_out.clear();
                            run_dies_batch(spec, group, setpoints, &mut scratch, &mut group_out);
                            counters.record_batch_sweep(&scratch.take_sweep(), 1);
                            for (lane, out) in group_out.drain(..).enumerate() {
                                account_die(counters, &mut scratch.lanes[lane].bench, &out);
                                if tx.send(out).is_err() {
                                    break 'claim_batched; // receiver gone
                                }
                            }
                        }
                    }
                    let lost: u64 = scratch
                        .lanes
                        .iter()
                        .map(|ds| ds.bench.solve.trace.dropped())
                        .sum();
                    dropped.fetch_add(lost, Ordering::Relaxed);
                    return;
                }
                // One scratch per worker thread: solver buffers reach a
                // steady state after the first die and are reused for
                // every die the thread claims. A panic poisons the
                // scratch mid-die, so containment rebuilds it from this
                // recipe before the next claim.
                let fresh_scratch = |cache: &Option<Arc<SymbolicCache>>| {
                    let mut s = DieScratch::new();
                    s.budget = budget;
                    s.bench.symbolic_cache = cache.clone();
                    if tracing {
                        s.bench.solve.trace.enable(started, worker as u32);
                    }
                    s
                };
                let mut scratch = fresh_scratch(&symbolic_cache);
                'claim: loop {
                    let base = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if base >= sites.len() {
                        break;
                    }
                    let end = (base + CHUNK).min(sites.len());
                    for site in &sites[base..end] {
                        counters.started.fetch_add(1, Ordering::Relaxed);
                        // Solve containment: die work runs under an
                        // unwind guard so one poisoned die retires into
                        // quarantine instead of tearing down the pool.
                        // Injected panics re-raise via `resume_unwind`,
                        // which skips the global panic hook — chaos runs
                        // don't spray backtraces over stderr.
                        let inject = chaos_plan
                            .as_ref()
                            .is_some_and(|p| p.die_panics(site.index as u64));
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            if inject {
                                std::panic::resume_unwind(Box::new("chaos: injected die panic"));
                            }
                            run_die_with(spec, *site, setpoints, &mut scratch)
                        }));
                        let out = match caught {
                            Ok(out) => out,
                            Err(_) => {
                                counters.die_panics.fetch_add(1, Ordering::Relaxed);
                                scratch = fresh_scratch(&symbolic_cache);
                                contained_panic_outcome(spec, *site)
                            }
                        };
                        if out
                            .corners
                            .iter()
                            .any(|c| c.failure == Some(FailureKind::BudgetExhausted))
                        {
                            counters.budgets_exhausted.fetch_add(1, Ordering::Relaxed);
                        }
                        account_die(counters, &mut scratch.bench, &out);
                        if tx.send(out).is_err() {
                            break 'claim; // receiver gone: abandon quietly
                        }
                    }
                }
                dropped.fetch_add(scratch.bench.solve.trace.dropped(), Ordering::Relaxed);
            });
        }
        drop(tx);

        // In-order streaming fold. The BTreeMap holds only out-of-order
        // early arrivals; with chunked claiming its size is bounded by
        // roughly threads x CHUNK, not by the wafer.
        let mut buffer: BTreeMap<usize, (DieOutcome, u64)> = BTreeMap::new();
        let mut next = options.start_die;
        'fold: for out in rx {
            let recv_ns = if tracing {
                started.elapsed().as_nanos() as u64
            } else {
                0
            };
            buffer.insert(out.index, (out, recv_ns));
            max_buffer = max_buffer.max(buffer.len());
            while let Some((ready, recv_ns)) = buffer.remove(&next) {
                aggregate.absorb(&ready);
                if let Some(t) = trace.as_mut() {
                    // Die events in index order, then the die's
                    // reorder-buffer wait, with sequence numbers
                    // continuing the die's own stream.
                    let seq = ready.spans.last().map_or(0, |e| e.seq + 1);
                    t.events.extend_from_slice(&ready.spans);
                    let die = ready.index as u32;
                    t.events.push(fold_event(
                        SpanPhase::Begin,
                        SpanKind::QueueWait,
                        die,
                        seq,
                        recv_ns,
                        fold_tid,
                        0,
                    ));
                    t.events.push(fold_event(
                        SpanPhase::End,
                        SpanKind::QueueWait,
                        die,
                        seq + 1,
                        started.elapsed().as_nanos() as u64,
                        fold_tid,
                        buffer.len() as u64,
                    ));
                }
                next += 1;
                if on_die(&ready, &aggregate).is_break() {
                    // Dropping out of the receive loop drops `rx`; the
                    // workers' next send fails and they abandon their
                    // remaining claims. Any dies still in the reorder
                    // buffer stay unfolded — the aggregate stops exactly
                    // at this die boundary.
                    stopped = true;
                    break 'fold;
                }
            }
        }
        debug_assert!(stopped || buffer.is_empty(), "dies missing from the fold");
    });

    if let Some(t) = trace.as_mut() {
        t.dropped = dropped.load(Ordering::Relaxed);
        t.events.push(fold_event(
            SpanPhase::End,
            SpanKind::Campaign,
            NO_DIE,
            1,
            started.elapsed().as_nanos() as u64,
            fold_tid,
            0,
        ));
    }
    let metrics = counters.snapshot(threads, started.elapsed().as_nanos() as u64, max_buffer);
    Ok(CampaignRun {
        spec: spec.clone(),
        aggregate,
        metrics,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, WaferMap};

    fn tiny_spec() -> CampaignSpec {
        let mut s = CampaignSpec::paper_default(WaferMap::full(3, 3), 11);
        s.corners.truncate(1);
        s
    }

    #[test]
    fn rejects_invalid_spec() {
        let mut s = tiny_spec();
        s.corners.clear();
        assert!(run_campaign(&s, 1).is_err());
    }

    #[test]
    fn folds_every_die_exactly_once() {
        let s = tiny_spec();
        let run = run_campaign(&s, 2).unwrap();
        assert_eq!(run.aggregate.dies, 9);
        assert_eq!(run.metrics.dies_started, 9);
        assert_eq!(run.metrics.dies_completed, 9);
        let bins: u64 = run.aggregate.corners[0].bins.iter().sum();
        assert_eq!(bins, 9);
    }

    #[test]
    fn aggregate_is_thread_count_invariant() {
        let s = tiny_spec();
        let one = run_campaign(&s, 1).unwrap();
        let four = run_campaign(&s, 4).unwrap();
        assert_eq!(one.aggregate, four.aggregate);
    }

    #[test]
    fn zero_threads_defaults_to_one_worker() {
        let s = tiny_spec();
        let zero = run_campaign(&s, 0).unwrap();
        let one = run_campaign(&s, 1).unwrap();
        assert_eq!(zero.aggregate, one.aggregate);
        assert_eq!(zero.metrics.threads, 1);
    }

    #[test]
    fn fault_free_run_reports_zero_recovery_activity() {
        let run = run_campaign(&tiny_spec(), 2).unwrap();
        assert_eq!(run.metrics.recovery, Default::default());
        assert!(run.aggregate.quarantine.is_empty());
    }

    #[test]
    fn metrics_record_stage_activity() {
        let s = tiny_spec();
        let run = run_campaign(&s, 1).unwrap();
        for stage in &run.metrics.stages {
            assert_eq!(stage.count, 9, "stage {}", stage.name);
        }
        assert!(run.metrics.dies_per_second > 0.0);
        assert!(run.metrics.max_reorder_buffer >= 1);
    }

    #[test]
    fn streaming_callback_sees_every_die_in_order() {
        let s = tiny_spec();
        let mut seen = Vec::new();
        let run = run_campaign_streaming(&s, 4, &StreamOptions::default(), |die, agg| {
            seen.push(die.index);
            assert_eq!(agg.dies as usize, die.index + 1);
            ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(seen, (0..9).collect::<Vec<_>>());
        assert_eq!(run.aggregate.dies, 9);
    }

    #[test]
    fn break_stops_at_the_exact_die_boundary() {
        let s = tiny_spec();
        for threads in [1, 2, 8] {
            let run = run_campaign_streaming(&s, threads, &StreamOptions::default(), |die, _| {
                if die.index == 3 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
            .unwrap();
            assert_eq!(run.aggregate.dies, 4, "threads={threads}");
        }
    }

    #[test]
    fn sliced_run_equals_uninterrupted_run() {
        let s = tiny_spec();
        let whole = run_campaign(&s, 2).unwrap();
        // Fold dies 0..4 in one engine call, 4..9 in a second that
        // resumes from the first's aggregate — at different thread counts.
        let first = run_campaign_streaming(&s, 1, &StreamOptions::default(), |die, _| {
            if die.index == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })
        .unwrap();
        let resumed = run_campaign_streaming(
            &s,
            4,
            &StreamOptions {
                start_die: 4,
                resume: Some(first.aggregate),
                ..StreamOptions::default()
            },
            |_, _| ControlFlow::Continue(()),
        )
        .unwrap();
        assert_eq!(resumed.aggregate, whole.aggregate);
    }

    #[test]
    fn start_beyond_wafer_is_invalid() {
        let s = tiny_spec();
        let options = StreamOptions {
            start_die: 10,
            ..StreamOptions::default()
        };
        assert!(run_campaign_streaming(&s, 1, &options, |_, _| ControlFlow::Continue(())).is_err());
    }

    #[test]
    fn start_die_boundary_matrix_resumes_and_terminates_cleanly() {
        // 20 dies probes every boundary class: 0 (fresh), claim-chunk
        // multiples (CHUNK = 8), the service's default slice cadence
        // (16), the last die, one-past-the-end (a valid empty resume),
        // and beyond (invalid).
        let mut s = CampaignSpec::paper_default(WaferMap::full(4, 5), 23);
        s.corners.truncate(1);
        let len = s.wafer.die_count();
        assert_eq!(len, 20);
        let whole = run_campaign(&s, 2).unwrap();

        for start in [0usize, 8, 16, len - 1, len] {
            // Build the exact prefix aggregate for dies 0..start.
            let prefix = if start == 0 {
                None
            } else {
                Some(
                    run_campaign_streaming(&s, 1, &StreamOptions::default(), |die, _| {
                        if die.index + 1 == start {
                            ControlFlow::Break(())
                        } else {
                            ControlFlow::Continue(())
                        }
                    })
                    .unwrap()
                    .aggregate,
                )
            };
            let mut seen = Vec::new();
            let resumed = run_campaign_streaming(
                &s,
                2,
                &StreamOptions {
                    start_die: start,
                    resume: prefix,
                    ..StreamOptions::default()
                },
                |die, _| {
                    seen.push(die.index);
                    ControlFlow::Continue(())
                },
            )
            .unwrap();
            assert_eq!(seen, (start..len).collect::<Vec<_>>(), "start={start}");
            assert_eq!(resumed.aggregate, whole.aggregate, "start={start}");
        }

        // start == die count is an *empty* resume, not an error: the
        // aggregate must come back untouched with no dies folded.
        let full = run_campaign(&s, 1).unwrap();
        let empty = run_campaign_streaming(
            &s,
            2,
            &StreamOptions {
                start_die: len,
                resume: Some(full.aggregate.clone()),
                ..StreamOptions::default()
            },
            |_, _| panic!("no die may fold on an empty resume"),
        )
        .unwrap();
        assert_eq!(empty.aggregate, full.aggregate);
        assert_eq!(empty.metrics.dies_started, 0);

        // One past that is a cursor from some other wafer: typed error.
        let err = run_campaign_streaming(
            &s,
            1,
            &StreamOptions {
                start_die: len + 1,
                ..StreamOptions::default()
            },
            |_, _| ControlFlow::Continue(()),
        );
        assert!(err.is_err());
    }

    #[test]
    fn batched_run_equals_scalar_run_at_any_lane_and_thread_count() {
        let s = tiny_spec();
        let scalar = run_campaign_with(
            &s,
            1,
            &RunOptions {
                batch: 1,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(scalar.metrics.batching.batched_solves, 0);
        for lanes in [0usize, 2, 4, 8] {
            for threads in [1usize, 2, 8] {
                let batched = run_campaign_with(
                    &s,
                    threads,
                    &RunOptions {
                        batch: lanes,
                        ..RunOptions::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    batched.aggregate, scalar.aggregate,
                    "lanes={lanes} threads={threads}"
                );
                assert!(
                    batched.metrics.batching.batched_solves > 0,
                    "lanes={lanes}: batching never engaged"
                );
            }
        }
    }

    #[test]
    fn default_run_batches_and_reports_lane_utilization() {
        let run = run_campaign(&tiny_spec(), 2).unwrap();
        let b = &run.metrics.batching;
        assert!(b.batched_solves > 0);
        assert!(b.batch_refills > 0);
        assert!(b.lockstep_rounds > 0);
        assert!(
            b.mean_lanes_active() > 1.0,
            "mean {}",
            b.mean_lanes_active()
        );
        let rounds: u64 = b.lanes_active.iter().sum();
        assert_eq!(rounds, b.lockstep_rounds);
    }

    #[test]
    fn cold_spec_falls_back_to_the_scalar_path() {
        let mut s = tiny_spec();
        s.warm_start = false;
        let run = run_campaign(&s, 2).unwrap();
        assert_eq!(run.metrics.batching.batched_solves, 0);
        assert_eq!(run.metrics.batching.batch_refills, 0);
    }

    #[test]
    fn injected_die_panics_are_contained_and_thread_invariant() {
        let s = tiny_spec();
        let options = RunOptions {
            chaos: ChaosSpec {
                die_panic_probability: 0.5,
                ..ChaosSpec::none()
            },
            chaos_seed: 7,
            ..RunOptions::default()
        };
        let one = run_campaign_with(&s, 1, &options).unwrap();
        let panicked = one.metrics.containment.die_panics;
        assert!(
            panicked > 0 && panicked < 9,
            "p=0.5 over 9 dies should contain some but not all: {panicked}"
        );
        // Panicked dies retire as InternalPanic quarantine records...
        let recorded = one
            .aggregate
            .quarantine
            .iter()
            .filter(|r| r.kind == FailureKind::InternalPanic)
            .count() as u64;
        assert_eq!(recorded, panicked);
        // ...and the verdict is keyed by die index, so the aggregate is
        // identical at any thread count.
        let eight = run_campaign_with(&s, 8, &options).unwrap();
        assert_eq!(one.aggregate, eight.aggregate);
        assert_eq!(eight.metrics.containment.die_panics, panicked);
        // Zero probability is a structural no-op: bit-identical to a run
        // with no chaos at all.
        let plain = run_campaign(&s, 2).unwrap();
        let zeroed = run_campaign_with(
            &s,
            2,
            &RunOptions {
                chaos_seed: 7,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plain.aggregate, zeroed.aggregate);
        assert_eq!(zeroed.metrics.containment.die_panics, 0);
    }

    #[test]
    fn die_budget_retires_runaway_corners_deterministically() {
        let mut s = CampaignSpec::paper_default(WaferMap::full(3, 3), 11);
        s.corners.truncate(3);
        let options = RunOptions {
            budget: DieBudget {
                max_newton_iterations: 1,
                max_wall_ms: 0,
            },
            ..RunOptions::default()
        };
        let one = run_campaign_with(&s, 1, &options).unwrap();
        // One Newton iteration can never finish a die's first corner
        // without tripping the budget, so every die loses its later
        // corners — but the first corner always completes.
        assert_eq!(one.metrics.containment.budgets_exhausted, 9);
        let retired = one
            .aggregate
            .quarantine
            .iter()
            .filter(|r| r.kind == FailureKind::BudgetExhausted)
            .count();
        assert_eq!(retired, 9 * 2, "corners after the overrun are retired");
        // Iteration budgets force the scalar path and key off per-die
        // solver work: the verdict is thread-count invariant.
        let eight = run_campaign_with(&s, 8, &options).unwrap();
        assert_eq!(one.aggregate, eight.aggregate);
        // An unlimited budget is bit-identical to no budget at all.
        let plain = run_campaign(&s, 2).unwrap();
        let unlimited = run_campaign_with(&s, 2, &RunOptions::default()).unwrap();
        assert_eq!(plain.aggregate, unlimited.aggregate);
    }

    #[test]
    fn invalid_chaos_spec_is_rejected_before_any_thread_spawns() {
        let s = tiny_spec();
        let options = RunOptions {
            chaos: ChaosSpec {
                die_panic_probability: 1.5,
                ..ChaosSpec::none()
            },
            ..RunOptions::default()
        };
        assert!(run_campaign_with(&s, 2, &options).is_err());
    }

    #[test]
    fn shared_symbolic_cache_does_not_perturb_results() {
        let s = tiny_spec();
        let plain = run_campaign(&s, 2).unwrap();
        let cache = std::sync::Arc::new(icvbe_spice::cache::SymbolicCache::default());
        let options = StreamOptions {
            symbolic_cache: Some(std::sync::Arc::clone(&cache)),
            ..StreamOptions::default()
        };
        let cached =
            run_campaign_streaming(&s, 2, &options, |_, _| ControlFlow::Continue(())).unwrap();
        assert_eq!(cached.aggregate, plain.aggregate);
        assert!(cache.hits() + cache.misses() > 0);
    }
}
