//! The pure-`std` worker pool and the in-order streaming fold.
//!
//! Dies are claimed in fixed-size chunks off an `Arc<AtomicUsize>` cursor
//! (cheap work stealing: a fast thread simply claims more chunks), each
//! die runs its referentially transparent pipeline, and outcomes stream
//! over an `mpsc` channel back to the caller's thread. There they pass
//! through a reorder buffer that releases dies **in index order** into the
//! [`CampaignAggregate`] — so the floating-point fold is identical no
//! matter which thread finished first, and memory stays bounded by the
//! pool's out-of-order window rather than the die count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use icvbe_trace::{SpanKind, SpanPhase, Trace, TraceEvent, NO_DIE};

use crate::aggregate::{CampaignAggregate, YieldBin};
use crate::die::{run_die_with, DieOutcome, DieScratch};
use crate::metrics::{
    CampaignCounters, CampaignMetrics, STAGE_EXTRACT, STAGE_MEASURE, STAGE_SAMPLE,
};
use crate::spec::CampaignSpec;
use crate::CampaignError;

/// Dies claimed per cursor bump. Small enough to balance a straggling
/// thread, large enough that the atomic is off the hot path.
const CHUNK: usize = 8;

/// A finished campaign: the deterministic aggregate plus the run's
/// (non-deterministic) observability snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRun {
    /// The spec the run executed.
    pub spec: CampaignSpec,
    /// Streaming aggregate, identical for any thread count.
    pub aggregate: CampaignAggregate,
    /// Counters, throughput and stage histograms of this particular run.
    pub metrics: CampaignMetrics,
    /// Structured span trace, present iff [`RunOptions::trace`] was set.
    /// Logical span order is deterministic (die-index order, per-die
    /// sequence numbers); only timestamps/worker ids vary run to run.
    pub trace: Option<Trace>,
}

/// Knobs of [`run_campaign_with`] beyond the spec itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Capture a structured span trace of the run into
    /// [`CampaignRun::trace`]. Off by default; when off the tracing layer
    /// is a no-op sink — no events, no extra clock reads, no allocations
    /// on the die hot path.
    pub trace: bool,
}

/// Runs `spec` across `threads` worker threads.
///
/// # Degenerate inputs
///
/// - `threads == 0` is clamped to 1 (a sensible default, not an error:
///   callers computing `available_parallelism - k` shouldn't crash a
///   campaign over an undersubscribed box).
/// - An empty wafer map or a collapsed temperature plan is rejected by
///   [`CampaignSpec::validate`] as [`CampaignError::InvalidSpec`] before
///   any thread spawns.
///
/// # Errors
///
/// Only [`CampaignError::InvalidSpec`]: per-die failures are binned as
/// [`YieldBin::SolveFail`], never raised.
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> Result<CampaignRun, CampaignError> {
    run_campaign_with(spec, threads, &RunOptions::default())
}

/// A fold-thread record: the campaign root span and the per-die
/// queue-wait spans are emitted by the folding thread, not a worker.
fn fold_event(
    phase: SpanPhase,
    kind: SpanKind,
    die: u32,
    seq: u32,
    ts_ns: u64,
    worker: u32,
    n0: u64,
) -> TraceEvent {
    TraceEvent {
        phase,
        kind,
        die,
        corner: -1,
        attempt: -1,
        label: "",
        seq,
        ts_ns,
        worker,
        n0,
        n1: 0,
    }
}

/// [`run_campaign`] with explicit [`RunOptions`]. With tracing requested,
/// every worker's span buffer shares the campaign epoch, each die's
/// records travel back with its outcome, and the fold thread merges them
/// in **die-index order** — bracketed by a campaign root span and
/// interleaved with one `queue_wait` span per die recording its
/// reorder-buffer latency — so the logical event stream is identical at
/// any thread count.
///
/// # Errors
///
/// Same contract as [`run_campaign`]: only [`CampaignError::InvalidSpec`].
pub fn run_campaign_with(
    spec: &CampaignSpec,
    threads: usize,
    options: &RunOptions,
) -> Result<CampaignRun, CampaignError> {
    spec.validate()?;
    let sites = spec.wafer.sites();
    // Campaign-invariant work hoisted out of the per-die loop: the
    // setpoint list is computed once here, not once per corner per die.
    let setpoints = spec.plan.setpoints();
    let threads = threads.max(1);
    let counters = CampaignCounters::default();
    let cursor = Arc::new(AtomicUsize::new(0));
    let tracing = options.trace;
    let dropped = AtomicU64::new(0);
    // The fold thread's `tid` in exported traces: one past the workers.
    let fold_tid = threads as u32;
    let started = Instant::now();

    let mut aggregate = CampaignAggregate::new(spec);
    let mut max_buffer = 0usize;
    let mut trace = tracing.then(Trace::default);
    if let Some(t) = trace.as_mut() {
        t.events.push(fold_event(
            SpanPhase::Begin,
            SpanKind::Campaign,
            NO_DIE,
            0,
            0,
            fold_tid,
            0,
        ));
    }

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<DieOutcome>();
        for worker in 0..threads {
            let tx = tx.clone();
            let cursor = Arc::clone(&cursor);
            let sites = &sites;
            let setpoints = &setpoints;
            let counters = &counters;
            let dropped = &dropped;
            scope.spawn(move || {
                // One scratch per worker thread: solver buffers reach a
                // steady state after the first die and are reused for
                // every die the thread claims.
                let mut scratch = DieScratch::new();
                if tracing {
                    scratch.bench.solve.trace.enable(started, worker as u32);
                }
                'claim: loop {
                    let base = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if base >= sites.len() {
                        break;
                    }
                    let end = (base + CHUNK).min(sites.len());
                    for site in &sites[base..end] {
                        counters.started.fetch_add(1, Ordering::Relaxed);
                        let out = run_die_with(spec, *site, setpoints, &mut scratch);
                        let (stats, selfheat) = scratch.bench.take_counters();
                        counters.record_die_solver(&stats, selfheat);
                        counters.stages[STAGE_SAMPLE].record_ns(out.timing.sample_ns);
                        counters.stages[STAGE_MEASURE].record_ns(out.timing.measure_ns);
                        counters.stages[STAGE_EXTRACT].record_ns(out.timing.extract_ns);
                        counters.completed.fetch_add(1, Ordering::Relaxed);
                        if out.corners.iter().any(|c| c.bin == YieldBin::SolveFail) {
                            counters.failed.fetch_add(1, Ordering::Relaxed);
                        }
                        let mut retried = 0u64;
                        let mut recovered = 0u64;
                        let mut robust = 0u64;
                        let mut quarantined = 0u64;
                        let mut by_kind = [0u64; 5];
                        for c in &out.corners {
                            retried += u64::from(c.attempts > 1);
                            robust += u64::from(c.robust_recovery);
                            quarantined += u64::from(c.failure.is_some());
                            if let Some(kind) = c.recovered_from {
                                recovered += 1;
                                by_kind[kind.index()] += 1;
                            }
                        }
                        if retried + recovered + robust + quarantined > 0 {
                            counters.record_die_recovery(
                                retried,
                                recovered,
                                robust,
                                quarantined,
                                &by_kind,
                            );
                        }
                        if tx.send(out).is_err() {
                            break 'claim; // receiver gone: abandon quietly
                        }
                    }
                }
                dropped.fetch_add(scratch.bench.solve.trace.dropped(), Ordering::Relaxed);
            });
        }
        drop(tx);

        // In-order streaming fold. The BTreeMap holds only out-of-order
        // early arrivals; with chunked claiming its size is bounded by
        // roughly threads x CHUNK, not by the wafer.
        let mut buffer: BTreeMap<usize, (DieOutcome, u64)> = BTreeMap::new();
        let mut next = 0usize;
        for out in rx {
            let recv_ns = if tracing {
                started.elapsed().as_nanos() as u64
            } else {
                0
            };
            buffer.insert(out.index, (out, recv_ns));
            max_buffer = max_buffer.max(buffer.len());
            while let Some((ready, recv_ns)) = buffer.remove(&next) {
                aggregate.absorb(&ready);
                if let Some(t) = trace.as_mut() {
                    // Die events in index order, then the die's
                    // reorder-buffer wait, with sequence numbers
                    // continuing the die's own stream.
                    let seq = ready.spans.last().map_or(0, |e| e.seq + 1);
                    t.events.extend_from_slice(&ready.spans);
                    let die = ready.index as u32;
                    t.events.push(fold_event(
                        SpanPhase::Begin,
                        SpanKind::QueueWait,
                        die,
                        seq,
                        recv_ns,
                        fold_tid,
                        0,
                    ));
                    t.events.push(fold_event(
                        SpanPhase::End,
                        SpanKind::QueueWait,
                        die,
                        seq + 1,
                        started.elapsed().as_nanos() as u64,
                        fold_tid,
                        buffer.len() as u64,
                    ));
                }
                next += 1;
            }
        }
        debug_assert!(buffer.is_empty(), "dies missing from the fold");
    });

    if let Some(t) = trace.as_mut() {
        t.dropped = dropped.load(Ordering::Relaxed);
        t.events.push(fold_event(
            SpanPhase::End,
            SpanKind::Campaign,
            NO_DIE,
            1,
            started.elapsed().as_nanos() as u64,
            fold_tid,
            0,
        ));
    }
    let metrics = counters.snapshot(threads, started.elapsed().as_nanos() as u64, max_buffer);
    Ok(CampaignRun {
        spec: spec.clone(),
        aggregate,
        metrics,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, WaferMap};

    fn tiny_spec() -> CampaignSpec {
        let mut s = CampaignSpec::paper_default(WaferMap::full(3, 3), 11);
        s.corners.truncate(1);
        s
    }

    #[test]
    fn rejects_invalid_spec() {
        let mut s = tiny_spec();
        s.corners.clear();
        assert!(run_campaign(&s, 1).is_err());
    }

    #[test]
    fn folds_every_die_exactly_once() {
        let s = tiny_spec();
        let run = run_campaign(&s, 2).unwrap();
        assert_eq!(run.aggregate.dies, 9);
        assert_eq!(run.metrics.dies_started, 9);
        assert_eq!(run.metrics.dies_completed, 9);
        let bins: u64 = run.aggregate.corners[0].bins.iter().sum();
        assert_eq!(bins, 9);
    }

    #[test]
    fn aggregate_is_thread_count_invariant() {
        let s = tiny_spec();
        let one = run_campaign(&s, 1).unwrap();
        let four = run_campaign(&s, 4).unwrap();
        assert_eq!(one.aggregate, four.aggregate);
    }

    #[test]
    fn zero_threads_defaults_to_one_worker() {
        let s = tiny_spec();
        let zero = run_campaign(&s, 0).unwrap();
        let one = run_campaign(&s, 1).unwrap();
        assert_eq!(zero.aggregate, one.aggregate);
        assert_eq!(zero.metrics.threads, 1);
    }

    #[test]
    fn fault_free_run_reports_zero_recovery_activity() {
        let run = run_campaign(&tiny_spec(), 2).unwrap();
        assert_eq!(run.metrics.recovery, Default::default());
        assert!(run.aggregate.quarantine.is_empty());
    }

    #[test]
    fn metrics_record_stage_activity() {
        let s = tiny_spec();
        let run = run_campaign(&s, 1).unwrap();
        for stage in &run.metrics.stages {
            assert_eq!(stage.count, 9, "stage {}", stage.name);
        }
        assert!(run.metrics.dies_per_second > 0.0);
        assert!(run.metrics.max_reorder_buffer >= 1);
    }
}
