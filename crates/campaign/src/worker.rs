//! The pure-`std` worker pool and the in-order streaming fold.
//!
//! Dies are claimed in fixed-size chunks off an `Arc<AtomicUsize>` cursor
//! (cheap work stealing: a fast thread simply claims more chunks), each
//! die runs its referentially transparent pipeline, and outcomes stream
//! over an `mpsc` channel back to the caller's thread. There they pass
//! through a reorder buffer that releases dies **in index order** into the
//! [`CampaignAggregate`] — so the floating-point fold is identical no
//! matter which thread finished first, and memory stays bounded by the
//! pool's out-of-order window rather than the die count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use crate::aggregate::{CampaignAggregate, YieldBin};
use crate::die::{run_die_with, DieOutcome, DieScratch};
use crate::metrics::{
    CampaignCounters, CampaignMetrics, STAGE_EXTRACT, STAGE_MEASURE, STAGE_SAMPLE,
};
use crate::spec::CampaignSpec;
use crate::CampaignError;

/// Dies claimed per cursor bump. Small enough to balance a straggling
/// thread, large enough that the atomic is off the hot path.
const CHUNK: usize = 8;

/// A finished campaign: the deterministic aggregate plus the run's
/// (non-deterministic) observability snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRun {
    /// The spec the run executed.
    pub spec: CampaignSpec,
    /// Streaming aggregate, identical for any thread count.
    pub aggregate: CampaignAggregate,
    /// Counters, throughput and stage histograms of this particular run.
    pub metrics: CampaignMetrics,
}

/// Runs `spec` across `threads` worker threads.
///
/// # Degenerate inputs
///
/// - `threads == 0` is clamped to 1 (a sensible default, not an error:
///   callers computing `available_parallelism - k` shouldn't crash a
///   campaign over an undersubscribed box).
/// - An empty wafer map or a collapsed temperature plan is rejected by
///   [`CampaignSpec::validate`] as [`CampaignError::InvalidSpec`] before
///   any thread spawns.
///
/// # Errors
///
/// Only [`CampaignError::InvalidSpec`]: per-die failures are binned as
/// [`YieldBin::SolveFail`], never raised.
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> Result<CampaignRun, CampaignError> {
    spec.validate()?;
    let sites = spec.wafer.sites();
    // Campaign-invariant work hoisted out of the per-die loop: the
    // setpoint list is computed once here, not once per corner per die.
    let setpoints = spec.plan.setpoints();
    let threads = threads.max(1);
    let counters = CampaignCounters::default();
    let cursor = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();

    let mut aggregate = CampaignAggregate::new(spec);
    let mut max_buffer = 0usize;

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<DieOutcome>();
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = Arc::clone(&cursor);
            let sites = &sites;
            let setpoints = &setpoints;
            let counters = &counters;
            scope.spawn(move || {
                // One scratch per worker thread: solver buffers reach a
                // steady state after the first die and are reused for
                // every die the thread claims.
                let mut scratch = DieScratch::new();
                loop {
                    let base = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if base >= sites.len() {
                        break;
                    }
                    let end = (base + CHUNK).min(sites.len());
                    for site in &sites[base..end] {
                        counters.started.fetch_add(1, Ordering::Relaxed);
                        let out = run_die_with(spec, *site, setpoints, &mut scratch);
                        let (stats, selfheat) = scratch.bench.take_counters();
                        counters.record_die_solver(
                            stats.solves,
                            stats.newton_iterations,
                            stats.warm_starts,
                            stats.cold_starts,
                            selfheat,
                        );
                        counters.stages[STAGE_SAMPLE].record_ns(out.timing.sample_ns);
                        counters.stages[STAGE_MEASURE].record_ns(out.timing.measure_ns);
                        counters.stages[STAGE_EXTRACT].record_ns(out.timing.extract_ns);
                        counters.completed.fetch_add(1, Ordering::Relaxed);
                        if out.corners.iter().any(|c| c.bin == YieldBin::SolveFail) {
                            counters.failed.fetch_add(1, Ordering::Relaxed);
                        }
                        let mut retried = 0u64;
                        let mut recovered = 0u64;
                        let mut robust = 0u64;
                        let mut quarantined = 0u64;
                        let mut by_kind = [0u64; 5];
                        for c in &out.corners {
                            retried += u64::from(c.attempts > 1);
                            robust += u64::from(c.robust_recovery);
                            quarantined += u64::from(c.failure.is_some());
                            if let Some(kind) = c.recovered_from {
                                recovered += 1;
                                by_kind[kind.index()] += 1;
                            }
                        }
                        if retried + recovered + robust + quarantined > 0 {
                            counters.record_die_recovery(
                                retried,
                                recovered,
                                robust,
                                quarantined,
                                &by_kind,
                            );
                        }
                        if tx.send(out).is_err() {
                            return; // receiver gone: abandon quietly
                        }
                    }
                }
            });
        }
        drop(tx);

        // In-order streaming fold. The BTreeMap holds only out-of-order
        // early arrivals; with chunked claiming its size is bounded by
        // roughly threads x CHUNK, not by the wafer.
        let mut buffer: BTreeMap<usize, DieOutcome> = BTreeMap::new();
        let mut next = 0usize;
        for out in rx {
            buffer.insert(out.index, out);
            max_buffer = max_buffer.max(buffer.len());
            while let Some(ready) = buffer.remove(&next) {
                aggregate.absorb(&ready);
                next += 1;
            }
        }
        debug_assert!(buffer.is_empty(), "dies missing from the fold");
    });

    let metrics = counters.snapshot(threads, started.elapsed().as_nanos() as u64, max_buffer);
    Ok(CampaignRun {
        spec: spec.clone(),
        aggregate,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, WaferMap};

    fn tiny_spec() -> CampaignSpec {
        let mut s = CampaignSpec::paper_default(WaferMap::full(3, 3), 11);
        s.corners.truncate(1);
        s
    }

    #[test]
    fn rejects_invalid_spec() {
        let mut s = tiny_spec();
        s.corners.clear();
        assert!(run_campaign(&s, 1).is_err());
    }

    #[test]
    fn folds_every_die_exactly_once() {
        let s = tiny_spec();
        let run = run_campaign(&s, 2).unwrap();
        assert_eq!(run.aggregate.dies, 9);
        assert_eq!(run.metrics.dies_started, 9);
        assert_eq!(run.metrics.dies_completed, 9);
        let bins: u64 = run.aggregate.corners[0].bins.iter().sum();
        assert_eq!(bins, 9);
    }

    #[test]
    fn aggregate_is_thread_count_invariant() {
        let s = tiny_spec();
        let one = run_campaign(&s, 1).unwrap();
        let four = run_campaign(&s, 4).unwrap();
        assert_eq!(one.aggregate, four.aggregate);
    }

    #[test]
    fn zero_threads_defaults_to_one_worker() {
        let s = tiny_spec();
        let zero = run_campaign(&s, 0).unwrap();
        let one = run_campaign(&s, 1).unwrap();
        assert_eq!(zero.aggregate, one.aggregate);
        assert_eq!(zero.metrics.threads, 1);
    }

    #[test]
    fn fault_free_run_reports_zero_recovery_activity() {
        let run = run_campaign(&tiny_spec(), 2).unwrap();
        assert_eq!(run.metrics.recovery, Default::default());
        assert!(run.aggregate.quarantine.is_empty());
    }

    #[test]
    fn metrics_record_stage_activity() {
        let s = tiny_spec();
        let run = run_campaign(&s, 1).unwrap();
        for stage in &run.metrics.stages {
            assert_eq!(stage.count, 9, "stage {}", stage.name);
        }
        assert!(run.metrics.dies_per_second > 0.0);
        assert!(run.metrics.max_reorder_buffer >= 1);
    }
}
