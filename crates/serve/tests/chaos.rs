//! Environment-fault drills over real sockets and real checkpoint files:
//! the adversarial protocol sweep (garbage, truncation, oversized lines),
//! chaos-injected checkpoint write faults, and the crash matrix — a
//! daemon interrupted mid-job with its newest checkpoint torn, restarted
//! at several thread counts, must either resume byte-identically from the
//! rotated last-good slot or count the loss explicitly.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use icvbe_campaign::json::Json;
use icvbe_campaign::report::{aggregate_csv, aggregate_json, quarantine_csv, quarantine_json};
use icvbe_campaign::spec::{CampaignSpec, WaferMap};
use icvbe_campaign::{run_campaign, CampaignRun};
use icvbe_instrument::chaos::ChaosSpec;
use icvbe_serve::client::Client;
use icvbe_serve::daemon::Daemon;
use icvbe_serve::service::ServiceConfig;

/// A small single-corner campaign (same shape as the e2e suite).
fn spec(rows: usize, seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::paper_default(WaferMap::full(rows, rows), seed);
    spec.corners.truncate(1);
    spec
}

/// The four deterministic report artifacts of a one-shot run.
fn golden(spec: &CampaignSpec) -> [(String, String); 4] {
    let run: CampaignRun = run_campaign(spec, 2).expect("one-shot run");
    [
        ("campaign_aggregate.json".to_string(), aggregate_json(&run)),
        ("campaign_aggregate.csv".to_string(), aggregate_csv(&run)),
        (
            "campaign_quarantine.json".to_string(),
            quarantine_json(&run),
        ),
        ("campaign_quarantine.csv".to_string(), quarantine_csv(&run)),
    ]
}

fn assert_matches_golden(artifacts: &[(String, String)], golden: &[(String, String); 4]) {
    for (name, want) in golden {
        let got = artifacts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
            .unwrap_or_else(|| panic!("artifact {name} missing from the stream"));
        assert_eq!(got, want, "{name} differs from the one-shot run");
    }
}

/// Sends one raw line and reads one reply line.
fn raw_round_trip(addr: std::net::SocketAddr, line: &[u8]) -> String {
    let mut socket = TcpStream::connect(addr).expect("connect");
    socket.write_all(line).expect("send");
    let mut reply = String::new();
    BufReader::new(socket.try_clone().expect("clone"))
        .read_line(&mut reply)
        .expect("reply");
    reply
}

#[test]
fn adversarial_lines_earn_typed_errors_and_never_kill_the_daemon() {
    let config = ServiceConfig {
        max_request_bytes: 256,
        ..ServiceConfig::default()
    };
    let daemon = Daemon::start(config, "127.0.0.1:0").expect("daemon");
    let addr = daemon.local_addr();

    // An endless line (no newline anywhere) must be cut at the cap with a
    // typed rejection, not buffered until the daemon falls over.
    let oversized = vec![b'x'; 4096];
    let reply = raw_round_trip(addr, &oversized);
    assert!(
        reply.contains("\"error\":\"request_too_large\""),
        "reply: {reply}"
    );

    // Binary garbage decodes lossily into a typed bad_request.
    let mut garbage: Vec<u8> = vec![0xFF, 0xFE, 0x00, 0x80, 0xC3, 0x28];
    garbage.push(b'\n');
    let reply = raw_round_trip(addr, &garbage);
    assert!(
        reply.contains("\"error\":\"bad_request\""),
        "reply: {reply}"
    );

    // A request truncated mid-token (client died mid-send).
    let reply = raw_round_trip(addr, b"{\"cmd\":\"hel\n");
    assert!(
        reply.contains("\"error\":\"bad_request\""),
        "reply: {reply}"
    );

    // Right shape, wrong types.
    let reply = raw_round_trip(addr, b"{\"cmd\":\"hello\",\"version\":\"one\"}\n");
    assert!(
        reply.contains("\"error\":\"bad_request\""),
        "reply: {reply}"
    );

    // A client that connects and immediately disconnects without a byte.
    drop(TcpStream::connect(addr).expect("connect"));

    // Oversized line *after* a valid handshake closes with the same typed
    // error instead of poisoning the parsed stream.
    {
        let mut socket = TcpStream::connect(addr).expect("connect");
        socket
            .write_all(b"{\"cmd\":\"hello\",\"version\":1}\n")
            .expect("send hello");
        let mut reader = BufReader::new(socket.try_clone().expect("clone"));
        let mut hello = String::new();
        reader.read_line(&mut hello).expect("hello reply");
        assert!(hello.contains("\"type\":\"hello\""), "reply: {hello}");
        socket.write_all(&vec![b'y'; 4096]).expect("send flood");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        assert!(
            reply.contains("\"error\":\"request_too_large\""),
            "reply: {reply}"
        );
    }

    // After the whole sweep the daemon still answers a real client (a
    // submit line would exceed this test's tiny cap, so poll status), and
    // the adversity was counted.
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let status = client.status().expect("status");
    assert_eq!(status.get("ok").and_then(Json::as_bool), Some(true));
    let stats = daemon.service().stats();
    assert!(stats.oversized >= 2, "oversized not counted: {stats:?}");

    daemon.stop();
}

#[test]
fn chaos_socket_reset_drops_the_connection_before_a_byte() {
    let config = ServiceConfig {
        chaos: ChaosSpec {
            reset_probability: 1.0,
            ..ChaosSpec::none()
        },
        chaos_seed: 3,
        ..ServiceConfig::default()
    };
    let daemon = Daemon::start(config, "127.0.0.1:0").expect("daemon");
    let addr = daemon.local_addr();

    // Every connection is reset up front: the client sees a clean close
    // (or a reset error), never a partial protocol reply.
    let mut socket = TcpStream::connect(addr).expect("connect");
    socket
        .write_all(b"{\"cmd\":\"hello\",\"version\":1}\n")
        .expect("send");
    let mut buf = Vec::new();
    let got = socket.read_to_end(&mut buf).map(|_| buf.len());
    assert!(
        matches!(got, Ok(0) | Err(_)),
        "expected an abrupt close, got {got:?} ({buf:?})"
    );

    // The daemon can still be stopped from the host side.
    daemon.stop();
}

#[test]
fn stale_tmp_checkpoints_are_swept_and_counted_at_startup() {
    let ckdir = std::env::temp_dir().join("icvbe_serve_chaos_tmp_sweep");
    let _ = std::fs::remove_dir_all(&ckdir);
    std::fs::create_dir_all(&ckdir).expect("mkdir");
    std::fs::write(ckdir.join("job-3.json.tmp"), b"{\"torn\":").expect("tmp");

    let config = ServiceConfig {
        checkpoint_dir: Some(ckdir.clone()),
        ..ServiceConfig::default()
    };
    let daemon = Daemon::start(config, "127.0.0.1:0").expect("daemon");
    let stats = daemon.service().stats();
    assert_eq!(stats.tmp_swept, 1, "stale tmp must be counted: {stats:?}");
    assert_eq!(stats.resumed, 0);
    assert!(
        !ckdir.join("job-3.json.tmp").exists(),
        "stale tmp must be deleted"
    );

    daemon.stop();
    let _ = std::fs::remove_dir_all(&ckdir);
}

#[test]
fn unreadable_checkpoints_are_dropped_and_counted_not_fatal() {
    let ckdir = std::env::temp_dir().join("icvbe_serve_chaos_both_corrupt");
    let _ = std::fs::remove_dir_all(&ckdir);
    std::fs::create_dir_all(&ckdir).expect("mkdir");
    // Both slots corrupt: garbage primary, torn prev.
    std::fs::write(ckdir.join("job-9.json"), b"not json at all").expect("primary");
    std::fs::write(ckdir.join("job-9.prev.json"), b"{\"schema\":").expect("prev");

    let config = ServiceConfig {
        checkpoint_dir: Some(ckdir.clone()),
        ..ServiceConfig::default()
    };
    let daemon = Daemon::start(config, "127.0.0.1:0").expect("daemon");
    let stats = daemon.service().stats();
    assert_eq!(stats.resumed, 0);
    assert_eq!(
        stats.dropped_corrupt, 1,
        "the lost job must be counted: {stats:?}"
    );

    // The daemon is healthy: a fresh submit runs to completion.
    let spec = spec(2, 11);
    let want = golden(&spec);
    let mut client = Client::connect(&daemon.local_addr().to_string()).expect("connect");
    client.submit("acme", "fresh", &spec, true).expect("submit");
    let artifacts = client.wait_done(|_, _| {}).expect("job");
    assert_matches_golden(&artifacts, &want);

    daemon.stop();
    let _ = std::fs::remove_dir_all(&ckdir);
}

#[test]
fn checkpoint_write_faults_degrade_gracefully_and_are_counted() {
    // Every checkpoint write fails (EIO/ENOSPC territory): the job must
    // still complete with byte-identical artifacts, and every failed
    // write must be counted in the job's metrics artifact.
    let spec = spec(3, 0xD1E5);
    let want = golden(&spec);
    let ckdir = std::env::temp_dir().join("icvbe_serve_chaos_write_faults");
    let _ = std::fs::remove_dir_all(&ckdir);

    let config = ServiceConfig {
        threads: 2,
        slice_dies: 2,
        checkpoint_every: 1,
        checkpoint_dir: Some(ckdir.clone()),
        chaos: ChaosSpec {
            write_error_probability: 1.0,
            ..ChaosSpec::none()
        },
        chaos_seed: 77,
        ..ServiceConfig::default()
    };
    let daemon = Daemon::start(config, "127.0.0.1:0").expect("daemon");

    let mut client = Client::connect(&daemon.local_addr().to_string()).expect("connect");
    client.submit("acme", "lossy", &spec, true).expect("submit");
    let artifacts = client.wait_done(|_, _| {}).expect("job");
    assert_matches_golden(&artifacts, &want);

    let metrics = artifacts
        .iter()
        .find(|(n, _)| n == "campaign_metrics.json")
        .map(|(_, t)| t)
        .expect("metrics artifact");
    let v = icvbe_campaign::json::parse(metrics).expect("metrics json");
    let write_errors = v
        .get("containment")
        .and_then(|c| c.get("checkpoint_write_errors"))
        .and_then(Json::as_u64)
        .expect("containment section");
    assert!(
        write_errors > 0,
        "failed checkpoint writes must be counted:\n{metrics}"
    );

    daemon.stop();
    let _ = std::fs::remove_dir_all(&ckdir);
}

/// The crash matrix: interrupt a checkpointed job mid-flight, tear the
/// tail off its newest checkpoint (exactly what a crash mid-`write(2)`
/// leaves after the rename), and restart at `threads` workers. The
/// daemon must fall back to the rotated `.prev.json` slot, count the
/// fallback, and still deliver artifacts byte-identical to an
/// uninterrupted one-shot run.
fn torn_checkpoint_resume_at(threads: usize, seed: u64) {
    let spec = spec(5, seed);
    let want = golden(&spec);
    let ckdir = std::env::temp_dir().join(format!("icvbe_serve_chaos_torn_t{threads}"));
    let _ = std::fs::remove_dir_all(&ckdir);

    let config = ServiceConfig {
        threads,
        slice_dies: 2,
        checkpoint_every: 1,
        checkpoint_dir: Some(ckdir.clone()),
        ..ServiceConfig::default()
    };
    let first = Daemon::start(config.clone(), "127.0.0.1:0").expect("daemon 1");
    let addr = first.local_addr().to_string();

    let submit_addr = addr.clone();
    let submit_spec = spec.clone();
    let streamer = std::thread::spawn(move || {
        let mut c = Client::connect(&submit_addr).expect("connect");
        c.submit("acme", "torn", &submit_spec, true)
            .expect("submit");
        c.wait_done(|_, _| {})
    });

    // Wait until at least two checkpoint generations exist (folded >= two
    // slices), so the `.prev.json` slot is populated, then stop.
    let mut monitor = Client::connect(&addr).expect("monitor");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "job never made progress");
        let status = monitor.status().expect("status");
        let folded = status
            .get("jobs")
            .and_then(Json::as_arr)
            .and_then(|jobs| jobs.first())
            .and_then(|j| j.get("folded"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if folded >= 4 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    first.stop();
    if streamer.join().expect("streamer thread").is_ok() {
        // The job finished before the stop landed; nothing to resume.
        let _ = std::fs::remove_dir_all(&ckdir);
        return;
    }

    // Tear the tail off the newest checkpoint: the checksum no longer
    // verifies, so the primary slot must be rejected on load.
    let primary = ckdir.join("job-1.json");
    let bytes = std::fs::read(&primary).expect("primary checkpoint");
    assert!(
        ckdir.join("job-1.prev.json").exists(),
        "two generations must leave a rotated slot"
    );
    std::fs::write(&primary, &bytes[..bytes.len() - 17]).expect("tear tail");

    let second = Daemon::start(config, "127.0.0.1:0").expect("daemon 2");
    let stats = second.service().stats();
    assert_eq!(stats.resumed, 1, "job must resume from .prev: {stats:?}");
    assert_eq!(
        stats.resumed_fallback, 1,
        "the fallback must be counted: {stats:?}"
    );
    assert_eq!(stats.dropped_corrupt, 0);

    let mut watcher = Client::connect(&second.local_addr().to_string()).expect("connect");
    watcher
        .results(None, Some("torn"), Some("acme"))
        .expect("results");
    let artifacts = watcher.wait_done(|_, _| {}).expect("resumed job");
    assert_matches_golden(&artifacts, &want);

    // The degradation is also visible in the job's own metrics artifact.
    let metrics = artifacts
        .iter()
        .find(|(n, _)| n == "campaign_metrics.json")
        .map(|(_, t)| t)
        .expect("metrics artifact");
    let v = icvbe_campaign::json::parse(metrics).expect("metrics json");
    let fallbacks = v
        .get("containment")
        .and_then(|c| c.get("checkpoint_generation_fallbacks"))
        .and_then(Json::as_u64)
        .expect("containment section");
    assert_eq!(fallbacks, 1, "metrics:\n{metrics}");

    second.stop();
    let _ = std::fs::remove_dir_all(&ckdir);
}

#[test]
fn torn_checkpoint_resumes_from_prev_slot_single_thread() {
    torn_checkpoint_resume_at(1, 0x7EA1);
}

#[test]
fn torn_checkpoint_resumes_from_prev_slot_two_threads() {
    torn_checkpoint_resume_at(2, 0x7EA2);
}

#[test]
fn torn_checkpoint_resumes_from_prev_slot_eight_threads() {
    torn_checkpoint_resume_at(8, 0x7EA8);
}
