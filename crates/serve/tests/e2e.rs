//! End-to-end tests of the campaign service over real TCP sockets: the
//! version handshake, byte-identical streamed results, fair round-robin
//! scheduling across tenants, `queue_full` backpressure, and a daemon
//! restart that resumes from checkpoint files.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use icvbe_campaign::json::Json;
use icvbe_campaign::report::{aggregate_csv, aggregate_json, quarantine_csv, quarantine_json};
use icvbe_campaign::spec::{CampaignSpec, WaferMap};
use icvbe_campaign::{run_campaign, CampaignRun};
use icvbe_serve::client::{Client, ClientError};
use icvbe_serve::daemon::Daemon;
use icvbe_serve::service::ServiceConfig;
use icvbe_trace::{SpanKind, SpanPhase};

/// A small single-corner campaign that still folds enough dies for the
/// scheduler to take several slices.
fn spec(rows: usize, seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::paper_default(WaferMap::full(rows, rows), seed);
    spec.corners.truncate(1);
    spec
}

/// The four deterministic report artifacts of a one-shot run.
fn golden(spec: &CampaignSpec) -> [(String, String); 4] {
    let run: CampaignRun = run_campaign(spec, 2).expect("one-shot run");
    [
        ("campaign_aggregate.json".to_string(), aggregate_json(&run)),
        ("campaign_aggregate.csv".to_string(), aggregate_csv(&run)),
        (
            "campaign_quarantine.json".to_string(),
            quarantine_json(&run),
        ),
        ("campaign_quarantine.csv".to_string(), quarantine_csv(&run)),
    ]
}

/// Asserts the wire artifacts contain the golden four, byte for byte.
fn assert_matches_golden(artifacts: &[(String, String)], golden: &[(String, String); 4]) {
    for (name, want) in golden {
        let got = artifacts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
            .unwrap_or_else(|| panic!("artifact {name} missing from the stream"));
        assert_eq!(got, want, "{name} differs from the one-shot run");
    }
}

#[test]
fn hello_with_wrong_version_is_a_typed_rejection() {
    let daemon = Daemon::start(ServiceConfig::default(), "127.0.0.1:0").expect("daemon");
    let addr = daemon.local_addr();

    let mut socket = TcpStream::connect(addr).expect("connect");
    socket
        .write_all(b"{\"cmd\":\"hello\",\"version\":99}\n")
        .expect("send");
    let mut line = String::new();
    BufReader::new(socket.try_clone().expect("clone"))
        .read_line(&mut line)
        .expect("reply");
    assert!(
        line.contains("\"error\":\"unsupported_version\""),
        "reply: {line}"
    );
    assert!(line.contains("\"supported\":1"), "reply: {line}");

    // Opening with anything else is an equally typed rejection.
    let mut socket = TcpStream::connect(addr).expect("connect");
    socket.write_all(b"{\"cmd\":\"status\"}\n").expect("send");
    let mut line = String::new();
    BufReader::new(socket.try_clone().expect("clone"))
        .read_line(&mut line)
        .expect("reply");
    assert!(line.contains("\"error\":\"bad_request\""), "reply: {line}");

    daemon.stop();
}

#[test]
fn streamed_submit_is_byte_identical_to_a_one_shot_run() {
    let spec = spec(3, 0x005E_1177);
    let want = golden(&spec);
    let total = spec.wafer.die_count() as u64;

    let config = ServiceConfig {
        threads: 3,
        slice_dies: 2,
        ..ServiceConfig::default()
    };
    let daemon = Daemon::start(config, "127.0.0.1:0").expect("daemon");
    let addr = daemon.local_addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    client.submit("acme", "lot1", &spec, true).expect("submit");
    let mut stream = Vec::new();
    let artifacts = client
        .wait_done(|folded, total| stream.push((folded, total)))
        .expect("job");

    // Per-die events arrive in strict fold order, one per die.
    let expect: Vec<(u64, u64)> = (1..=total).map(|f| (f, total)).collect();
    assert_eq!(stream, expect, "die stream must be in fold order");
    assert_matches_golden(&artifacts, &want);
    // The metrics artifact rides along but is wall-clock, so presence only.
    assert!(artifacts.iter().any(|(n, _)| n == "campaign_metrics.json"));

    daemon.stop();
}

#[test]
fn round_robin_interleaves_two_tenants_and_shares_the_cache() {
    let spec = spec(3, 0xFA_1AFE1);
    let want = golden(&spec);

    let config = ServiceConfig {
        threads: 2,
        slice_dies: 2,
        paused: true, // queue both jobs before the first slice runs
        trace: true,
        ..ServiceConfig::default()
    };
    let daemon = Daemon::start(config, "127.0.0.1:0").expect("daemon");
    let addr = daemon.local_addr().to_string();

    let mut alice = Client::connect(&addr).expect("connect alice");
    let job_a = alice.submit("alice", "a", &spec, true).expect("submit a");
    let mut bob = Client::connect(&addr).expect("connect bob");
    let job_b = bob.submit("bob", "b", &spec, true).expect("submit b");
    daemon.service().set_paused(false);

    let handle = std::thread::spawn(move || bob.wait_done(|_, _| {}).expect("job b"));
    let artifacts_a = alice.wait_done(|_, _| {}).expect("job a");
    let artifacts_b = handle.join().expect("bob thread");

    // Both tenants produced the identical, golden artifacts — sharing the
    // scheduler and the symbolic cache perturbed nothing.
    assert_matches_golden(&artifacts_a, &want);
    assert_matches_golden(&artifacts_b, &want);

    let stats = daemon.service().stats();
    assert_eq!(stats.completed, 2);
    assert!(
        stats.cache_hits > 0,
        "two identical netlists must share the symbolic cache: {stats:?}"
    );

    // Fairness, from the service trace: each job was *dispatched* (its
    // queue span ended) before the other job *finished* (its job span
    // ended) — a run-to-completion scheduler would order these the other
    // way around for whichever job went second.
    let trace = daemon.service().take_trace().expect("service trace");
    let index = |kind: SpanKind, phase: SpanPhase, job: u64| {
        trace
            .events
            .iter()
            .position(|e| e.kind == kind && e.phase == phase && e.n0 == job)
            .unwrap_or_else(|| panic!("no {kind:?}/{phase:?} event for job {job}"))
    };
    let dispatched_a = index(SpanKind::Queue, SpanPhase::End, job_a);
    let dispatched_b = index(SpanKind::Queue, SpanPhase::End, job_b);
    let finished_a = index(SpanKind::Job, SpanPhase::End, job_a);
    let finished_b = index(SpanKind::Job, SpanPhase::End, job_b);
    assert!(
        dispatched_b < finished_a,
        "job b dispatched at {dispatched_b}, after job a finished at {finished_a}"
    );
    assert!(
        dispatched_a < finished_b,
        "job a dispatched at {dispatched_a}, after job b finished at {finished_b}"
    );

    daemon.stop();
}

#[test]
fn over_full_queue_rejects_with_deterministic_backpressure() {
    let config = ServiceConfig {
        queue_capacity: 1,
        paused: true, // nothing drains, so the rejection is deterministic
        retry_after_ms: 250,
        ..ServiceConfig::default()
    };
    let daemon = Daemon::start(config, "127.0.0.1:0").expect("daemon");
    let addr = daemon.local_addr().to_string();
    let spec = spec(2, 3);

    let mut first = Client::connect(&addr).expect("connect");
    first.submit("t", "fills", &spec, false).expect("fits");

    let mut second = Client::connect(&addr).expect("connect");
    match second.submit("t", "overflows", &spec, false) {
        Err(ClientError::Server {
            kind,
            retry_after_ms,
            ..
        }) => {
            assert_eq!(kind, "queue_full");
            // Base 250 ms × (1 + 1 waiting job): the paused daemon holds
            // the one admitted job in the waiting state deterministically.
            assert_eq!(
                retry_after_ms,
                Some(500),
                "backpressure hint must ride along, scaled by backlog"
            );
        }
        other => panic!("expected queue_full, got {other:?}"),
    }
    assert_eq!(daemon.service().stats().rejected, 1);

    daemon.stop();
}

#[test]
fn restarted_daemon_resumes_checkpointed_jobs_byte_identically() {
    let spec = spec(5, 0x00C0_FFEE);
    let want = golden(&spec);
    let ckdir = std::env::temp_dir().join("icvbe_serve_e2e_restart");
    let _ = std::fs::remove_dir_all(&ckdir);

    let config = ServiceConfig {
        threads: 2,
        slice_dies: 2,
        checkpoint_every: 1,
        checkpoint_dir: Some(ckdir.clone()),
        ..ServiceConfig::default()
    };
    let first = Daemon::start(config.clone(), "127.0.0.1:0").expect("daemon 1");
    let addr = first.local_addr().to_string();

    // Stream in a background thread; it will see the shutdown error.
    let submit_addr = addr.clone();
    let submit_spec = spec.clone();
    let streamer = std::thread::spawn(move || {
        let mut c = Client::connect(&submit_addr).expect("connect");
        c.submit("acme", "lot9", &submit_spec, true)
            .expect("submit");
        c.wait_done(|_, _| {}) // Err(shutdown) expected, Ok if the race is lost
    });

    // Wait until the job has folded a few dies mid-campaign, then stop the
    // daemon — the graceful path of a kill: checkpoint and exit.
    let mut monitor = Client::connect(&addr).expect("monitor");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "job never made progress");
        let status = monitor.status().expect("status");
        let folded = status
            .get("jobs")
            .and_then(Json::as_arr)
            .and_then(|jobs| jobs.first())
            .and_then(|j| j.get("folded"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if folded >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    first.stop();
    let interrupted = streamer.join().expect("streamer thread");
    if interrupted.is_ok() {
        // The job finished before the stop landed; the restart below then
        // has nothing to resume, so don't assert on it.
        let _ = std::fs::remove_dir_all(&ckdir);
        return;
    }

    // A fresh daemon on the same checkpoint directory re-admits the job...
    let second = Daemon::start(config, "127.0.0.1:0").expect("daemon 2");
    assert_eq!(second.service().stats().resumed, 1, "one job must resume");

    // ...and a client re-attaching by label collects artifacts that are
    // byte-identical to the uninterrupted one-shot run.
    let mut watcher = Client::connect(&second.local_addr().to_string()).expect("connect");
    watcher
        .results(None, Some("lot9"), Some("acme"))
        .expect("results");
    let artifacts = watcher.wait_done(|_, _| {}).expect("resumed job");
    assert_matches_golden(&artifacts, &want);

    second.stop();
    let _ = std::fs::remove_dir_all(&ckdir);
}
