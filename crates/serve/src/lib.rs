//! The campaign service: a persistent, multi-tenant daemon that runs
//! `IC(VBE)` extraction campaigns submitted over a line-delimited JSON
//! TCP protocol.
//!
//! The batch engine (`icvbe-campaign`) answers "run this wafer, give me
//! the reports" for one caller at a time. This crate turns it into a
//! shared facility:
//!
//! - [`protocol`]: the wire protocol — versioned `hello` handshake,
//!   `submit`/`status`/`results`/`cancel`/`shutdown`, typed errors
//!   (`unsupported_version`, `queue_full` with a `retry_after_ms`
//!   backpressure hint, `unknown_job`, `bad_request`).
//! - [`service`]: the engine — a bounded job queue, a scheduler that
//!   round-robins execution **slices** across tenants (no tenant can
//!   starve another), one shared symbolic-LU cache across all jobs, per-
//!   die event streams with history replay, and checkpoint files that let
//!   a killed daemon resume every job **byte-identically**.
//! - [`daemon`]: the TCP front end (thread per connection, polling accept
//!   loop, no dependencies beyond `std`).
//! - [`client`]: a blocking client used by `repro submit` / `repro watch`
//!   and the end-to-end tests.
//! - [`shard`]: multi-process campaign execution — a supervisor spawns N
//!   worker processes, each running a contiguous die-range slice, and
//!   folds their serialized partial aggregates through a deterministic
//!   left-to-right merge that reproduces the single-process report bytes
//!   at any shard count.
//!
//! # Determinism contract
//!
//! The campaign fold is strictly die-index-ordered, so slicing a job
//! across scheduler turns — or across a daemon kill and restart — cannot
//! change a single bit of the four deterministic report artifacts: they
//! are byte-identical to a one-shot `repro campaign` of the same spec at
//! any thread count. The shared symbolic cache preserves this too: a
//! cached sparsity plan is the same pure function output a private
//! analysis would have produced.
//!
//! # Example
//!
//! ```
//! use icvbe_serve::client::Client;
//! use icvbe_serve::daemon::Daemon;
//! use icvbe_serve::service::ServiceConfig;
//! use icvbe_campaign::spec::{CampaignSpec, WaferMap};
//!
//! let daemon = Daemon::start(ServiceConfig::default(), "127.0.0.1:0").unwrap();
//! let addr = daemon.local_addr().to_string();
//!
//! let mut spec = CampaignSpec::paper_default(WaferMap::full(2, 2), 7);
//! spec.corners.truncate(1);
//! let mut client = Client::connect(&addr).unwrap();
//! client.submit("docs", "example", &spec, true).unwrap();
//! let artifacts = client.wait_done(|_folded, _total| {}).unwrap();
//! assert!(artifacts.iter().any(|(name, _)| name == "campaign_aggregate.json"));
//! daemon.stop();
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod daemon;
pub mod protocol;
pub mod service;
pub mod shard;

pub use client::{Client, ClientError, JobEvent};
pub use daemon::Daemon;
pub use protocol::PROTOCOL_VERSION;
pub use service::{Service, ServiceConfig, ServiceStats, SubmitError, SubmitTicket};
