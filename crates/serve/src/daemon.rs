//! The TCP front end: accepts connections, enforces the `hello`
//! handshake, and translates protocol requests into [`Service`] calls.
//!
//! Each connection gets its own thread (connections are few and mostly
//! idle or streaming; a thread per connection keeps the code free of any
//! event-loop dependency). The accept loop polls a non-blocking listener
//! so a shutdown request can stop it promptly without needing a way to
//! interrupt `accept`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use icvbe_instrument::chaos::SocketFault;

use crate::protocol::{
    error_line, hello_line, parse_request, queue_full_line, submitted_line, ProtocolError, Request,
    PROTOCOL_VERSION,
};
use crate::service::{Service, ServiceConfig, SubmitError};

/// A running daemon: the service plus its TCP accept loop.
#[derive(Debug)]
pub struct Daemon {
    service: Arc<Service>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving.
    ///
    /// # Errors
    ///
    /// Socket bind errors and [`Service::start`] I/O errors.
    pub fn start(config: ServiceConfig, addr: &str) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let service = Arc::new(Service::start(config)?);
        let accept_service = Arc::clone(&service);
        let accept = std::thread::spawn(move || {
            // Connection ordinal: the key of per-connection chaos verdicts.
            let mut conn: u64 = 0;
            loop {
                if accept_service.is_shutdown() {
                    break;
                }
                match listener.accept() {
                    Ok((socket, _)) => {
                        conn += 1;
                        let op = conn;
                        let conn_service = Arc::clone(&accept_service);
                        std::thread::spawn(move || handle_connection(&conn_service, socket, op));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Daemon {
            service,
            addr: local,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind this daemon (tests poke counters through it).
    #[must_use]
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Blocks until a `shutdown` request stops the daemon, then joins the
    /// accept loop and the scheduler (final checkpoints written).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.service.join();
    }

    /// Stops the daemon from the host process (equivalent to a client
    /// `shutdown`) and waits for it.
    pub fn stop(self) {
        self.service.request_shutdown();
        self.wait();
    }
}

fn write_line(socket: &mut TcpStream, line: &str) -> std::io::Result<()> {
    socket.write_all(line.as_bytes())?;
    socket.write_all(b"\n")
}

/// Outcome of one bounded request-line read.
enum LineRead {
    /// A complete line (decoded lossily: binary garbage still parses into
    /// a string and earns a typed `bad_request`, never a panic).
    Line(String),
    /// Clean EOF or an unrecoverable socket error.
    Closed,
    /// The socket read timeout fired (stalled client).
    TimedOut,
    /// The line exceeded the request-size cap before any newline.
    TooLarge,
}

/// Reads one `\n`-terminated request line without ever buffering more
/// than `cap + 1` bytes: a client streaming an endless line exhausts the
/// cap, not the daemon's memory.
fn read_bounded_line(reader: &mut BufReader<TcpStream>, cap: usize) -> LineRead {
    let mut buf: Vec<u8> = Vec::new();
    match reader
        .by_ref()
        .take(cap as u64 + 1)
        .read_until(b'\n', &mut buf)
    {
        Ok(0) => LineRead::Closed,
        Ok(_) => {
            if buf.last() != Some(&b'\n') && buf.len() > cap {
                return LineRead::TooLarge;
            }
            LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
        }
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            LineRead::TimedOut
        }
        Err(_) => LineRead::Closed,
    }
}

/// Runs one connection to completion. The protocol is half-duplex:
/// request, then response(s) — a streaming submit or `results` attach
/// occupies the connection until the job's terminal event.
///
/// Hardened I/O: read/write timeouts shed stalled clients, request lines
/// are length-capped, and the connection-keyed chaos plan can stall or
/// reset the socket up front to exercise exactly those paths.
fn handle_connection(service: &Arc<Service>, socket: TcpStream, conn: u64) {
    // Socket timeouts apply to the shared underlying socket, so setting
    // them once here covers the cloned read half too.
    if let Some(timeout) = service.io_timeout() {
        let _ = socket.set_read_timeout(Some(timeout));
        let _ = socket.set_write_timeout(Some(timeout));
    }
    match service.chaos_socket_fault(conn) {
        SocketFault::None => {}
        SocketFault::Stall { millis } => std::thread::sleep(Duration::from_millis(millis)),
        // Drop without a byte: the client sees an abrupt close, exactly
        // like a daemon crashing between accept and response.
        SocketFault::Reset => return,
    }
    let Ok(read_half) = socket.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut socket = socket;
    let cap = service.max_request_bytes();

    // Handshake: the first request must be a `hello` with this build's
    // protocol version; anything else is a typed rejection.
    let line = match read_bounded_line(&mut reader, cap) {
        LineRead::Line(line) => line,
        LineRead::Closed => return,
        LineRead::TimedOut => {
            service.note_io_timeout();
            return;
        }
        LineRead::TooLarge => {
            service.note_oversized();
            let err = ProtocolError {
                kind: "request_too_large",
                detail: format!("request line exceeds {cap} bytes"),
            };
            let _ = write_line(&mut socket, &error_line(&err));
            return;
        }
    };
    match parse_request(line.trim_end()) {
        Ok(Request::Hello { version }) if version == PROTOCOL_VERSION => {
            if write_line(&mut socket, &hello_line()).is_err() {
                return;
            }
        }
        Ok(Request::Hello { version }) => {
            let err = ProtocolError {
                kind: "unsupported_version",
                detail: format!(
                    "client speaks protocol {version}, server speaks {PROTOCOL_VERSION}"
                ),
            };
            let _ = write_line(&mut socket, &error_line(&err));
            return;
        }
        Ok(_) => {
            let err = ProtocolError {
                kind: "bad_request",
                detail: "connection must open with a hello".to_string(),
            };
            let _ = write_line(&mut socket, &error_line(&err));
            return;
        }
        Err(e) => {
            let _ = write_line(&mut socket, &error_line(&e));
            return;
        }
    }

    loop {
        let line = match read_bounded_line(&mut reader, cap) {
            LineRead::Line(line) => line,
            LineRead::Closed => return,
            LineRead::TimedOut => {
                service.note_io_timeout();
                return;
            }
            LineRead::TooLarge => {
                service.note_oversized();
                let err = ProtocolError {
                    kind: "request_too_large",
                    detail: format!("request line exceeds {cap} bytes"),
                };
                let _ = write_line(&mut socket, &error_line(&err));
                return;
            }
        };
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        let request = match parse_request(trimmed) {
            Ok(r) => r,
            Err(e) => {
                if write_line(&mut socket, &error_line(&e)).is_err() {
                    return;
                }
                continue;
            }
        };
        if !dispatch(service, &mut socket, request) {
            return;
        }
    }
}

/// Handles one parsed request; returns `false` when the connection should
/// close.
fn dispatch(service: &Arc<Service>, socket: &mut TcpStream, request: Request) -> bool {
    match request {
        Request::Hello { .. } => write_line(socket, &hello_line()).is_ok(),
        Request::Status => write_line(socket, &service.status_json()).is_ok(),
        Request::Submit {
            tenant,
            label,
            stream,
            spec,
        } => match service.submit(&tenant, &label, *spec) {
            Ok(ticket) => {
                if write_line(socket, &submitted_line(ticket.job, ticket.queued)).is_err() {
                    return false;
                }
                if stream {
                    return pump_events(service, socket, ticket.job);
                }
                true
            }
            Err(SubmitError::QueueFull { retry_after_ms }) => {
                write_line(socket, &queue_full_line(retry_after_ms)).is_ok()
            }
        },
        Request::Results { job, label, tenant } => {
            let resolved = job.or_else(|| {
                label
                    .as_deref()
                    .and_then(|l| service.find_job(tenant.as_deref(), l))
            });
            match resolved {
                Some(id) => pump_events(service, socket, id),
                None => {
                    let err = ProtocolError {
                        kind: "unknown_job",
                        detail: "no such job".to_string(),
                    };
                    write_line(socket, &error_line(&err)).is_ok()
                }
            }
        }
        Request::Cancel { job } => {
            if service.cancel(job) {
                write_line(
                    socket,
                    &format!("{{\"ok\":true,\"type\":\"cancelling\",\"job\":{job}}}"),
                )
                .is_ok()
            } else {
                let err = ProtocolError {
                    kind: "unknown_job",
                    detail: "no such live job".to_string(),
                };
                write_line(socket, &error_line(&err)).is_ok()
            }
        }
        Request::Shutdown => {
            let _ = write_line(socket, "{\"ok\":true,\"type\":\"shutdown\"}");
            service.request_shutdown();
            false
        }
    }
}

/// Streams a job's events (history replay + live) to the socket until the
/// terminal event or a client disconnect.
fn pump_events(service: &Arc<Service>, socket: &mut TcpStream, job: u64) -> bool {
    let Some(rx) = service.subscribe(job) else {
        let err = ProtocolError {
            kind: "unknown_job",
            detail: "no such job".to_string(),
        };
        return write_line(socket, &error_line(&err)).is_ok();
    };
    for event in rx {
        let terminal = !event.contains("\"type\":\"die\"");
        if write_line(socket, &event).is_err() {
            return false;
        }
        if terminal {
            return true;
        }
    }
    // Channel closed without a terminal event: the service shut down
    // mid-job (state was checkpointed). Tell the client explicitly.
    let err = ProtocolError {
        kind: "bad_request",
        detail: "service shut down before the job finished; resubmit or reattach after restart"
            .to_string(),
    };
    let _ = write_line(socket, &error_line(&err));
    false
}
