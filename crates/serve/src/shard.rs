//! Sharded campaign execution: N worker **processes**, one deterministic
//! tree merge.
//!
//! The in-process engine already fans dies across threads; this module
//! fans a campaign across *processes* — the shape production test farms
//! actually run (one tester host per wafer slice, a supervisor folding
//! the lot report). Each worker runs a contiguous die-range slice of the
//! spec through `run_campaign_streaming` and emits a serialized
//! [`PartialAggregate`]; the supervisor folds the partials **left to
//! right in ascending die order** through
//! [`PartialAggregate::merge`], which reproduces the single-process
//! fold's bytes exactly:
//!
//! - the statistics are exact superaccumulators (integer limb adds), so
//!   per-shard sub-sums merge without rounding;
//! - the quarantine record list concatenates in die order because the
//!   merge enforces slice adjacency;
//! - counters and histograms are plain integer adds.
//!
//! The four deterministic report artifacts are therefore byte-identical
//! at any shard count — `--shards 8` equals `--shards 1` equals the
//! in-process engine. The metrics artifact stays what it always was:
//! wall-clock-bearing and non-deterministic.
//!
//! # Protocol
//!
//! Line-delimited JSON over the worker's stdio, one request in, one
//! terminal document out:
//!
//! | direction | line |
//! |---|---|
//! | supervisor → worker | `{"cmd":"shard_run","version":1,"shard":i,"start_die":a,"end_die":b,"threads":t,"batch":n,"die_iter_budget":x,"die_wall_ms":y,"libm_exp":0|1,"spec":{...}}` |
//! | worker → supervisor | `{"type":"progress","shard":i,"folded":n}`* (cadenced) |
//! | worker → supervisor (terminal) | the checksummed partial-aggregate document (`"schema":"icvbe-campaign-partial-v1"`) |
//! | worker → supervisor (terminal) | `{"ok":false,"error":e,"detail":d}` |
//!
//! A worker that exits without a terminal line (crash, kill, OOM) is
//! reported as a typed [`ShardError::WorkerExited`] — the supervisor
//! never fabricates a slice. The `ICVBE_SHARD_FAIL=<shard>` environment
//! variable makes the named worker abort mid-slice, which is how the
//! smoke tests exercise that path deterministically.

use std::io::{BufRead, BufReader, Write as _};
use std::ops::ControlFlow;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Instant;

use icvbe_campaign::die::DieBudget;
use icvbe_campaign::json::{parse, Json};
use icvbe_campaign::metrics::CampaignCounters;
use icvbe_campaign::partial::{
    partial_from_json, partial_to_json, PartialAggregate, PARTIAL_SCHEMA,
};
use icvbe_campaign::wire::{spec_fingerprint, spec_from_value, spec_to_json};
use icvbe_campaign::{run_campaign_streaming, CampaignRun, CampaignSpec, StreamOptions};

/// Version tag of the supervisor↔worker request line.
pub const SHARD_PROTOCOL_VERSION: u32 = 1;

/// Environment variable naming a shard index that must abort mid-slice
/// (fault-injection hook for supervisor tests; unset = inert).
pub const SHARD_FAIL_ENV: &str = "ICVBE_SHARD_FAIL";

/// Worker progress cadence: one `progress` line per this many folded dies.
const PROGRESS_EVERY: u64 = 64;

/// Typed supervisor failures. Every variant names the shard it came from
/// where one exists — "something died somewhere" is not actionable on a
/// test floor.
#[derive(Debug)]
pub enum ShardError {
    /// The request itself is unusable (zero shards, invalid spec).
    Config(String),
    /// A worker process could not be spawned or written to.
    Spawn {
        /// Shard index.
        shard: usize,
        /// OS-level detail.
        detail: String,
    },
    /// A worker exited without emitting its terminal partial aggregate.
    WorkerExited {
        /// Shard index.
        shard: usize,
        /// Exit code when the process exited normally.
        code: Option<i32>,
    },
    /// A worker reported a typed error line instead of a partial.
    Worker {
        /// Shard index.
        shard: usize,
        /// The worker's `error`/`detail` payload.
        detail: String,
    },
    /// A worker's terminal document was malformed or described the wrong
    /// slice.
    Protocol {
        /// Shard index.
        shard: usize,
        /// What was wrong with the document.
        detail: String,
    },
    /// The left-to-right fold rejected a partial (fingerprint mismatch or
    /// non-adjacent slices).
    Merge(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Config(d) => write!(f, "shard config: {d}"),
            ShardError::Spawn { shard, detail } => {
                write!(f, "spawning shard worker {shard}: {detail}")
            }
            ShardError::WorkerExited { shard, code } => match code {
                Some(c) => write!(
                    f,
                    "shard worker {shard} exited with code {c} before its partial aggregate"
                ),
                None => write!(
                    f,
                    "shard worker {shard} was killed before its partial aggregate"
                ),
            },
            ShardError::Worker { shard, detail } => {
                write!(f, "shard worker {shard} failed: {detail}")
            }
            ShardError::Protocol { shard, detail } => {
                write!(f, "shard worker {shard} protocol violation: {detail}")
            }
            ShardError::Merge(d) => write!(f, "merging shard partials: {d}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Supervisor knobs beyond the spec.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Worker process count (must be ≥ 1).
    pub shards: usize,
    /// Worker threads **per shard**.
    pub threads: usize,
    /// Batched-solve lane request forwarded to every worker (see
    /// `RunOptions::batch`).
    pub batch: usize,
    /// Per-die solve containment budget forwarded to every worker.
    pub budget: DieBudget,
    /// Route worker exponentials through libm instead of the in-tree
    /// `vexp` kernel (the benchmarking ablation). Changes the accepted
    /// bits, so every worker must agree with the supervisor — the flag
    /// rides the request line.
    pub libm_exp: bool,
    /// Worker executable; `None` (the default) re-invokes the current
    /// executable with the `shard-worker` subcommand.
    pub worker_exe: Option<PathBuf>,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            shards: 1,
            threads: 1,
            batch: 0,
            budget: DieBudget::default(),
            libm_exp: false,
            worker_exe: None,
        }
    }
}

/// Contiguous die-range slices: shard `i` of `shards` gets
/// `total / shards` dies plus one of the `total % shards` remainder dies
/// (front-loaded), so the slices tile `0..total` exactly and differ in
/// size by at most one. Deterministic in `(total, shards)` alone.
#[must_use]
pub fn slice_ranges(total: usize, shards: usize) -> Vec<(usize, usize)> {
    let base = total / shards;
    let rem = total % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut at = 0usize;
    for i in 0..shards {
        let len = base + usize::from(i < rem);
        ranges.push((at, at + len));
        at += len;
    }
    debug_assert_eq!(at, total);
    ranges
}

/// Renders the one-line worker request.
#[must_use]
pub fn shard_request_line(
    spec: &CampaignSpec,
    shard: usize,
    range: (usize, usize),
    opts: &ShardOptions,
) -> String {
    format!(
        concat!(
            "{{\"cmd\":\"shard_run\",\"version\":{version},\"shard\":{shard},",
            "\"start_die\":{start},\"end_die\":{end},\"threads\":{threads},",
            "\"batch\":{batch},\"die_iter_budget\":{iters},",
            "\"die_wall_ms\":{wall},\"libm_exp\":{libm},\"spec\":{spec}}}"
        ),
        version = SHARD_PROTOCOL_VERSION,
        shard = shard,
        start = range.0,
        end = range.1,
        threads = opts.threads,
        batch = opts.batch,
        iters = opts.budget.max_newton_iterations,
        wall = opts.budget.max_wall_ms,
        libm = u8::from(opts.libm_exp),
        spec = spec_to_json(spec),
    )
}

/// Runs `spec` across `opts.shards` worker processes and folds their
/// partial aggregates into one [`CampaignRun`] whose deterministic
/// artifacts are byte-identical to a single-process run.
///
/// The returned run's metrics are the supervisor's view: merged worker
/// counters and histograms, the supervisor's wall clock, `threads` set to
/// the total worker-thread count, and the max of the shards' reorder
/// buffer peaks.
///
/// # Errors
///
/// [`ShardError`] — see the variants; any failure kills the remaining
/// workers before returning so no orphan keeps computing.
pub fn run_sharded(spec: &CampaignSpec, opts: &ShardOptions) -> Result<CampaignRun, ShardError> {
    if opts.shards == 0 {
        return Err(ShardError::Config("--shards must be at least 1".into()));
    }
    spec.validate()
        .map_err(|e| ShardError::Config(e.to_string()))?;
    let exe = match &opts.worker_exe {
        Some(p) => p.clone(),
        None => std::env::current_exe()
            .map_err(|e| ShardError::Config(format!("cannot locate own executable: {e}")))?,
    };
    let total = spec.wafer.die_count();
    let ranges = slice_ranges(total, opts.shards);
    let fingerprint = spec_fingerprint(spec);
    let started = Instant::now();

    // Spawn every worker first so the slices run concurrently; results
    // are then *read* sequentially in shard order, which is exactly the
    // left-to-right association the merge requires.
    let mut children: Vec<Option<Child>> = Vec::with_capacity(opts.shards);
    for (shard, range) in ranges.iter().enumerate() {
        let spawn = |shard: usize| -> std::io::Result<Child> {
            let mut child = Command::new(&exe)
                .arg("shard-worker")
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()?;
            // The request is a single line; closing stdin right after
            // tells the worker there is nothing more to wait for.
            if let Some(stdin) = child.stdin.take().as_mut() {
                stdin.write_all(shard_request_line(spec, shard, *range, opts).as_bytes())?;
                stdin.write_all(b"\n")?;
            }
            Ok(child)
        };
        match spawn(shard) {
            Ok(child) => children.push(Some(child)),
            Err(e) => {
                kill_all(&mut children);
                return Err(ShardError::Spawn {
                    shard,
                    detail: e.to_string(),
                });
            }
        }
    }

    // Sequential left-to-right fold over the shards' partials.
    let mut folded: Option<PartialAggregate> = None;
    for (shard, range) in ranges.iter().enumerate() {
        let Some(mut child) = children[shard].take() else {
            continue;
        };
        let partial = match read_partial(&mut child, shard) {
            Ok(p) => p,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                kill_all(&mut children);
                return Err(e);
            }
        };
        let _ = child.wait();
        if partial.fingerprint != fingerprint || (partial.start_die, partial.end_die) != *range {
            kill_all(&mut children);
            return Err(ShardError::Protocol {
                shard,
                detail: format!(
                    "partial describes slice [{}, {}) of spec {:016x}, expected [{}, {}) of {fingerprint:016x}",
                    partial.start_die, partial.end_die, partial.fingerprint, range.0, range.1
                ),
            });
        }
        match folded.as_mut() {
            None => folded = Some(partial),
            Some(acc) => acc
                .merge(partial)
                .map_err(|e| ShardError::Merge(e.to_string()))?,
        }
    }
    let folded = folded.ok_or_else(|| ShardError::Config("no shards ran".into()))?;

    let metrics = folded.counters.snapshot(
        opts.shards * opts.threads.max(1),
        started.elapsed().as_nanos() as u64,
        folded.max_reorder_buffer,
    );
    Ok(CampaignRun {
        spec: spec.clone(),
        aggregate: folded.aggregate,
        metrics,
        trace: None,
    })
}

fn kill_all(children: &mut Vec<Option<Child>>) {
    for child in children.iter_mut().filter_map(Option::as_mut) {
        let _ = child.kill();
        let _ = child.wait();
    }
    children.clear();
}

/// Reads one worker's stdout until its terminal line: the partial (by its
/// schema tag), a typed error line, or EOF (worker died).
fn read_partial(child: &mut Child, shard: usize) -> Result<PartialAggregate, ShardError> {
    let Some(stdout) = child.stdout.take() else {
        return Err(ShardError::Protocol {
            shard,
            detail: "worker stdout was not captured".into(),
        });
    };
    for line in BufReader::new(stdout).lines() {
        let line = line.map_err(|e| ShardError::Protocol {
            shard,
            detail: format!("reading worker output: {e}"),
        })?;
        if line.is_empty() {
            continue;
        }
        if line.contains(PARTIAL_SCHEMA) {
            return partial_from_json(&line).map_err(|e| ShardError::Protocol {
                shard,
                detail: e.to_string(),
            });
        }
        if let Ok(v) = parse(&line) {
            if v.get("ok").and_then(Json::as_bool) == Some(false) {
                let error = v.get("error").and_then(Json::as_str).unwrap_or("unknown");
                let detail = v.get("detail").and_then(Json::as_str).unwrap_or("");
                return Err(ShardError::Worker {
                    shard,
                    detail: format!("{error}: {detail}"),
                });
            }
            // Anything else ({"type":"progress",...}) is cadence noise.
        }
    }
    // EOF without a terminal line: the worker died mid-slice.
    let code = child.wait().ok().and_then(|status| status.code());
    Err(ShardError::WorkerExited { shard, code })
}

/// Minimal JSON string escaping for error detail lines.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn worker_fail(error: &str, detail: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\",\"detail\":\"{}\"}}",
        escape(error),
        escape(detail)
    )
}

/// The worker half of the protocol: reads one request line from stdin,
/// runs its slice, writes progress and the terminal partial-aggregate
/// line to stdout. Returns the process exit code (0 on success).
///
/// Wired to the hidden `shard-worker` subcommand of the `repro` binary —
/// the supervisor re-invokes its own executable, so a single binary
/// serves both roles.
#[must_use]
pub fn shard_worker_main() -> u8 {
    let mut line = String::new();
    if std::io::stdin().read_line(&mut line).is_err() || line.trim().is_empty() {
        println!(
            "{}",
            worker_fail("bad_request", "expected one request line on stdin")
        );
        return 1;
    }
    match shard_worker_run(line.trim()) {
        Ok(partial_line) => {
            println!("{partial_line}");
            0
        }
        Err((error, detail)) => {
            println!("{}", worker_fail(&error, &detail));
            1
        }
    }
}

/// Parses and executes one `shard_run` request; returns the terminal
/// partial-aggregate line.
fn shard_worker_run(request: &str) -> Result<String, (String, String)> {
    let bad = |d: &str| ("bad_request".to_string(), d.to_string());
    let v = parse(request).map_err(|e| bad(&e.to_string()))?;
    if v.get("cmd").and_then(Json::as_str) != Some("shard_run") {
        return Err(bad("cmd must be \"shard_run\""));
    }
    if v.get("version").and_then(Json::as_u64) != Some(u64::from(SHARD_PROTOCOL_VERSION)) {
        return Err((
            "unsupported_version".to_string(),
            format!("this worker speaks version {SHARD_PROTOCOL_VERSION}"),
        ));
    }
    let field = |k: &str| -> Result<u64, (String, String)> {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| bad(&format!("field {k:?} must be a non-negative integer")))
    };
    let shard = field("shard")? as usize;
    let start_die = field("start_die")? as usize;
    let end_die = field("end_die")? as usize;
    let threads = field("threads")?.max(1) as usize;
    let batch = field("batch")? as usize;
    let budget = DieBudget {
        max_newton_iterations: field("die_iter_budget")?,
        max_wall_ms: field("die_wall_ms")?,
    };
    // The exp-backend ablation changes the accepted bits, so the worker
    // must switch before it solves anything or its partial would fail the
    // supervisor's cross-shard byte-identity contract.
    icvbe_numerics::vexp::set_libm_backend(field("libm_exp")? != 0);
    let spec_v = v
        .get("spec")
        .ok_or_else(|| bad("request must carry a \"spec\" object"))?;
    let spec = spec_from_value(spec_v).map_err(|e| bad(&e.to_string()))?;
    if end_die < start_die || end_die > spec.wafer.die_count() {
        return Err(bad(&format!(
            "slice [{start_die}, {end_die}) does not fit the wafer's {} dies",
            spec.wafer.die_count()
        )));
    }

    // Fault-injection hook: the named shard aborts mid-slice (after its
    // first folded die, or immediately on an empty slice) without a
    // terminal line, exercising the supervisor's WorkerExited path.
    let fail_here = std::env::var(SHARD_FAIL_ENV)
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        == Some(shard);
    if fail_here && start_die == end_die {
        std::process::exit(3);
    }

    let fingerprint = spec_fingerprint(&spec);
    if start_die == end_die {
        // An empty slice (more shards than dies): a valid, empty partial.
        let p = PartialAggregate {
            fingerprint,
            start_die,
            end_die,
            aggregate: icvbe_campaign::aggregate::CampaignAggregate::new(&spec),
            counters: CampaignCounters::default(),
            max_reorder_buffer: 0,
        };
        return Ok(partial_to_json(&p));
    }

    let counters = Arc::new(CampaignCounters::default());
    let options = StreamOptions {
        start_die,
        counters: Some(Arc::clone(&counters)),
        batch,
        budget,
        ..StreamOptions::default()
    };
    let mut folded = 0u64;
    let run = run_campaign_streaming(&spec, threads, &options, |die, _| {
        folded += 1;
        if fail_here {
            // Mid-slice abort: at least one die folded, terminal line
            // never written.
            std::process::exit(3);
        }
        if folded.is_multiple_of(PROGRESS_EVERY) {
            println!("{{\"type\":\"progress\",\"shard\":{shard},\"folded\":{folded}}}");
        }
        if die.index + 1 >= end_die {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    })
    .map_err(|e| ("run_failed".to_string(), e.to_string()))?;

    // `options` holds the second Arc handle; release it so the counters
    // can be moved into the partial.
    drop(options);
    let counters = Arc::try_unwrap(counters).map_err(|_| {
        (
            "internal".to_string(),
            "counters still shared after run".to_string(),
        )
    })?;
    let p = PartialAggregate {
        fingerprint,
        start_die,
        end_die,
        aggregate: run.aggregate,
        counters,
        max_reorder_buffer: run.metrics.max_reorder_buffer,
    };
    Ok(partial_to_json(&p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use icvbe_campaign::spec::WaferMap;

    #[test]
    fn slices_tile_the_wafer_contiguously() {
        for total in [0usize, 1, 7, 8, 9, 20, 97] {
            for shards in [1usize, 2, 3, 4, 8, 13] {
                let ranges = slice_ranges(total, shards);
                assert_eq!(ranges.len(), shards);
                assert_eq!(ranges[0].0, 0, "total={total} shards={shards}");
                assert_eq!(ranges[shards - 1].1, total);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "gap/overlap at {w:?}");
                }
                let (min, max) = ranges
                    .iter()
                    .map(|(a, b)| b - a)
                    .fold((usize::MAX, 0), |(lo, hi), n| (lo.min(n), hi.max(n)));
                assert!(max - min <= 1, "unbalanced: {ranges:?}");
            }
        }
    }

    #[test]
    fn request_line_round_trips_through_the_worker_parser() {
        let mut spec = CampaignSpec::paper_default(WaferMap::full(2, 2), 9);
        spec.corners.truncate(1);
        let opts = ShardOptions {
            shards: 2,
            threads: 3,
            batch: 4,
            libm_exp: true,
            ..ShardOptions::default()
        };
        let line = shard_request_line(&spec, 1, (2, 4), &opts);
        let v = parse(&line).unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("shard_run"));
        assert_eq!(v.get("shard").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("start_die").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("end_die").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("threads").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("libm_exp").and_then(Json::as_u64), Some(1));
        let decoded = spec_from_value(v.get("spec").unwrap()).unwrap();
        assert_eq!(decoded, spec);
    }

    #[test]
    fn worker_rejects_malformed_requests_with_typed_errors() {
        let err = shard_worker_run("{\"cmd\":\"nope\"}").unwrap_err();
        assert_eq!(err.0, "bad_request");
        let err =
            shard_worker_run("{\"cmd\":\"shard_run\",\"version\":99,\"shard\":0}").unwrap_err();
        assert_eq!(err.0, "unsupported_version");
    }

    #[test]
    fn worker_runs_a_slice_in_process_and_emits_a_valid_partial() {
        let mut spec = CampaignSpec::paper_default(WaferMap::full(3, 3), 41);
        spec.corners.truncate(1);
        let opts = ShardOptions {
            shards: 2,
            threads: 1,
            ..ShardOptions::default()
        };
        let line = shard_request_line(&spec, 0, (0, 5), &opts);
        let out = shard_worker_run(&line).unwrap();
        let p = partial_from_json(&out).unwrap();
        assert_eq!((p.start_die, p.end_die), (0, 5));
        assert_eq!(p.aggregate.dies, 5);
        assert_eq!(p.fingerprint, spec_fingerprint(&spec));
    }

    #[test]
    fn empty_slice_emits_an_empty_partial_without_running() {
        let mut spec = CampaignSpec::paper_default(WaferMap::full(2, 2), 9);
        spec.corners.truncate(1);
        let line = shard_request_line(&spec, 5, (4, 4), &ShardOptions::default());
        let p = partial_from_json(&shard_worker_run(&line).unwrap()).unwrap();
        assert_eq!((p.start_die, p.end_die), (4, 4));
        assert_eq!(p.aggregate.dies, 0);
    }

    #[test]
    fn two_worker_partials_merge_to_the_single_process_aggregate() {
        let mut spec = CampaignSpec::paper_default(WaferMap::full(3, 3), 41);
        spec.corners.truncate(2);
        let whole = icvbe_campaign::run_campaign(&spec, 1).unwrap();
        let opts = ShardOptions::default();
        let mut left = partial_from_json(
            &shard_worker_run(&shard_request_line(&spec, 0, (0, 5), &opts)).unwrap(),
        )
        .unwrap();
        let right = partial_from_json(
            &shard_worker_run(&shard_request_line(&spec, 1, (5, 9), &opts)).unwrap(),
        )
        .unwrap();
        left.merge(right).unwrap();
        assert_eq!(left.aggregate, whole.aggregate);
    }
}
