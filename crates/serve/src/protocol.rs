//! The line-delimited JSON wire protocol of the campaign service.
//!
//! Every request and response is exactly one line of JSON terminated by
//! `\n`. A connection must open with a `hello` carrying the protocol
//! version; every later request names a `cmd`. Responses always carry an
//! `ok` boolean — errors are typed through an `error` string so clients
//! can branch without parsing prose:
//!
//! | request | response(s) |
//! |---|---|
//! | `{"cmd":"hello","version":1}` | `{"ok":true,"type":"hello",...}` or `unsupported_version` |
//! | `{"cmd":"submit","tenant":t,"label":l,"stream":b,"spec":{...}}` | `submitted`, then (if `stream`) `die`* and a terminal `done`/`cancelled`/`failed` — or `queue_full` with `retry_after_ms` |
//! | `{"cmd":"status"}` | `status` with queue/cache/job counters |
//! | `{"cmd":"results","job":n}` or `{"cmd":"results","label":l}` | replayed `die`* then the terminal event |
//! | `{"cmd":"cancel","job":n}` | `cancelled` |
//! | `{"cmd":"shutdown"}` | `shutdown`, then the daemon checkpoints and exits |

use icvbe_campaign::json::{escape, parse, Json};
use icvbe_campaign::wire::spec_from_value;
use icvbe_campaign::CampaignSpec;

/// The protocol version this build speaks. A `hello` carrying any other
/// version is rejected with the typed `unsupported_version` error (which
/// names the supported version so old clients can say why they failed).
pub const PROTOCOL_VERSION: u64 = 1;

/// A typed protocol-level failure, rendered as a one-line error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Stable machine-readable kind (`bad_request`, `unsupported_version`,
    /// `unknown_job`, `queue_full`, `request_too_large`).
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl ProtocolError {
    fn bad(detail: impl Into<String>) -> Self {
        ProtocolError {
            kind: "bad_request",
            detail: detail.into(),
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version handshake; must be the first request on a connection.
    Hello {
        /// Client's protocol version.
        version: u64,
    },
    /// Submit a campaign.
    Submit {
        /// Tenant the job is accounted (and fair-scheduled) under.
        tenant: String,
        /// Client-chosen label for later `results` lookups.
        label: String,
        /// Stream per-die events on this connection until the job ends.
        stream: bool,
        /// The decoded, validated campaign spec (boxed: a spec is large
        /// next to the other variants).
        spec: Box<CampaignSpec>,
    },
    /// Service status: queue depth, active jobs, cache and job counters.
    Status,
    /// Attach to a job's result stream (replays history, then follows).
    Results {
        /// Job id, if known.
        job: Option<u64>,
        /// Label to look up instead of a job id.
        label: Option<String>,
        /// Restrict a label lookup to one tenant.
        tenant: Option<String>,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job id to cancel.
        job: u64,
    },
    /// Checkpoint all incomplete jobs and stop the daemon.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// [`ProtocolError`] of kind `bad_request` on malformed JSON, an unknown
/// `cmd` or missing/ill-typed fields. The version *value* is not checked
/// here — the daemon compares it against [`PROTOCOL_VERSION`] so it can
/// answer with the typed `unsupported_version` error.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let v = parse(line).map_err(|e| ProtocolError::bad(format!("malformed request: {e}")))?;
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::bad("request must carry a string \"cmd\""))?;
    match cmd {
        "hello" => {
            let version = v
                .get("version")
                .and_then(Json::as_u64)
                .ok_or_else(|| ProtocolError::bad("hello must carry an integer \"version\""))?;
            Ok(Request::Hello { version })
        }
        "submit" => {
            let tenant = v
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or("default")
                .to_string();
            let label = v
                .get("label")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            let stream = v.get("stream").and_then(Json::as_bool).unwrap_or(true);
            let spec_v = v
                .get("spec")
                .ok_or_else(|| ProtocolError::bad("submit must carry a \"spec\" object"))?;
            let spec = spec_from_value(spec_v).map_err(|e| ProtocolError::bad(format!("{e}")))?;
            Ok(Request::Submit {
                tenant,
                label,
                stream,
                spec: Box::new(spec),
            })
        }
        "status" => Ok(Request::Status),
        "results" => {
            let job = v.get("job").and_then(Json::as_u64);
            let label = v.get("label").and_then(Json::as_str).map(str::to_string);
            let tenant = v.get("tenant").and_then(Json::as_str).map(str::to_string);
            if job.is_none() && label.is_none() {
                return Err(ProtocolError::bad(
                    "results needs a \"job\" id or a \"label\"",
                ));
            }
            Ok(Request::Results { job, label, tenant })
        }
        "cancel" => {
            let job = v
                .get("job")
                .and_then(Json::as_u64)
                .ok_or_else(|| ProtocolError::bad("cancel must carry a \"job\" id"))?;
            Ok(Request::Cancel { job })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtocolError::bad(format!("unknown cmd {other:?}"))),
    }
}

/// Renders a typed error response. `retry_after_ms` is carried only by
/// `queue_full` (explicit backpressure: when to try again);
/// `unsupported_version` carries the `supported` version instead.
#[must_use]
pub fn error_line(err: &ProtocolError) -> String {
    let extra = match err.kind {
        "unsupported_version" => format!(",\"supported\":{PROTOCOL_VERSION}"),
        _ => String::new(),
    };
    format!(
        "{{\"ok\":false,\"error\":\"{}\",\"detail\":\"{}\"{extra}}}",
        err.kind,
        escape(&err.detail)
    )
}

/// Renders the `queue_full` backpressure rejection.
#[must_use]
pub fn queue_full_line(retry_after_ms: u64) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"queue_full\",\"detail\":\"job queue at capacity\",\"retry_after_ms\":{retry_after_ms}}}"
    )
}

/// Renders the successful handshake response.
#[must_use]
pub fn hello_line() -> String {
    format!(
        "{{\"ok\":true,\"type\":\"hello\",\"service\":\"icvbe-serve\",\"version\":{PROTOCOL_VERSION}}}"
    )
}

/// Renders the submit acknowledgement (`queued` = jobs ahead of this one).
#[must_use]
pub fn submitted_line(job: u64, queued: usize) -> String {
    format!("{{\"ok\":true,\"type\":\"submitted\",\"job\":{job},\"queued\":{queued}}}")
}

/// Renders one streamed per-die progress event.
#[must_use]
pub fn die_line(job: u64, die: usize, folded: u64, total: usize) -> String {
    format!(
        "{{\"ok\":true,\"type\":\"die\",\"job\":{job},\"die\":{die},\"folded\":{folded},\"total\":{total}}}"
    )
}

/// Renders the terminal `done` event carrying the five report artifacts
/// verbatim (the four deterministic ones are byte-identical to a one-shot
/// `repro campaign` of the same spec).
#[must_use]
pub fn done_line(job: u64, artifacts: &[(&str, &str)]) -> String {
    let body: Vec<String> = artifacts
        .iter()
        .map(|(name, text)| format!("\"{}\":\"{}\"", escape(name), escape(text)))
        .collect();
    format!(
        "{{\"ok\":true,\"type\":\"done\",\"job\":{job},\"artifacts\":{{{}}}}}",
        body.join(",")
    )
}

/// Renders the terminal `cancelled` event.
#[must_use]
pub fn cancelled_line(job: u64) -> String {
    format!("{{\"ok\":true,\"type\":\"cancelled\",\"job\":{job}}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use icvbe_campaign::spec::WaferMap;
    use icvbe_campaign::wire::spec_to_json;

    #[test]
    fn parses_hello_and_rejects_garbage() {
        assert_eq!(
            parse_request("{\"cmd\":\"hello\",\"version\":1}").unwrap(),
            Request::Hello { version: 1 }
        );
        assert!(parse_request("nonsense").is_err());
        assert!(parse_request("{\"cmd\":\"hello\"}").is_err());
        assert!(parse_request("{\"cmd\":\"frobnicate\"}").is_err());
    }

    #[test]
    fn parses_submit_with_embedded_spec() {
        let spec = CampaignSpec::paper_default(WaferMap::full(2, 2), 9);
        let line = format!(
            "{{\"cmd\":\"submit\",\"tenant\":\"acme\",\"label\":\"lot7\",\"stream\":false,\"spec\":{}}}",
            spec_to_json(&spec)
        );
        match parse_request(&line).unwrap() {
            Request::Submit {
                tenant,
                label,
                stream,
                spec: decoded,
            } => {
                assert_eq!(tenant, "acme");
                assert_eq!(label, "lot7");
                assert!(!stream);
                assert_eq!(*decoded, spec);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn submit_rejects_invalid_specs() {
        let line = "{\"cmd\":\"submit\",\"spec\":{\"schema\":\"icvbe-campaign-spec-v1\"}}";
        assert!(parse_request(line).is_err());
    }

    #[test]
    fn results_needs_a_handle() {
        assert!(parse_request("{\"cmd\":\"results\"}").is_err());
        assert!(parse_request("{\"cmd\":\"results\",\"job\":3}").is_ok());
        assert!(parse_request("{\"cmd\":\"results\",\"label\":\"x\"}").is_ok());
    }

    #[test]
    fn error_lines_are_parseable_and_typed() {
        let e = ProtocolError {
            kind: "unsupported_version",
            detail: "client sent 9".to_string(),
        };
        let line = error_line(&e);
        let v = parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("error").and_then(Json::as_str),
            Some("unsupported_version")
        );
        assert_eq!(
            v.get("supported").and_then(Json::as_u64),
            Some(PROTOCOL_VERSION)
        );
        let q = parse(&queue_full_line(250)).unwrap();
        assert_eq!(q.get("retry_after_ms").and_then(Json::as_u64), Some(250));
    }

    #[test]
    fn artifact_payloads_survive_the_wire() {
        let json_artifact = "{\"schema\":\"x\",\n\"rows\":[1,2]}";
        let line = done_line(4, &[("campaign_aggregate.json", json_artifact)]);
        let v = parse(&line).unwrap();
        let arts = v.get("artifacts").unwrap();
        assert_eq!(
            arts.get("campaign_aggregate.json").and_then(Json::as_str),
            Some(json_artifact)
        );
    }
}
