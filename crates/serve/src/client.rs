//! A blocking client for the campaign service, used by `repro submit` /
//! `repro watch` and the end-to-end tests.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use icvbe_campaign::json::{parse, Json};
use icvbe_campaign::wire::spec_to_json;
use icvbe_campaign::CampaignSpec;

use crate::protocol::PROTOCOL_VERSION;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server answered with a typed error (kind, detail).
    Server {
        /// The machine-readable error kind (`queue_full`, `unknown_job`, ...).
        kind: String,
        /// Human-readable detail.
        detail: String,
        /// Backpressure hint, present on `queue_full`.
        retry_after_ms: Option<u64>,
    },
    /// The server sent something the client could not interpret.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Server {
                kind,
                detail,
                retry_after_ms,
            } => match retry_after_ms {
                Some(ms) => write!(f, "{kind}: {detail} (retry after {ms} ms)"),
                None => write!(f, "{kind}: {detail}"),
            },
            ClientError::Protocol(detail) => write!(f, "protocol: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One streamed event from a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// A die was folded (`die` index, `folded` so far, `total` dies).
    Die {
        /// Die index just folded.
        die: u64,
        /// Dies folded so far (== `die + 1`).
        folded: u64,
        /// Total dies in the campaign.
        total: u64,
    },
    /// The job completed; the report artifacts by file name.
    Done {
        /// `(file name, file contents)` pairs, in report order.
        artifacts: Vec<(String, String)>,
    },
    /// The job was cancelled.
    Cancelled,
    /// The job failed (spec became invalid mid-resume, engine error).
    Failed {
        /// Server-provided detail.
        detail: String,
    },
}

/// A connected, handshaken client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects and performs the `hello` handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connect failure, [`ClientError::Server`]
    /// with kind `unsupported_version` on a version mismatch.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        let mut client = Client { reader, writer };
        client.send(&format!(
            "{{\"cmd\":\"hello\",\"version\":{PROTOCOL_VERSION}}}"
        ))?;
        let v = client.recv()?;
        expect_ok(&v)?;
        Ok(client)
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        parse(line.trim_end()).map_err(|e| ClientError::Protocol(format!("unparseable reply: {e}")))
    }

    /// Submits a campaign. With `stream` the connection then carries the
    /// job's event stream — consume it with [`Client::next_event`] or
    /// [`Client::wait_done`] before issuing other requests.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with kind `queue_full` (carrying
    /// `retry_after_ms`) when the service applies backpressure.
    pub fn submit(
        &mut self,
        tenant: &str,
        label: &str,
        spec: &CampaignSpec,
        stream: bool,
    ) -> Result<u64, ClientError> {
        use icvbe_campaign::json::escape;
        self.send(&format!(
            "{{\"cmd\":\"submit\",\"tenant\":\"{}\",\"label\":\"{}\",\"stream\":{stream},\"spec\":{}}}",
            escape(tenant),
            escape(label),
            spec_to_json(spec)
        ))?;
        let v = self.recv()?;
        expect_ok(&v)?;
        v.get("job")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("submitted reply without a job id".into()))
    }

    /// Attaches to a job's event stream by id or label (history replays
    /// first, then live events).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with kind `unknown_job` if nothing matches.
    pub fn results(
        &mut self,
        job: Option<u64>,
        label: Option<&str>,
        tenant: Option<&str>,
    ) -> Result<(), ClientError> {
        use icvbe_campaign::json::escape;
        let mut fields = vec!["\"cmd\":\"results\"".to_string()];
        if let Some(id) = job {
            fields.push(format!("\"job\":{id}"));
        }
        if let Some(l) = label {
            fields.push(format!("\"label\":\"{}\"", escape(l)));
        }
        if let Some(t) = tenant {
            fields.push(format!("\"tenant\":\"{}\"", escape(t)));
        }
        self.send(&format!("{{{}}}", fields.join(",")))
    }

    /// Reads the next streamed event.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] if the stream carries a typed error,
    /// [`ClientError::Protocol`] on an unrecognized event.
    pub fn next_event(&mut self) -> Result<JobEvent, ClientError> {
        let v = self.recv()?;
        // The `failed` terminal carries ok:false but is an event, not a
        // transport error — branch on the type before the ok check.
        match v.get("type").and_then(Json::as_str) {
            Some("die") => Ok(JobEvent::Die {
                die: v.get("die").and_then(Json::as_u64).unwrap_or(0),
                folded: v.get("folded").and_then(Json::as_u64).unwrap_or(0),
                total: v.get("total").and_then(Json::as_u64).unwrap_or(0),
            }),
            Some("done") => {
                let artifacts = match v.get("artifacts") {
                    Some(Json::Obj(members)) => members
                        .iter()
                        .filter_map(|(name, text)| {
                            text.as_str().map(|t| (name.clone(), t.to_string()))
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                Ok(JobEvent::Done { artifacts })
            }
            Some("cancelled") => Ok(JobEvent::Cancelled),
            Some("failed") => Ok(JobEvent::Failed {
                detail: v
                    .get("detail")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            other => {
                expect_ok(&v)?;
                Err(ClientError::Protocol(format!(
                    "unexpected event type {other:?}"
                )))
            }
        }
    }

    /// Consumes the stream until the terminal event, invoking `on_die`
    /// per folded die, and returns the artifacts on success.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for cancelled/failed terminals and typed
    /// stream errors.
    pub fn wait_done(
        &mut self,
        mut on_die: impl FnMut(u64, u64),
    ) -> Result<Vec<(String, String)>, ClientError> {
        loop {
            match self.next_event()? {
                JobEvent::Die { folded, total, .. } => on_die(folded, total),
                JobEvent::Done { artifacts } => return Ok(artifacts),
                JobEvent::Cancelled => {
                    return Err(ClientError::Server {
                        kind: "cancelled".to_string(),
                        detail: "job was cancelled".to_string(),
                        retry_after_ms: None,
                    })
                }
                JobEvent::Failed { detail } => {
                    return Err(ClientError::Server {
                        kind: "failed".to_string(),
                        detail,
                        retry_after_ms: None,
                    })
                }
            }
        }
    }

    /// Fetches the service status document.
    ///
    /// # Errors
    ///
    /// Propagates transport and typed server errors.
    pub fn status(&mut self) -> Result<Json, ClientError> {
        self.send("{\"cmd\":\"status\"}")?;
        let v = self.recv()?;
        expect_ok(&v)?;
        Ok(v)
    }

    /// Requests cancellation of a job.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with kind `unknown_job` for dead ids.
    pub fn cancel(&mut self, job: u64) -> Result<(), ClientError> {
        self.send(&format!("{{\"cmd\":\"cancel\",\"job\":{job}}}"))?;
        let v = self.recv()?;
        expect_ok(&v)?;
        Ok(())
    }

    /// Asks the daemon to checkpoint live jobs and exit.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send("{\"cmd\":\"shutdown\"}")?;
        let v = self.recv()?;
        expect_ok(&v)?;
        Ok(())
    }
}

fn expect_ok(v: &Json) -> Result<(), ClientError> {
    if v.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(());
    }
    Err(ClientError::Server {
        kind: v
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        detail: v
            .get("detail")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string(),
        retry_after_ms: v.get("retry_after_ms").and_then(Json::as_u64),
    })
}
