//! The multi-tenant campaign engine behind the daemon.
//!
//! One scheduler thread round-robins across tenants, running one bounded
//! **slice** of the chosen tenant's oldest live job per turn through
//! [`run_campaign_streaming`] — so a long wafer from one tenant can never
//! starve another tenant's submission, while each individual slice still
//! uses the full worker pool. Between slices the job's aggregate state
//! rests in the job table; because the campaign fold is strictly
//! die-index-ordered, slicing is invisible in the results: the final
//! artifacts are byte-identical to a one-shot run of the same spec.
//!
//! Cross-cutting state:
//!
//! - **Shared symbolic-LU cache** ([`SymbolicCache`]): every job's
//!   workers consult one service-wide cache, so concurrent tenants whose
//!   netlists share a sparsity pattern pay for one analysis total.
//! - **Bounded queue**: admissions beyond
//!   [`ServiceConfig::queue_capacity`] live jobs are rejected with the
//!   typed `queue_full` error carrying `retry_after_ms` — explicit
//!   backpressure instead of unbounded memory.
//! - **Checkpoints**: with a checkpoint directory configured, every job
//!   writes its exact fold state (die cursor + aggregate, `f64`s as bit
//!   patterns) at admission, every
//!   [`ServiceConfig::checkpoint_every`] folded dies, and at shutdown; a
//!   restarted service re-admits the jobs it finds and resumes them
//!   byte-identically.
//! - **Streaming**: each folded die is published to every subscriber of
//!   the job, with full history replay on late attach, so a client killed
//!   mid-stream can reconnect and still see an in-order, gap-free stream.

use std::collections::BTreeMap;
use std::ops::ControlFlow;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use icvbe_campaign::aggregate::CampaignAggregate;
use icvbe_campaign::checkpoint::{checkpoint_from_json, checkpoint_to_json};
use icvbe_campaign::die::DieBudget;
use icvbe_campaign::json::{escape, parse, Json};
use icvbe_campaign::metrics::CampaignCounters;
use icvbe_campaign::report;
use icvbe_campaign::wire::{spec_fingerprint, spec_from_json, spec_to_json};
use icvbe_campaign::worker::{run_campaign_streaming, CampaignRun, StreamOptions};
use icvbe_campaign::CampaignSpec;
use icvbe_instrument::chaos::{ChaosPlan, ChaosSpec, SocketFault};
use icvbe_spice::cache::SymbolicCache;
use icvbe_trace::{SpanKind, SpanPhase, Trace, TraceEvent, NO_DIE};

use crate::protocol::{cancelled_line, die_line, done_line, PROTOCOL_VERSION};

/// Schema tag of the service-level checkpoint files (one per live job in
/// the checkpoint directory; the campaign state itself uses the
/// `icvbe-campaign-checkpoint-v1` codec nested inside).
pub const SERVE_CHECKPOINT_SCHEMA: &str = "icvbe-serve-checkpoint-v1";

/// Poison-safe lock: the service must keep serving even if some thread
/// panicked while holding the mutex (the state is a job table of plain
/// data — there is no invariant a panic can half-apply).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads used by each execution slice.
    pub threads: usize,
    /// Maximum live (queued + running) jobs; submissions beyond this are
    /// rejected with `queue_full`.
    pub queue_capacity: usize,
    /// Dies folded per scheduling turn before the scheduler rotates to
    /// the next tenant.
    pub slice_dies: usize,
    /// Write a checkpoint every this many folded dies (0 disables the
    /// cadence; admission/shutdown checkpoints still happen when a
    /// checkpoint directory is configured).
    pub checkpoint_every: usize,
    /// Directory for per-job checkpoint files; `None` disables
    /// checkpointing entirely.
    pub checkpoint_dir: Option<PathBuf>,
    /// The **base** `retry_after_ms` hint carried by `queue_full`
    /// rejections; the emitted hint is this scaled by `1 +` the number
    /// of admitted-but-not-yet-dispatched jobs at rejection time, so
    /// callers back off longer the deeper the waiting backlog is.
    pub retry_after_ms: u64,
    /// Start with the scheduler paused (jobs queue but never run) — used
    /// by tests to fill the queue deterministically.
    pub paused: bool,
    /// Record service-level `job`/`queue` spans into a [`Trace`].
    pub trace: bool,
    /// Read/write timeout applied to every accepted client socket, in
    /// milliseconds (`0` disables). A stalled or half-dead client then
    /// times out instead of pinning its connection thread forever.
    pub io_timeout_ms: u64,
    /// Maximum bytes of a single request line. A client sending more gets
    /// the typed `request_too_large` error and is disconnected — the
    /// daemon never buffers a request unboundedly.
    pub max_request_bytes: usize,
    /// Environment-fault injection for service I/O: checkpoint writes and
    /// client sockets, plus die panics inside served campaigns. The
    /// default ([`ChaosSpec::none`]) is a structural no-op.
    pub chaos: ChaosSpec,
    /// Seed of the chaos plan; fault verdicts are byte-reproducible per
    /// `(chaos, chaos_seed)` and keyed per operation.
    pub chaos_seed: u64,
    /// Per-die solve containment budget applied to every served campaign
    /// (see [`DieBudget`]; the default disables enforcement).
    pub budget: DieBudget,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 2,
            queue_capacity: 8,
            slice_dies: 16,
            checkpoint_every: 32,
            checkpoint_dir: None,
            retry_after_ms: 250,
            paused: false,
            trace: false,
            io_timeout_ms: 30_000,
            max_request_bytes: 1 << 20,
            chaos: ChaosSpec::none(),
            chaos_seed: 0,
            budget: DieBudget::default(),
        }
    }
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed,
}

impl JobState {
    fn live(self) -> bool {
        matches!(self, JobState::Queued | JobState::Running)
    }

    fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }
}

struct Job {
    tenant: String,
    label: String,
    spec: CampaignSpec,
    spec_wire: String,
    fingerprint: u64,
    total_dies: usize,
    state: JobState,
    next_die: usize,
    aggregate: CampaignAggregate,
    counters: Arc<CampaignCounters>,
    cancel: Arc<AtomicBool>,
    /// Checkpoint generation counter: incremented on every write, persisted
    /// in the checkpoint itself, restored on resume — so the dual-slot
    /// retention always knows which file is newer.
    generation: Arc<AtomicU64>,
    elapsed_ns: u64,
    max_buffer: usize,
    /// Rendered event lines, in order, replayed to late subscribers.
    history: Vec<String>,
    subscribers: Vec<mpsc::Sender<String>>,
}

struct State {
    jobs: BTreeMap<u64, Job>,
    /// Tenants in first-seen order; the round-robin universe.
    tenants: Vec<String>,
    /// Next tenant index to favour.
    rr: usize,
    next_id: u64,
}

/// A snapshot of the service's own counters (the campaign-level metrics
/// live per job; these are the queue/cache/tenancy ones the tentpole adds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Jobs accepted into the queue (including resumed ones).
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs cancelled before completion.
    pub cancelled: u64,
    /// Submissions rejected with `queue_full`.
    pub rejected: u64,
    /// Execution slices run.
    pub slices: u64,
    /// Jobs re-admitted from checkpoint files at startup.
    pub resumed: u64,
    /// Live (queued + running) jobs right now.
    pub queue_depth: usize,
    /// Jobs currently in the running state.
    pub active_jobs: usize,
    /// Shared symbolic-LU cache hits across all jobs.
    pub cache_hits: u64,
    /// Shared symbolic-LU cache misses (first analysis of a pattern).
    pub cache_misses: u64,
    /// Distinct sparsity patterns cached.
    pub cache_patterns: usize,
    /// Jobs whose latest checkpoint was corrupt but whose previous
    /// generation loaded (the recovery ladder's middle rung).
    pub resumed_fallback: u64,
    /// Checkpoints dropped at startup: both generations unreadable, job
    /// started clean (the ladder's last rung, counted and logged).
    pub dropped_corrupt: u64,
    /// Stale `*.tmp` checkpoint files swept at startup (a crash mid-write
    /// leaves one behind; it is junk by construction).
    pub tmp_swept: u64,
    /// Request lines rejected with `request_too_large`.
    pub oversized: u64,
    /// Client connections dropped by the socket read/write timeout.
    pub io_timeouts: u64,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The live-job queue is at capacity; retry after the hinted delay.
    QueueFull {
        /// Backpressure hint for the client: the configured base hint
        /// scaled by the waiting backlog depth at rejection.
        retry_after_ms: u64,
    },
}

/// A successful admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitTicket {
    /// The job id (unique for the service lifetime, stable across
    /// checkpoint/restart).
    pub job: u64,
    /// Live jobs that were ahead of this one at admission.
    pub queued: usize,
}

struct Inner {
    config: ServiceConfig,
    state: Mutex<State>,
    wake: Condvar,
    cache: Arc<SymbolicCache>,
    paused: AtomicBool,
    shutdown: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    slices: AtomicU64,
    resumed: AtomicU64,
    resumed_fallback: AtomicU64,
    dropped_corrupt: AtomicU64,
    tmp_swept: AtomicU64,
    oversized: AtomicU64,
    io_timeouts: AtomicU64,
    /// The chaos plan, present iff the config armed any fault knob.
    chaos: Option<ChaosPlan>,
    trace: Option<Mutex<Trace>>,
    epoch: Instant,
}

/// The campaign service: job table, scheduler thread, shared caches.
///
/// The daemon wraps this in a TCP front end; tests drive it directly.
pub struct Service {
    inner: Arc<Inner>,
    scheduler: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Service").field("stats", &stats).finish()
    }
}

impl Inner {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn trace_event(&self, phase: SpanPhase, kind: SpanKind, n0: u64, n1: u64) {
        if let Some(trace) = &self.trace {
            let mut t = lock(trace);
            let seq = t.events.len() as u32;
            t.events.push(TraceEvent {
                phase,
                kind,
                die: NO_DIE,
                corner: -1,
                attempt: -1,
                label: "",
                seq,
                ts_ns: self.now_ns(),
                worker: 0,
                n0,
                n1,
            });
        }
    }

    fn checkpoint_path(&self, job: u64) -> Option<PathBuf> {
        self.config
            .checkpoint_dir
            .as_ref()
            .map(|d| d.join(format!("job-{job}.json")))
    }

    /// The `.prev` slot: the last good checkpoint, rotated aside before
    /// each new write so a torn or failed primary never erases the only
    /// recoverable state.
    fn prev_checkpoint_path(&self, job: u64) -> Option<PathBuf> {
        self.config
            .checkpoint_dir
            .as_ref()
            .map(|d| d.join(format!("job-{job}.prev.json")))
    }

    /// Writes a job's checkpoint crash-safely: tmp + rename, with the
    /// previous good file rotated into the `.prev` slot first. A kill —
    /// or an injected write fault — at any instant leaves at least one
    /// loadable generation behind: the new primary, the old primary, or
    /// the rotated previous one. Each write stamps a fresh generation
    /// number (persisted inside the checkpoint) and a content checksum,
    /// so the recovery ladder can tell good files from torn ones.
    fn write_checkpoint(
        &self,
        meta: &CheckpointMeta<'_>,
        next_die: usize,
        aggregate: &CampaignAggregate,
    ) {
        let job = meta.job;
        let (Some(path), Some(prev)) = (self.checkpoint_path(job), self.prev_checkpoint_path(job))
        else {
            return;
        };
        let generation = meta.generation.fetch_add(1, Ordering::Relaxed) + 1;
        let campaign = checkpoint_to_json(meta.fingerprint, next_die, generation, aggregate);
        let doc = format!(
            "{{\"schema\":\"{SERVE_CHECKPOINT_SCHEMA}\",\"job\":{job},\"tenant\":\"{}\",\"label\":\"{}\",\"spec\":\"{}\",\"campaign\":\"{}\"}}\n",
            escape(meta.tenant),
            escape(meta.label),
            escape(meta.spec_wire),
            escape(&campaign),
        );
        if path.exists() {
            let _ = std::fs::rename(&path, &prev);
        }
        let tmp = path.with_extension("json.tmp");
        // The chaos plan's write path injects ENOSPC/EIO (write fails, no
        // file), short writes (write fails, partial tmp) and torn writes
        // (write "succeeds" with a truncated tmp — the lying-write case
        // the checksum exists to catch). Verdicts are keyed by
        // `(job, generation)`, so a chaos run is reproducible per seed.
        let written = match &self.chaos {
            Some(plan) => {
                plan.write_file((job << 24) | (generation & 0xff_ffff), &tmp, doc.as_bytes())
            }
            None => std::fs::write(&tmp, doc),
        };
        match written {
            Ok(()) => {
                let _ = std::fs::rename(&tmp, &path);
            }
            Err(_) => {
                // Failed write: count it (degradation must be visible in
                // campaign_metrics.json) and discard the junk tmp. The
                // `.prev` rotation above already preserved the last good
                // state.
                meta.counters
                    .checkpoint_write_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    fn remove_checkpoint(&self, job: u64) {
        if let Some(path) = self.checkpoint_path(job) {
            let _ = std::fs::remove_file(path);
        }
        if let Some(prev) = self.prev_checkpoint_path(job) {
            let _ = std::fs::remove_file(prev);
        }
    }

    /// Appends an event line to a job's history and fans it out to the
    /// live subscribers (dead ones are dropped).
    fn publish_locked(job: &mut Job, line: String) {
        job.subscribers.retain(|tx| tx.send(line.clone()).is_ok());
        job.history.push(line);
    }

    fn publish_die(&self, job_id: u64, die_index: usize, total: usize) {
        let mut state = lock(&self.state);
        if let Some(job) = state.jobs.get_mut(&job_id) {
            let line = die_line(job_id, die_index, die_index as u64 + 1, total);
            Inner::publish_locked(job, line);
        }
    }

    /// Terminalizes a finished job: renders the artifacts, publishes the
    /// `done` event, releases subscribers and deletes the checkpoint.
    fn finalize_done(&self, job_id: u64, job: &mut Job) {
        let metrics =
            job.counters
                .snapshot(self.config.threads.max(1), job.elapsed_ns, job.max_buffer);
        let run = CampaignRun {
            spec: job.spec.clone(),
            aggregate: job.aggregate.clone(),
            metrics,
            trace: None,
        };
        let artifacts = [
            ("campaign_aggregate.json", report::aggregate_json(&run)),
            ("campaign_aggregate.csv", report::aggregate_csv(&run)),
            ("campaign_quarantine.json", report::quarantine_json(&run)),
            ("campaign_quarantine.csv", report::quarantine_csv(&run)),
            ("campaign_metrics.json", report::metrics_json(&run)),
        ];
        let borrowed: Vec<(&str, &str)> = artifacts.iter().map(|(n, t)| (*n, t.as_str())).collect();
        let line = done_line(job_id, &borrowed);
        Inner::publish_locked(job, line);
        job.subscribers.clear();
        job.state = JobState::Done;
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.remove_checkpoint(job_id);
        self.trace_event(SpanPhase::End, SpanKind::Job, job_id, 0);
    }

    fn finalize_cancelled(&self, job_id: u64, job: &mut Job) {
        let line = cancelled_line(job_id);
        Inner::publish_locked(job, line);
        job.subscribers.clear();
        job.state = JobState::Cancelled;
        self.cancelled.fetch_add(1, Ordering::Relaxed);
        self.remove_checkpoint(job_id);
        self.trace_event(SpanPhase::End, SpanKind::Job, job_id, 0);
    }

    fn finalize_failed(&self, job_id: u64, job: &mut Job, detail: &str) {
        let line = format!(
            "{{\"ok\":false,\"type\":\"failed\",\"job\":{job_id},\"detail\":\"{}\"}}",
            escape(detail)
        );
        Inner::publish_locked(job, line);
        job.subscribers.clear();
        job.state = JobState::Failed;
        self.remove_checkpoint(job_id);
        self.trace_event(SpanPhase::End, SpanKind::Job, job_id, 0);
    }

    /// Picks the next `(job id, slice task)` fairly: tenants are visited
    /// round-robin; within a tenant the oldest live job runs first.
    fn pick_next(&self) -> Option<SliceTask> {
        if self.paused.load(Ordering::Relaxed) {
            return None;
        }
        let mut state = lock(&self.state);
        let n = state.tenants.len();
        for i in 0..n {
            let ti = (state.rr + i) % n;
            let tenant = state.tenants[ti].clone();
            let id = state
                .jobs
                .iter()
                .find(|(_, j)| j.tenant == tenant && j.state.live())
                .map(|(id, _)| *id);
            let Some(id) = id else { continue };
            state.rr = (ti + 1) % n;
            let queue_depth = state.jobs.values().filter(|j| j.state.live()).count();
            let Some(job) = state.jobs.get_mut(&id) else {
                continue;
            };
            if job.cancel.load(Ordering::Relaxed) {
                self.finalize_cancelled(id, job);
                // A cancellation consumed this turn; the caller loops.
                return None;
            }
            if job.state == JobState::Queued {
                job.state = JobState::Running;
                // End of the job's queued phase: n1 records the live-job
                // depth observed at first dispatch.
                self.trace_event(SpanPhase::End, SpanKind::Queue, id, queue_depth as u64);
            }
            return Some(SliceTask {
                job: id,
                tenant: job.tenant.clone(),
                label: job.label.clone(),
                spec: job.spec.clone(),
                spec_wire: job.spec_wire.clone(),
                fingerprint: job.fingerprint,
                start_die: job.next_die,
                total: job.total_dies,
                aggregate: job.aggregate.clone(),
                counters: Arc::clone(&job.counters),
                cancel: Arc::clone(&job.cancel),
                generation: Arc::clone(&job.generation),
            });
        }
        None
    }

    /// Runs one bounded slice of a job on the worker pool.
    fn run_slice(self: &Arc<Inner>, task: SliceTask) {
        let slice_started = Instant::now();
        let limit = self.config.slice_dies.max(1);
        let every = self.config.checkpoint_every;
        let mut folded = 0usize;
        let options = StreamOptions {
            trace: false,
            start_die: task.start_die,
            resume: Some(task.aggregate),
            symbolic_cache: Some(Arc::clone(&self.cache)),
            counters: Some(Arc::clone(&task.counters)),
            // Auto lane selection: slices batch whenever the job's spec
            // allows it; accepted bits are identical either way.
            batch: 0,
            chaos: self.config.chaos,
            chaos_seed: self.config.chaos_seed,
            budget: self.config.budget,
        };
        let inner = Arc::clone(self);
        let result = run_campaign_streaming(
            &task.spec,
            self.config.threads,
            &options,
            |die, aggregate| {
                folded += 1;
                inner.publish_die(task.job, die.index, task.total);
                if every > 0 && (die.index + 1) % every == 0 {
                    inner.write_checkpoint(
                        &CheckpointMeta {
                            job: task.job,
                            tenant: &task.tenant,
                            label: &task.label,
                            spec_wire: &task.spec_wire,
                            fingerprint: task.fingerprint,
                            generation: &task.generation,
                            counters: &task.counters,
                        },
                        die.index + 1,
                        aggregate,
                    );
                }
                if task.cancel.load(Ordering::Relaxed)
                    || inner.shutdown.load(Ordering::Relaxed)
                    || folded >= limit
                {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        self.slices.fetch_add(1, Ordering::Relaxed);
        let mut state = lock(&self.state);
        let Some(job) = state.jobs.get_mut(&task.job) else {
            return;
        };
        match result {
            Ok(run) => {
                job.elapsed_ns += slice_started.elapsed().as_nanos() as u64;
                job.max_buffer = job.max_buffer.max(run.metrics.max_reorder_buffer);
                job.aggregate = run.aggregate;
                job.next_die = task.start_die + folded;
                if job.cancel.load(Ordering::Relaxed) {
                    self.finalize_cancelled(task.job, job);
                } else if job.next_die >= job.total_dies {
                    self.finalize_done(task.job, job);
                }
            }
            Err(e) => self.finalize_failed(task.job, job, &format!("{e:?}")),
        }
    }

    /// Shutdown path: checkpoint every live job and release all
    /// subscribers so streaming clients unblock.
    fn checkpoint_all_and_release(&self) {
        let mut state = lock(&self.state);
        let jobs: Vec<u64> = state.jobs.keys().copied().collect();
        for id in jobs {
            let Some(job) = state.jobs.get_mut(&id) else {
                continue;
            };
            if job.state.live() {
                self.write_checkpoint(
                    &CheckpointMeta {
                        job: id,
                        tenant: &job.tenant,
                        label: &job.label,
                        spec_wire: &job.spec_wire,
                        fingerprint: job.fingerprint,
                        generation: &job.generation,
                        counters: &job.counters,
                    },
                    job.next_die,
                    &job.aggregate,
                );
            }
            job.subscribers.clear();
        }
    }
}

struct SliceTask {
    job: u64,
    tenant: String,
    label: String,
    spec: CampaignSpec,
    spec_wire: String,
    fingerprint: u64,
    start_die: usize,
    total: usize,
    aggregate: CampaignAggregate,
    counters: Arc<CampaignCounters>,
    cancel: Arc<AtomicBool>,
    generation: Arc<AtomicU64>,
}

/// The identity fields of a checkpoint file, borrowed from wherever the
/// caller holds them (a `Job` under the state lock, or a `SliceTask`
/// snapshot inside the fold callback).
struct CheckpointMeta<'a> {
    job: u64,
    tenant: &'a str,
    label: &'a str,
    spec_wire: &'a str,
    fingerprint: u64,
    generation: &'a AtomicU64,
    counters: &'a CampaignCounters,
}

/// A job re-admitted from a checkpoint file.
struct ResumedJob {
    id: u64,
    tenant: String,
    label: String,
    spec: CampaignSpec,
    next_die: usize,
    generation: u64,
    aggregate: CampaignAggregate,
}

fn load_checkpoint_file(text: &str) -> Option<ResumedJob> {
    let v = parse(text).ok()?;
    if v.get("schema").and_then(Json::as_str) != Some(SERVE_CHECKPOINT_SCHEMA) {
        return None;
    }
    let id = v.get("job").and_then(Json::as_u64)?;
    let tenant = v.get("tenant").and_then(Json::as_str)?.to_string();
    let label = v.get("label").and_then(Json::as_str)?.to_string();
    let spec = spec_from_json(v.get("spec").and_then(Json::as_str)?).ok()?;
    let cp = checkpoint_from_json(v.get("campaign").and_then(Json::as_str)?).ok()?;
    // The fingerprint binds the aggregate state to the spec: a mismatch
    // means the file pairs state with a spec that did not produce it, and
    // resuming would silently diverge from the uninterrupted run.
    if cp.fingerprint != spec_fingerprint(&spec) {
        return None;
    }
    Some(ResumedJob {
        id,
        tenant,
        label,
        spec,
        next_die: cp.next_die,
        generation: cp.generation,
        aggregate: cp.aggregate,
    })
}

impl Service {
    /// Starts the service: loads any checkpointed jobs from the
    /// configured directory (creating it if needed) and spawns the
    /// scheduler thread.
    ///
    /// # Errors
    ///
    /// I/O errors creating the checkpoint directory.
    pub fn start(config: ServiceConfig) -> std::io::Result<Service> {
        if let Err(e) = config.chaos.validate() {
            return Err(std::io::Error::other(format!("chaos spec: {e}")));
        }
        if let Some(dir) = &config.checkpoint_dir {
            std::fs::create_dir_all(dir)?;
        }
        let paused = config.paused;
        let tracing = config.trace;
        let chaos =
            (!config.chaos.is_none()).then(|| ChaosPlan::new(config.chaos, config.chaos_seed));
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                jobs: BTreeMap::new(),
                tenants: Vec::new(),
                rr: 0,
                next_id: 1,
            }),
            wake: Condvar::new(),
            cache: Arc::new(SymbolicCache::new()),
            paused: AtomicBool::new(paused),
            shutdown: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            slices: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            resumed_fallback: AtomicU64::new(0),
            dropped_corrupt: AtomicU64::new(0),
            tmp_swept: AtomicU64::new(0),
            oversized: AtomicU64::new(0),
            io_timeouts: AtomicU64::new(0),
            chaos,
            trace: tracing.then(|| Mutex::new(Trace::default())),
            epoch: Instant::now(),
            config,
        });
        let service = Service {
            inner: Arc::clone(&inner),
            scheduler: Mutex::new(None),
        };
        service.resume_from_checkpoints();
        let sched_inner = Arc::clone(&inner);
        let handle = std::thread::spawn(move || {
            loop {
                if sched_inner.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                match sched_inner.pick_next() {
                    Some(task) => sched_inner.run_slice(task),
                    None => {
                        let state = lock(&sched_inner.state);
                        // Condvar wait bounded by a timeout: wake-ups are
                        // also driven by submit/cancel/shutdown notifies.
                        let _unused = sched_inner
                            .wake
                            .wait_timeout(state, Duration::from_millis(20));
                    }
                }
            }
            sched_inner.checkpoint_all_and_release();
        });
        *lock(&service.scheduler) = Some(handle);
        Ok(service)
    }

    /// Re-admits checkpointed jobs, walking the recovery ladder per job:
    ///
    /// 1. the primary `job-N.json` (checksum-verified on decode);
    /// 2. on failure, the rotated `job-N.prev.json` — counted as a
    ///    generation fallback;
    /// 3. on failure again, a clean start — the corrupt files are dropped
    ///    with a counted warning rather than crashing the daemon.
    ///
    /// Stale `*.tmp` files (a crash mid-write) are swept and counted
    /// before the scan.
    fn resume_from_checkpoints(&self) {
        let Some(dir) = self.inner.config.checkpoint_dir.clone() else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return;
        };
        let mut primaries: BTreeMap<String, PathBuf> = BTreeMap::new();
        let mut prevs: BTreeMap<String, PathBuf> = BTreeMap::new();
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
                continue;
            };
            if name.ends_with(".tmp") {
                if std::fs::remove_file(&path).is_ok() {
                    self.inner.tmp_swept.fetch_add(1, Ordering::Relaxed);
                    eprintln!("icvbe-serve: swept stale checkpoint tmp file {name}");
                }
            } else if let Some(stem) = name.strip_suffix(".prev.json") {
                prevs.insert(stem.to_string(), path);
            } else if let Some(stem) = name.strip_suffix(".json") {
                primaries.insert(stem.to_string(), path);
            }
        }
        let load = |path: &PathBuf| {
            std::fs::read_to_string(path)
                .ok()
                .and_then(|text| load_checkpoint_file(&text))
        };
        let mut resumed: Vec<(ResumedJob, bool)> = Vec::new();
        let keys: std::collections::BTreeSet<String> =
            primaries.keys().chain(prevs.keys()).cloned().collect();
        for key in keys {
            if let Some(job) = primaries.get(&key).and_then(&load) {
                resumed.push((job, false));
            } else if let Some(job) = prevs.get(&key).and_then(&load) {
                self.inner.resumed_fallback.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "icvbe-serve: checkpoint {key}: latest generation unreadable, \
                     resumed from previous generation"
                );
                resumed.push((job, true));
            } else {
                self.inner.dropped_corrupt.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "icvbe-serve: checkpoint {key}: no readable generation, \
                     dropping (job starts clean if resubmitted)"
                );
            }
        }
        resumed.sort_by_key(|(r, _)| r.id);
        let mut state = lock(&self.inner.state);
        for (r, fallback) in resumed {
            if !state.tenants.iter().any(|t| t == &r.tenant) {
                state.tenants.push(r.tenant.clone());
            }
            state.next_id = state.next_id.max(r.id + 1);
            let total = r.spec.wafer.die_count();
            // Re-synthesize the already-folded dies' stream history so a
            // re-attaching watcher sees the same gap-free event sequence
            // an uninterrupted stream would have carried.
            let history: Vec<String> = (0..r.next_die)
                .map(|i| die_line(r.id, i, i as u64 + 1, total))
                .collect();
            let counters = Arc::new(CampaignCounters::default());
            if fallback {
                // Degradation is visible in the job's own metrics too,
                // not just the service counters.
                counters
                    .checkpoint_generation_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
            }
            state.jobs.insert(
                r.id,
                Job {
                    tenant: r.tenant,
                    label: r.label,
                    spec_wire: spec_to_json(&r.spec),
                    fingerprint: spec_fingerprint(&r.spec),
                    total_dies: total,
                    spec: r.spec,
                    state: JobState::Queued,
                    next_die: r.next_die,
                    aggregate: r.aggregate,
                    counters,
                    cancel: Arc::new(AtomicBool::new(false)),
                    generation: Arc::new(AtomicU64::new(r.generation)),
                    elapsed_ns: 0,
                    max_buffer: 0,
                    history,
                    subscribers: Vec::new(),
                },
            );
            self.inner.submitted.fetch_add(1, Ordering::Relaxed);
            self.inner.resumed.fetch_add(1, Ordering::Relaxed);
            self.inner
                .trace_event(SpanPhase::Begin, SpanKind::Job, r.id, 0);
        }
        self.inner.wake.notify_all();
    }

    /// Submits a campaign under a tenant.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the live-job queue is at capacity.
    /// The spec is assumed already validated (the protocol layer decodes
    /// and validates it before calling in).
    pub fn submit(
        &self,
        tenant: &str,
        label: &str,
        spec: CampaignSpec,
    ) -> Result<SubmitTicket, SubmitError> {
        let inner = &self.inner;
        let mut state = lock(&inner.state);
        let queued = state.jobs.values().filter(|j| j.state.live()).count();
        if queued >= inner.config.queue_capacity {
            // Back-off hint proportional to the backlog the caller is
            // actually behind: jobs admitted but not yet dispatched. A
            // constant hint herds every rejected client back at the same
            // instant regardless of how deep the queue is.
            let waiting = state
                .jobs
                .values()
                .filter(|j| j.state == JobState::Queued)
                .count();
            inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull {
                retry_after_ms: inner
                    .config
                    .retry_after_ms
                    .saturating_mul(1 + waiting as u64),
            });
        }
        if !state.tenants.iter().any(|t| t == tenant) {
            state.tenants.push(tenant.to_string());
        }
        let id = state.next_id;
        state.next_id += 1;
        let spec_wire = spec_to_json(&spec);
        let fingerprint = spec_fingerprint(&spec);
        let total = spec.wafer.die_count();
        let job = Job {
            tenant: tenant.to_string(),
            label: label.to_string(),
            spec_wire: spec_wire.clone(),
            fingerprint,
            total_dies: total,
            aggregate: CampaignAggregate::new(&spec),
            spec,
            state: JobState::Queued,
            next_die: 0,
            counters: Arc::new(CampaignCounters::default()),
            cancel: Arc::new(AtomicBool::new(false)),
            generation: Arc::new(AtomicU64::new(0)),
            elapsed_ns: 0,
            max_buffer: 0,
            history: Vec::new(),
            subscribers: Vec::new(),
        };
        // Admission checkpoint: a daemon killed before the first cadence
        // checkpoint still knows about the job after restart.
        inner.write_checkpoint(
            &CheckpointMeta {
                job: id,
                tenant,
                label,
                spec_wire: &spec_wire,
                fingerprint,
                generation: &job.generation,
                counters: &job.counters,
            },
            0,
            &job.aggregate,
        );
        state.jobs.insert(id, job);
        inner.submitted.fetch_add(1, Ordering::Relaxed);
        inner.trace_event(SpanPhase::Begin, SpanKind::Job, id, 0);
        inner.trace_event(SpanPhase::Begin, SpanKind::Queue, id, 0);
        inner.wake.notify_all();
        Ok(SubmitTicket { job: id, queued })
    }

    /// Attaches to a job's event stream: the receiver first yields the
    /// job's full history (in order), then live events as they happen,
    /// ending with the terminal `done`/`cancelled`/`failed` line. Returns
    /// `None` for an unknown job id.
    #[must_use]
    pub fn subscribe(&self, job_id: u64) -> Option<mpsc::Receiver<String>> {
        let mut state = lock(&self.inner.state);
        let job = state.jobs.get_mut(&job_id)?;
        let (tx, rx) = mpsc::channel();
        for line in &job.history {
            // Receiver is unbounded and in-hand; failure is impossible
            // here, but stay silent rather than panic in a service.
            let _ = tx.send(line.clone());
        }
        if job.state.live() {
            job.subscribers.push(tx);
        }
        Some(rx)
    }

    /// Finds the newest job with `label` (optionally restricted to one
    /// tenant).
    #[must_use]
    pub fn find_job(&self, tenant: Option<&str>, label: &str) -> Option<u64> {
        let state = lock(&self.inner.state);
        state
            .jobs
            .iter()
            .rev()
            .find(|(_, j)| j.label == label && tenant.is_none_or(|t| j.tenant == t))
            .map(|(id, _)| *id)
    }

    /// Requests cancellation. Queued jobs terminalize immediately;
    /// running jobs stop at the next die boundary. Returns `false` for an
    /// unknown or already-terminal job.
    pub fn cancel(&self, job_id: u64) -> bool {
        let inner = &self.inner;
        let mut state = lock(&inner.state);
        let Some(job) = state.jobs.get_mut(&job_id) else {
            return false;
        };
        if !job.state.live() {
            return false;
        }
        job.cancel.store(true, Ordering::Relaxed);
        if job.state == JobState::Queued {
            inner.finalize_cancelled(job_id, job);
        }
        inner.wake.notify_all();
        true
    }

    /// Pauses or resumes the scheduler (jobs still queue while paused).
    pub fn set_paused(&self, paused: bool) {
        self.inner.paused.store(paused, Ordering::Relaxed);
        self.inner.wake.notify_all();
    }

    /// Current service counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let inner = &self.inner;
        let state = lock(&inner.state);
        ServiceStats {
            submitted: inner.submitted.load(Ordering::Relaxed),
            completed: inner.completed.load(Ordering::Relaxed),
            cancelled: inner.cancelled.load(Ordering::Relaxed),
            rejected: inner.rejected.load(Ordering::Relaxed),
            slices: inner.slices.load(Ordering::Relaxed),
            resumed: inner.resumed.load(Ordering::Relaxed),
            queue_depth: state.jobs.values().filter(|j| j.state.live()).count(),
            active_jobs: state
                .jobs
                .values()
                .filter(|j| j.state == JobState::Running)
                .count(),
            cache_hits: inner.cache.hits(),
            cache_misses: inner.cache.misses(),
            cache_patterns: inner.cache.patterns(),
            resumed_fallback: inner.resumed_fallback.load(Ordering::Relaxed),
            dropped_corrupt: inner.dropped_corrupt.load(Ordering::Relaxed),
            tmp_swept: inner.tmp_swept.load(Ordering::Relaxed),
            oversized: inner.oversized.load(Ordering::Relaxed),
            io_timeouts: inner.io_timeouts.load(Ordering::Relaxed),
        }
    }

    /// The configured client-socket read/write timeout, if any.
    #[must_use]
    pub fn io_timeout(&self) -> Option<Duration> {
        let ms = self.inner.config.io_timeout_ms;
        (ms > 0).then(|| Duration::from_millis(ms))
    }

    /// Maximum accepted request-line length in bytes.
    #[must_use]
    pub fn max_request_bytes(&self) -> usize {
        self.inner.config.max_request_bytes.max(1)
    }

    /// Records a connection dropped by the socket timeout (load shedding,
    /// surfaced in `status`).
    pub fn note_io_timeout(&self) {
        self.inner.io_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request line rejected as `request_too_large`.
    pub fn note_oversized(&self) {
        self.inner.oversized.fetch_add(1, Ordering::Relaxed);
    }

    /// The chaos verdict for client connection `op` ([`SocketFault::None`]
    /// when no chaos plan is armed).
    #[must_use]
    pub fn chaos_socket_fault(&self, op: u64) -> SocketFault {
        self.inner
            .chaos
            .as_ref()
            .map_or(SocketFault::None, |plan| plan.socket_fault(op))
    }

    /// Renders the `status` response line.
    #[must_use]
    pub fn status_json(&self) -> String {
        let s = self.stats();
        let state = lock(&self.inner.state);
        let jobs: Vec<String> = state
            .jobs
            .iter()
            .map(|(id, j)| {
                format!(
                    "{{\"job\":{id},\"tenant\":\"{}\",\"label\":\"{}\",\"state\":\"{}\",\"folded\":{},\"total\":{}}}",
                    escape(&j.tenant),
                    escape(&j.label),
                    j.state.label(),
                    j.next_die,
                    j.total_dies
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"ok\":true,\"type\":\"status\",\"version\":{version},",
                "\"paused\":{paused},\"queue_depth\":{depth},\"active_jobs\":{active},",
                "\"counters\":{{\"submitted\":{sub},\"completed\":{comp},",
                "\"cancelled\":{canc},\"rejected\":{rej},\"slices\":{slices},",
                "\"resumed\":{res},\"resumed_fallback\":{resfb},",
                "\"dropped_corrupt\":{dropc},\"tmp_swept\":{tmps},",
                "\"oversized\":{over},\"io_timeouts\":{tmo}}},",
                "\"cache\":{{\"hits\":{hits},\"misses\":{misses},\"patterns\":{pat}}},",
                "\"jobs\":[{jobs}]}}"
            ),
            version = PROTOCOL_VERSION,
            paused = self.inner.paused.load(Ordering::Relaxed),
            depth = s.queue_depth,
            active = s.active_jobs,
            sub = s.submitted,
            comp = s.completed,
            canc = s.cancelled,
            rej = s.rejected,
            slices = s.slices,
            res = s.resumed,
            resfb = s.resumed_fallback,
            dropc = s.dropped_corrupt,
            tmps = s.tmp_swept,
            over = s.oversized,
            tmo = s.io_timeouts,
            hits = s.cache_hits,
            misses = s.cache_misses,
            pat = s.cache_patterns,
            jobs = jobs.join(","),
        )
    }

    /// True once [`Service::request_shutdown`] has been called.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.inner.shutdown.load(Ordering::Relaxed)
    }

    /// Asks the scheduler to stop after the current slice. Live jobs are
    /// checkpointed on the way out; streaming clients are released.
    pub fn request_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner.wake.notify_all();
    }

    /// Blocks until the scheduler thread has exited (checkpoints written).
    pub fn join(&self) {
        let handle = lock(&self.scheduler).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// Takes the service-level trace (job/queue spans), if tracing was
    /// enabled. The trace is drained: a second call returns an empty one.
    #[must_use]
    pub fn take_trace(&self) -> Option<Trace> {
        self.inner
            .trace
            .as_ref()
            .map(|t| std::mem::take(&mut *lock(t)))
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.request_shutdown();
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icvbe_campaign::spec::WaferMap;

    fn tiny_spec(seed: u64) -> CampaignSpec {
        let mut s = CampaignSpec::paper_default(WaferMap::full(2, 2), seed);
        s.corners.truncate(1);
        s
    }

    fn drain_until_done(rx: &mpsc::Receiver<String>) -> Vec<String> {
        let mut lines = Vec::new();
        while let Ok(line) = rx.recv_timeout(Duration::from_secs(60)) {
            let terminal = !line.contains("\"type\":\"die\"");
            lines.push(line);
            if terminal {
                break;
            }
        }
        lines
    }

    #[test]
    fn runs_a_job_to_completion_with_streamed_dies() {
        let service = Service::start(ServiceConfig {
            threads: 1,
            slice_dies: 2,
            ..ServiceConfig::default()
        })
        .unwrap();
        let ticket = service.submit("t", "lot", tiny_spec(3)).unwrap();
        let rx = service.subscribe(ticket.job).unwrap();
        let lines = drain_until_done(&rx);
        // 4 dies + done, in order.
        assert_eq!(lines.len(), 5);
        for (i, line) in lines[..4].iter().enumerate() {
            assert!(line.contains(&format!("\"die\":{i},")), "{line}");
        }
        assert!(lines[4].contains("\"type\":\"done\""));
        let stats = service.stats();
        assert_eq!(stats.completed, 1);
        assert!(stats.cache_hits > 0, "shared cache saw no hits");
    }

    #[test]
    fn queue_full_is_deterministic_when_paused() {
        let service = Service::start(ServiceConfig {
            queue_capacity: 2,
            paused: true,
            ..ServiceConfig::default()
        })
        .unwrap();
        assert!(service.submit("a", "1", tiny_spec(1)).is_ok());
        assert!(service.submit("a", "2", tiny_spec(2)).is_ok());
        // Paused daemon: both live jobs are still waiting (never
        // dispatched), so the hint is base × (1 + 2 waiting) = 750 —
        // deterministically, since nothing can start running.
        match service.submit("a", "3", tiny_spec(3)) {
            Err(SubmitError::QueueFull { retry_after_ms }) => assert_eq!(retry_after_ms, 750),
            other => panic!("expected queue_full, got {other:?}"),
        }
        assert_eq!(service.stats().rejected, 1);
    }

    #[test]
    fn queue_full_hint_scales_with_backlog_depth() {
        // The hint must reflect load, not a constant: a deeper waiting
        // backlog yields a proportionally longer back-off.
        for (capacity, expect) in [(1usize, 500u64), (3, 1000), (5, 1500)] {
            let service = Service::start(ServiceConfig {
                queue_capacity: capacity,
                paused: true,
                ..ServiceConfig::default()
            })
            .unwrap();
            for i in 0..capacity {
                assert!(service.submit("t", "fill", tiny_spec(i as u64)).is_ok());
            }
            match service.submit("t", "overflow", tiny_spec(99)) {
                Err(SubmitError::QueueFull { retry_after_ms }) => {
                    assert_eq!(retry_after_ms, expect, "capacity {capacity}");
                }
                other => panic!("expected queue_full, got {other:?}"),
            }
        }
    }

    #[test]
    fn cancel_before_dispatch_terminalizes_immediately() {
        let service = Service::start(ServiceConfig {
            paused: true,
            ..ServiceConfig::default()
        })
        .unwrap();
        let ticket = service.submit("t", "x", tiny_spec(9)).unwrap();
        assert!(service.cancel(ticket.job));
        assert!(!service.cancel(ticket.job), "already terminal");
        let rx = service.subscribe(ticket.job).unwrap();
        let lines = drain_until_done(&rx);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"type\":\"cancelled\""));
    }
}
