//! Design loop on the Fig.-3 bandgap cell: trim the PTAT gain for zero
//! temperature coefficient, inspect the classic bell curve, then watch the
//! substrate parasitic wreck it and RadjA partially rescue it.
//!
//! Run with `cargo run --example bandgap_design`.

use icvbe::bandgap::card::st_bicmos_pnp;
use icvbe::bandgap::cell::BandgapCell;
use icvbe::bandgap::radj::trim_for_flatness;
use icvbe::bandgap::vref::{figure8_grid, VrefCurve};
use icvbe::spice::bjt::SubstrateJunction;
use icvbe::units::{Kelvin, Ohm, Volt};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The clean design: trim R_ptat for zero TC at 25 °C.
    let cell = BandgapCell::nominal(st_bicmos_pnp());
    let r = cell.calibrate(Kelvin::new(298.15))?;
    println!("trimmed R_ptat = {:.1} ohm", r.value());

    let grid = figure8_grid();
    let clean = VrefCurve::sweep(&cell, &grid)?;
    println!(
        "clean cell: shape {:?}, spread {:.2} mV, peak near {:.1} °C",
        clean.shape(),
        clean.spread() * 1e3,
        clean
            .peak_temperature()
            .map(|t| t.to_celsius().value())
            .unwrap_or(f64::NAN)
    );

    // 2. Silicon reality: substrate leakage + op-amp offset.
    let dirty = BandgapCell::nominal(st_bicmos_pnp())
        .with_substrate(SubstrateJunction::bicmos_default())
        .with_opamp_offset(Volt::new(0.002));
    dirty.r_ptat.set(cell.r_ptat.get());
    let measured = VrefCurve::sweep(&dirty, &grid)?;
    println!(
        "imperfect cell: shape {:?}, spread {:.2} mV, end-to-end slope {:+.1} uV/K",
        measured.shape(),
        measured.spread() * 1e3,
        measured.end_to_end_slope() * 1e6
    );

    // 3. RadjA trim search (the paper sweeps 0 / 1.8k / 2.5k / 2.7k).
    let candidates: Vec<Ohm> = (0..=30).map(|i| Ohm::new(100.0 * i as f64)).collect();
    let (best, spread) = trim_for_flatness(&dirty, &candidates, &grid)?;
    println!(
        "best RadjA = {:.0} ohm -> spread {:.2} mV (untrimmed {:.2} mV)",
        best.value(),
        spread * 1e3,
        measured.spread() * 1e3
    );

    println!("\nVREF(T) after trim:");
    let trimmed = VrefCurve::sweep(&dirty, &grid)?;
    for (t, v) in trimmed.temperatures.iter().zip(&trimmed.vref) {
        println!("  {:>7.1} °C  {:.5} V", t.to_celsius().value(), v.value());
    }
    Ok(())
}
