//! A lot-level extraction campaign: run the analytical method on a seeded
//! five-die lot and report the spread of the extracted parameters — the
//! statistical view the paper's Table 1 hints at.
//!
//! Run with `cargo run --example extraction_campaign`.

use icvbe::core::meijer::{extract, MeijerMeasurement, MeijerPoint};
use icvbe::core::tempcomp::{temperature_from_dvbe_corrected, PairCurrents};
use icvbe::instrument::bench::TestStructureBench;
use icvbe::instrument::montecarlo::SampleFactory;
use icvbe::numerics::stats::sample_stats;
use icvbe::units::{Ampere, Celsius, Kelvin};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lot = SampleFactory::seeded(2002).draw_lot(5);
    let setpoints = [-25.0, 25.0, 75.0].map(Celsius::new);

    let mut egs = Vec::new();
    let mut xtis = Vec::new();
    println!(
        "{:<8} {:>12} {:>8} {:>12} {:>12}",
        "sample", "EG [eV]", "XTI", "T1 comp [K]", "T3 comp [K]"
    );
    for sample in &lot {
        let mut bench = TestStructureBench::paper_bench(1000 + sample.id as u64);
        let pts = bench.run_pair_campaign(sample, Ampere::new(1e-6), &setpoints)?;
        let refp = &pts[1];
        let compute = |p: &icvbe::instrument::bench::PairCampaignPoint| {
            let x = PairCurrents {
                ica_t: p.ic_a,
                icb_t: p.ic_b,
                ica_ref: refp.ic_a,
                icb_ref: refp.ic_b,
            }
            .x_factor()?;
            temperature_from_dvbe_corrected(p.dvbe, refp.dvbe, refp.sensor_temperature, x)
        };
        let t1 = compute(&pts[0])?;
        let t3 = compute(&pts[2])?;
        let mk = |p: &icvbe::instrument::bench::PairCampaignPoint, t: Kelvin| MeijerPoint {
            temperature: t,
            vbe: p.vbe_a,
            ic: p.ic_a,
        };
        let fit = extract(&MeijerMeasurement {
            cold: mk(&pts[0], t1),
            reference: mk(&pts[1], refp.sensor_temperature),
            hot: mk(&pts[2], t3),
        })?;
        println!(
            "{:<8} {:>12.4} {:>8.2} {:>12.2} {:>12.2}",
            sample.id,
            fit.eg.value(),
            fit.xti,
            t1.value(),
            t3.value()
        );
        egs.push(fit.eg.value());
        xtis.push(fit.xti);
    }

    let eg_stats = sample_stats(&egs)?;
    let xti_stats = sample_stats(&xtis)?;
    println!(
        "\nEG:  mean {:.4} eV, sigma {:.1} meV   (virtual-lot truth: 1.1324 eV)",
        eg_stats.mean,
        eg_stats.std_dev() * 1e3
    );
    println!(
        "XTI: mean {:.2},    sigma {:.2}         (virtual-lot truth: 2.58)",
        xti_stats.mean,
        xti_stats.std_dev()
    );
    println!(
        "\nThe extracted pairs are *effective* parameters: each lies on its\n\
         die's characteristic straight, which is what makes them reproduce\n\
         in-circuit behaviour (see EXPERIMENTS.md, FIG8)."
    );
    Ok(())
}
