//! Compare the five published `EG(T)` models of the paper's Fig. 1 and
//! derive the SPICE `EG`/`XTI` pair from first-principles physics (the
//! eq.-12 identification).
//!
//! Run with `cargo run --example eg_models`.

use icvbe::devphys::eg::figure1_models;
use icvbe::devphys::narrowing::BandgapNarrowing;
use icvbe::devphys::saturation::PhysicalIsLaw;
use icvbe::units::{Ampere, Kelvin};

fn main() {
    println!("Silicon bandgap models (paper Fig. 1):");
    println!(
        "{:<6} {:>10} {:>10} {:>10}",
        "model", "EG(0K)", "EG(300K)", "EG(450K)"
    );
    for m in figure1_models() {
        println!(
            "{:<6} {:>9.4}  {:>9.4}  {:>9.4}",
            m.name(),
            m.eg_at_zero().value(),
            m.eg(Kelvin::new(300.0)).value(),
            m.eg(Kelvin::new(450.0)).value(),
        );
    }

    // The eq.-12 identification: physics -> SPICE parameters.
    let physical = PhysicalIsLaw::typical_silicon(Ampere::new(2e-17), Kelvin::new(298.15));
    let spice = physical.to_spice_law();
    println!("\neq.-12 identification for a typical Si bipolar device:");
    println!("  EG  = EG5(0) - dEGbgn = {:.4} eV", spice.eg().value());
    println!("  XTI = 4 - EN - Erho - b/k = {:.3}", spice.xti());

    // The identification is exact: physical and SPICE laws coincide.
    let mut worst: f64 = 0.0;
    for t in (220..=400).step_by(20) {
        let t = Kelvin::new(t as f64);
        let ratio = physical.is_at(t).value() / spice.is_at(t).value();
        worst = worst.max((ratio - 1.0).abs());
    }
    println!("  worst physical-vs-SPICE IS(T) mismatch over 220..400 K: {worst:.2e}");

    // Bandgap narrowing magnitudes the paper quotes.
    println!("\nbandgap narrowing:");
    println!(
        "  Si bipolar emitter: {} meV (paper: ~45 meV)",
        BandgapNarrowing::silicon_bipolar().delta_eg().value() * 1e3
    );
    println!(
        "  SiGe HBT:           {} meV (paper: ~150 meV)",
        BandgapNarrowing::sige_hbt().delta_eg().value() * 1e3
    );
}
