//! Quickstart: extract `EG` and `XTI` from a `VBE(T)` characteristic two
//! ways — the classical best fit and the paper's analytical method — and
//! see that they agree when the temperatures are honest.
//!
//! Run with `cargo run --example quickstart`.

use icvbe::core::bestfit::fit_eg_xti;
use icvbe::core::data::VbeCurve;
use icvbe::core::meijer::{extract, MeijerMeasurement, MeijerPoint};
use icvbe::devphys::saturation::SpiceIsLaw;
use icvbe::devphys::vbe::vbe_for_current;
use icvbe::units::{Ampere, ElectronVolt, Kelvin};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground truth: the device's saturation-current temperature law.
    let truth_eg = 1.1324;
    let truth_xti = 2.58;
    let law = SpiceIsLaw::new(
        Ampere::new(2e-17),
        Kelvin::new(298.15),
        ElectronVolt::new(truth_eg),
        truth_xti,
    );
    let ic = Ampere::new(1e-6);

    // A clean VBE(T) characteristic, -50..125 °C in 25 K steps.
    let curve = VbeCurve::from_points((0..8).map(|i| {
        let t = Kelvin::new(223.15 + 25.0 * i as f64);
        (t, vbe_for_current(&law, ic, t), ic)
    }))?;

    // Route 1: the classical least-squares best fit of eq. 13.
    let best = fit_eg_xti(&curve, 3)?;
    println!(
        "best fit:    EG = {:.4} eV, XTI = {:.3} (rms residual {:.1e} V)",
        best.eg.value(),
        best.xti,
        best.rms_residual_volts
    );

    // Route 2: the analytical method — three temperatures, no regression.
    let point = |t: f64| MeijerPoint {
        temperature: Kelvin::new(t),
        vbe: vbe_for_current(&law, ic, Kelvin::new(t)),
        ic,
    };
    let analytical = extract(&MeijerMeasurement {
        cold: point(248.15),
        reference: point(298.15),
        hot: point(348.15),
    })?;
    println!(
        "analytical:  EG = {:.4} eV, XTI = {:.3}",
        analytical.eg.value(),
        analytical.xti
    );

    println!("ground truth: EG = {truth_eg:.4} eV, XTI = {truth_xti:.3}");
    assert!((best.eg.value() - truth_eg).abs() < 1e-6);
    assert!((analytical.eg.value() - truth_eg).abs() < 1e-6);
    println!("both methods recover the truth on honest data ✓");
    Ok(())
}
