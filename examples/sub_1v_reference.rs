//! Extension demo: the sub-1V current-mode bandgap (Banba, the paper's
//! ref. [10]) built from the same substrates, showing why accurate
//! `EG`/`XTI` matter even more below 1 V.
//!
//! Run with `cargo run --example sub_1v_reference`.

use icvbe::bandgap::banba::BanbaCell;
use icvbe::bandgap::card::{st_bicmos_pnp, standard_model_card};
use icvbe::units::Kelvin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Design on the truth card.
    let cell = BanbaCell::nominal(st_bicmos_pnp());
    let r0 = cell.calibrate(Kelvin::new(298.15))?;
    println!("trimmed R0 = {:.1} kohm", r0.value() / 1e3);

    println!("\nVREF(T) of the 0.6-V current-mode reference:");
    let mut warm: Option<Vec<f64>> = None;
    for i in 0..8 {
        let t = Kelvin::new(223.15 + 25.0 * i as f64);
        let r = cell.solve_with(t, warm.as_deref())?;
        println!(
            "  {:>7.2} °C  VREF = {:.5} V  (leg current {:.3} uA)",
            t.to_celsius().value(),
            r.vref.value(),
            r.leg_current * 1e6
        );
        warm = Some(r.solution);
    }

    // What happens if the designer had trimmed against the generic foundry
    // card instead (wrong EG/XTI)?
    let wrong = BanbaCell::nominal(standard_model_card());
    let r0_wrong = wrong.calibrate(Kelvin::new(298.15))?;
    let silicon = BanbaCell::nominal(st_bicmos_pnp());
    silicon.r0.set(r0_wrong.value());
    let cold = silicon.solve(Kelvin::new(223.15))?.vref.value();
    let hot = silicon.solve(Kelvin::new(398.15))?.vref.value();
    println!(
        "\ntrim transferred from the generic card: end-to-end drift {:+.2} mV \
         (the cost of wrong EG/XTI at 0.6 V full scale)",
        (hot - cold) * 1e3
    );
    Ok(())
}
