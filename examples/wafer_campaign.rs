//! A 1,000-die wafer extraction campaign, run twice — single-threaded
//! and on every available core — to demonstrate the engine's determinism
//! guarantee: the aggregate artifacts are bit-identical.
//!
//! ```text
//! cargo run --release --example wafer_campaign
//! ```

use icvbe::campaign::report::aggregate_json;
use icvbe::campaign::spec::WaferMap;
use icvbe::campaign::{run_campaign, CampaignSpec};
use icvbe::repro::campaign_cli::{diameter_for_dies, render};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let diameter = diameter_for_dies(1000);
    let wafer = WaferMap::circular(diameter);
    println!(
        "wafer: diameter {diameter} dies, {} dies total\n",
        wafer.die_count()
    );
    let spec = CampaignSpec::paper_default(wafer, 2002);

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let serial = run_campaign(&spec, 1)?;
    let parallel = run_campaign(&spec, threads)?;

    println!("{}", render(&parallel));

    let a = aggregate_json(&serial);
    let b = aggregate_json(&parallel);
    assert_eq!(a, b, "aggregate reports must be bit-identical");
    println!(
        "determinism: 1-thread and {threads}-thread aggregate JSON identical \
         ({} bytes)",
        a.len()
    );
    if parallel.metrics.elapsed_ns > 0 && serial.metrics.elapsed_ns > 0 {
        println!(
            "speedup: {:.2}x ({} threads)",
            serial.metrics.elapsed_ns as f64 / parallel.metrics.elapsed_ns as f64,
            threads
        );
    }
    Ok(())
}
