//! A 1,000-die wafer extraction campaign, run twice — single-threaded
//! and on every available core — to demonstrate the engine's determinism
//! guarantee: the aggregate artifacts are bit-identical, and so is the
//! structured span trace once its wall-clock fields are masked.
//!
//! ```text
//! cargo run --release --example wafer_campaign
//! ```
//!
//! The parallel run captures a trace; the example writes
//! `artifacts/campaign_trace.json` (open it at
//! <https://ui.perfetto.dev>) and `artifacts/campaign_profile.folded`
//! (feed it to any flamegraph tool) and prints the slowest dies ranked
//! from the spans.

use icvbe::campaign::report::aggregate_json;
use icvbe::campaign::spec::WaferMap;
use icvbe::campaign::{run_campaign_with, CampaignSpec, RunOptions};
use icvbe::repro::campaign_cli::{diameter_for_dies, render};
use icvbe::trace::mask_nondeterministic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let diameter = diameter_for_dies(1000);
    let wafer = WaferMap::circular(diameter);
    println!(
        "wafer: diameter {diameter} dies, {} dies total\n",
        wafer.die_count()
    );
    let spec = CampaignSpec::paper_default(wafer, 2002);

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let options = RunOptions {
        trace: true,
        ..RunOptions::default()
    };
    let serial = run_campaign_with(&spec, 1, &options)?;
    let parallel = run_campaign_with(&spec, threads, &options)?;

    println!("{}", render(&parallel));

    let a = aggregate_json(&serial);
    let b = aggregate_json(&parallel);
    assert_eq!(a, b, "aggregate reports must be bit-identical");
    println!(
        "determinism: 1-thread and {threads}-thread aggregate JSON identical \
         ({} bytes)",
        a.len()
    );

    // The trace obeys the same contract: after masking timestamps, worker
    // ids and queue-occupancy samples, the span stream — kinds, die and
    // corner stamps, solver strategies, Newton iteration payloads — is
    // byte-identical at any thread count.
    let (st, pt) = match (&serial.trace, &parallel.trace) {
        (Some(s), Some(p)) => (s, p),
        _ => return Err("trace requested but not captured".into()),
    };
    let masked = mask_nondeterministic(&pt.chrome_json());
    assert_eq!(
        mask_nondeterministic(&st.chrome_json()),
        masked,
        "masked span traces must be bit-identical"
    );
    println!(
        "determinism: masked span trace identical too ({} events, {} bytes)",
        pt.events.len(),
        masked.len()
    );

    std::fs::create_dir_all("artifacts")?;
    std::fs::write("artifacts/campaign_trace.json", pt.chrome_json())?;
    std::fs::write("artifacts/campaign_profile.folded", pt.folded())?;
    println!("wrote artifacts/campaign_trace.json (load in https://ui.perfetto.dev)");
    println!("wrote artifacts/campaign_profile.folded (collapsed stacks for flamegraphs)");

    if parallel.metrics.elapsed_ns > 0 && serial.metrics.elapsed_ns > 0 {
        println!(
            "speedup: {:.2}x ({} threads)",
            serial.metrics.elapsed_ns as f64 / parallel.metrics.elapsed_ns as f64,
            threads
        );
    }
    Ok(())
}
