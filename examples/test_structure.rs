//! The paper's headline flow, end to end: measure a virtual die on the
//! virtual bench, compute the die temperatures from the test structure's
//! own `dVBE`, extract `EG`/`XTI` analytically, and compare with the
//! sensor-temperature extraction.
//!
//! Run with `cargo run --example test_structure`.

use icvbe::core::meijer::{extract, MeijerMeasurement, MeijerPoint};
use icvbe::core::tempcomp::{temperature_from_dvbe_corrected, PairCurrents};
use icvbe::instrument::bench::TestStructureBench;
use icvbe::instrument::montecarlo::SampleFactory;
use icvbe::units::{Ampere, Celsius, Kelvin};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sample = SampleFactory::seeded(2002).draw(1);
    let mut bench = TestStructureBench::paper_bench(61);
    println!(
        "die sample 1: ground truth EG = {:.4} eV, XTI = {:.2}",
        sample.card.eg.value(),
        sample.card.xti
    );

    // Soak at -25 / 25 / 75 °C and measure the pair structure.
    let setpoints = [-25.0, 25.0, 75.0].map(Celsius::new);
    let pts = bench.run_pair_campaign(&sample, Ampere::new(1e-6), &setpoints)?;
    println!(
        "\n{:<10} {:>10} {:>10} {:>11}",
        "setpoint", "sensor[K]", "die[K]", "dVBE[mV]"
    );
    for p in &pts {
        println!(
            "{:<10.1} {:>10.2} {:>10.2} {:>11.4}",
            p.setpoint.to_celsius().value(),
            p.sensor_temperature.value(),
            p.die_temperature.value(),
            p.dvbe.value() * 1e3
        );
    }

    // Compute the die temperatures from dVBE (eq. 19 + eq. 20 correction).
    let refp = &pts[1];
    let compute = |p: &icvbe::instrument::bench::PairCampaignPoint| {
        let x = PairCurrents {
            ica_t: p.ic_a,
            icb_t: p.ic_b,
            ica_ref: refp.ic_a,
            icb_ref: refp.ic_b,
        }
        .x_factor()?;
        temperature_from_dvbe_corrected(p.dvbe, refp.dvbe, refp.sensor_temperature, x)
    };
    let t1 = compute(&pts[0])?;
    let t3 = compute(&pts[2])?;
    println!(
        "\ncomputed die temperatures: T1 = {:.2} K, T3 = {:.2} K",
        t1.value(),
        t3.value()
    );
    println!(
        "sensor gaps (measured - computed): cold {:+.2} K, hot {:+.2} K",
        pts[0].sensor_temperature.value() - t1.value(),
        pts[2].sensor_temperature.value() - t3.value()
    );

    // Extract both ways.
    let mk = |p: &icvbe::instrument::bench::PairCampaignPoint, t: Kelvin| MeijerPoint {
        temperature: t,
        vbe: p.vbe_a,
        ic: p.ic_a,
    };
    let sensor = extract(&MeijerMeasurement {
        cold: mk(&pts[0], pts[0].sensor_temperature),
        reference: mk(&pts[1], pts[1].sensor_temperature),
        hot: mk(&pts[2], pts[2].sensor_temperature),
    })?;
    let computed = extract(&MeijerMeasurement {
        cold: mk(&pts[0], t1),
        reference: mk(&pts[1], refp.sensor_temperature),
        hot: mk(&pts[2], t3),
    })?;
    println!(
        "\nextraction with sensor temperatures:   EG = {:.4} eV, XTI = {:.2}",
        sensor.eg.value(),
        sensor.xti
    );
    println!(
        "extraction with computed temperatures: EG = {:.4} eV, XTI = {:.2}",
        computed.eg.value(),
        computed.xti
    );
    println!(
        "\nThe two cards sit on different characteristic straights; Fig. 8\n\
         shows that only the computed-temperature card reproduces the\n\
         bandgap's measured VREF(T). Run `cargo run -p icvbe-repro --bin\n\
         repro fig8` to see it."
    );
    Ok(())
}
