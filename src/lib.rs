//! `icvbe` — a full reproduction of *"Test Structure for IC(VBE) Parameter
//! Determination of Low Voltage Applications"* (Rahajandraibe et al., DATE
//! 2002) as a Rust workspace.
//!
//! The paper proposes extracting the SPICE `EG`/`XTI` saturation-current
//! temperature parameters of a BJT *analytically* from a programmable
//! bandgap test cell, computing the die temperatures from the cell's own
//! PTAT `dVBE` instead of trusting an external sensor. This crate is a
//! facade re-exporting the whole stack:
//!
//! - [`units`] — typed physical quantities and constants,
//! - [`numerics`] — linear algebra, root finding, least squares,
//! - [`devphys`] — bandgap/carrier/transport physics (paper eqs. 1-12),
//! - [`spice`] — a DC circuit simulator with a Gummel-Poon BJT,
//! - [`thermal`] — package thermal path and electro-thermal fixed point,
//! - [`instrument`] — virtual SMU, Pt100, Monte-Carlo process variation,
//! - [`core`] — the extraction methods (best fit, Meijer analytical,
//!   dVBE temperature computation, sensitivity studies),
//! - [`bandgap`] — the Fig.-3 test cell and `VREF(T)` analyses,
//! - [`repro`] — one runnable experiment per table/figure of the paper,
//! - [`campaign`] — wafer-scale parallel extraction campaigns with
//!   deterministic seeding and streaming aggregation,
//! - [`trace`] — structured span tracing with deterministic logical
//!   ordering and Chrome trace-event / collapsed-stack exports,
//! - [`serve`] — the campaign service: a multi-tenant daemon with a
//!   bounded job queue, fair slice scheduling, shared symbolic-LU caches,
//!   streaming results and checkpoint/resume.
//!
//! # Quickstart
//!
//! Extract `EG`/`XTI` from a synthetic `VBE(T)` characteristic:
//!
//! ```
//! use icvbe::core::bestfit::fit_eg_xti;
//! use icvbe::core::data::VbeCurve;
//! use icvbe::devphys::saturation::SpiceIsLaw;
//! use icvbe::devphys::vbe::vbe_for_current;
//! use icvbe::units::{Ampere, ElectronVolt, Kelvin};
//!
//! let law = SpiceIsLaw::new(Ampere::new(2e-17), Kelvin::new(298.15),
//!                           ElectronVolt::new(1.1324), 2.58);
//! let ic = Ampere::new(1e-6);
//! let curve = VbeCurve::from_points((0..8).map(|i| {
//!     let t = Kelvin::new(223.15 + 25.0 * i as f64);
//!     (t, vbe_for_current(&law, ic, t), ic)
//! }))?;
//! let fit = fit_eg_xti(&curve, 3)?;
//! assert!((fit.eg.value() - 1.1324).abs() < 1e-6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Run the paper's experiments with the `repro` binary:
//!
//! ```text
//! cargo run -p icvbe-repro --bin repro            # everything
//! cargo run -p icvbe-repro --bin repro fig6 table1
//! ```

#![deny(missing_docs)]

pub use icvbe_bandgap as bandgap;
pub use icvbe_campaign as campaign;
pub use icvbe_core as core;
pub use icvbe_devphys as devphys;
pub use icvbe_instrument as instrument;
pub use icvbe_numerics as numerics;
pub use icvbe_repro as repro;
pub use icvbe_serve as serve;
pub use icvbe_spice as spice;
pub use icvbe_thermal as thermal;
pub use icvbe_trace as trace;
pub use icvbe_units as units;
