//! Property-based tests on the core invariants, spanning crates.

use icvbe::core::bestfit::fit_eg_xti;
use icvbe::core::data::VbeCurve;
use icvbe::core::meijer::{extract, MeijerMeasurement, MeijerPoint};
use icvbe::core::tempcomp::{temperature_from_dvbe, PtatPair};
use icvbe::devphys::saturation::SpiceIsLaw;
use icvbe::devphys::vbe::vbe_for_current;
use icvbe::numerics::lu;
use icvbe::numerics::Matrix;
use icvbe::spice::limexp::limexp;
use icvbe::units::{Ampere, Celsius, ElectronVolt, Kelvin, Volt};
use proptest::prelude::*;

fn law(eg: f64, xti: f64) -> SpiceIsLaw {
    SpiceIsLaw::new(
        Ampere::new(2e-17),
        Kelvin::new(298.15),
        ElectronVolt::new(eg),
        xti,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Best fit inverts the forward model for ANY physical (EG, XTI).
    #[test]
    fn bestfit_roundtrips_any_card(
        eg in 0.9_f64..1.3,
        xti in 0.5_f64..6.0,
        ic_exp in -8.0_f64..-5.0,
    ) {
        let ic = Ampere::new(10f64.powf(ic_exp));
        let law = law(eg, xti);
        let curve = VbeCurve::from_points((0..8).map(|i| {
            let t = Kelvin::new(223.15 + 25.0 * i as f64);
            (t, vbe_for_current(&law, ic, t), ic)
        })).unwrap();
        let fit = fit_eg_xti(&curve, 3).unwrap();
        prop_assert!((fit.eg.value() - eg).abs() < 1e-6, "EG {} vs {}", fit.eg.value(), eg);
        prop_assert!((fit.xti - xti).abs() < 1e-3, "XTI {} vs {}", fit.xti, xti);
    }

    /// The analytical method inverts the forward model for any card and
    /// any admissible temperature triple.
    #[test]
    fn meijer_roundtrips_any_card(
        eg in 0.9_f64..1.3,
        xti in 0.5_f64..6.0,
        t1 in 230.0_f64..270.0,
        dt in 30.0_f64..70.0,
    ) {
        let ic = Ampere::new(1e-6);
        let law = law(eg, xti);
        let p = |t: f64| MeijerPoint {
            temperature: Kelvin::new(t),
            vbe: vbe_for_current(&law, ic, Kelvin::new(t)),
            ic,
        };
        let m = MeijerMeasurement {
            cold: p(t1),
            reference: p(t1 + dt),
            hot: p(t1 + 2.0 * dt),
        };
        let fit = extract(&m).unwrap();
        prop_assert!((fit.eg.value() - eg).abs() < 1e-8);
        prop_assert!((fit.xti - xti).abs() < 1e-5);
    }

    /// The dVBE thermometer inverts its own forward law at any area ratio
    /// and temperature.
    #[test]
    fn dvbe_thermometer_roundtrips(
        ratio in 1.5_f64..64.0,
        t in 150.0_f64..450.0,
        t_ref in 250.0_f64..350.0,
    ) {
        let pair = PtatPair::new(ratio).unwrap();
        let computed = temperature_from_dvbe(
            pair.ideal_dvbe(Kelvin::new(t)),
            pair.ideal_dvbe(Kelvin::new(t_ref)),
            Kelvin::new(t_ref),
        ).unwrap();
        prop_assert!((computed.value() - t).abs() < 1e-9);
    }

    /// LU solve satisfies A x = b for random well-conditioned systems.
    #[test]
    fn lu_solves_random_diagonally_dominant_systems(
        seed in 0u64..1000,
        n in 2usize..8,
    ) {
        // Deterministic pseudo-random fill from the seed.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                let v = next();
                a[(i, j)] = v;
                row_sum += v.abs();
            }
            a[(i, i)] += row_sum + 1.0; // diagonal dominance
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = lu::solve(&a, &b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (p, q) in ax.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }

    /// limexp is finite, positive, monotone and has a monotone derivative
    /// for every argument.
    #[test]
    fn limexp_is_well_behaved(x in -700.0_f64..1e6) {
        let (v, d) = limexp(x);
        prop_assert!(v.is_finite() && d.is_finite());
        prop_assert!(v > 0.0 && d > 0.0);
        let (v2, _) = limexp(x + 1.0);
        prop_assert!(v2 > v);
    }

    /// Celsius/Kelvin conversions round-trip.
    #[test]
    fn temperature_conversions_roundtrip(c in -273.0_f64..1000.0) {
        let t = Celsius::new(c).to_kelvin().to_celsius();
        prop_assert!((t.value() - c).abs() < 1e-9);
    }

    /// Eq.-1 saturation current is monotone in temperature for physical
    /// parameters.
    #[test]
    fn is_law_is_monotone(
        eg in 0.5_f64..1.5,
        xti in 0.0_f64..6.0,
        t in 200.0_f64..400.0,
    ) {
        let l = law(eg, xti);
        let a = l.is_at(Kelvin::new(t)).value();
        let b = l.is_at(Kelvin::new(t + 1.0)).value();
        prop_assert!(b > a, "IS not increasing at {t} K (eg {eg}, xti {xti})");
    }

    /// VBE curves reject unphysical data regardless of values.
    #[test]
    fn vbe_curve_rejects_nonpositive_currents(ic in -1.0_f64..0.0) {
        let r = VbeCurve::from_points([
            (Kelvin::new(250.0), Volt::new(0.7), Ampere::new(1e-6)),
            (Kelvin::new(300.0), Volt::new(0.6), Ampere::new(ic)),
            (Kelvin::new(350.0), Volt::new(0.5), Ampere::new(1e-6)),
        ]);
        prop_assert!(r.is_err());
    }
}
