//! Randomized property tests on the core invariants, spanning crates.
//! Driven by the in-tree seeded PRNG (hermetic build: no `proptest`).

use icvbe::core::bestfit::fit_eg_xti;
use icvbe::core::data::VbeCurve;
use icvbe::core::meijer::{extract, MeijerMeasurement, MeijerPoint};
use icvbe::core::tempcomp::{temperature_from_dvbe, PtatPair};
use icvbe::devphys::saturation::SpiceIsLaw;
use icvbe::devphys::vbe::vbe_for_current;
use icvbe::numerics::lu;
use icvbe::numerics::rng::Xoshiro256PlusPlus;
use icvbe::numerics::Matrix;
use icvbe::spice::limexp::limexp;
use icvbe::units::{Ampere, Celsius, ElectronVolt, Kelvin, Volt};

const CASES: usize = 64;

fn law(eg: f64, xti: f64) -> SpiceIsLaw {
    SpiceIsLaw::new(
        Ampere::new(2e-17),
        Kelvin::new(298.15),
        ElectronVolt::new(eg),
        xti,
    )
}

/// Best fit inverts the forward model for ANY physical (EG, XTI).
#[test]
fn bestfit_roundtrips_any_card() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x1CBE_0001);
    for _ in 0..CASES {
        let eg = rng.uniform(0.9, 1.3);
        let xti = rng.uniform(0.5, 6.0);
        let ic = Ampere::new(10f64.powf(rng.uniform(-8.0, -5.0)));
        let law = law(eg, xti);
        let curve = VbeCurve::from_points((0..8).map(|i| {
            let t = Kelvin::new(223.15 + 25.0 * i as f64);
            (t, vbe_for_current(&law, ic, t), ic)
        }))
        .unwrap();
        let fit = fit_eg_xti(&curve, 3).unwrap();
        assert!(
            (fit.eg.value() - eg).abs() < 1e-6,
            "EG {} vs {}",
            fit.eg.value(),
            eg
        );
        assert!((fit.xti - xti).abs() < 1e-3, "XTI {} vs {}", fit.xti, xti);
    }
}

/// The analytical method inverts the forward model for any card and any
/// admissible temperature triple.
#[test]
fn meijer_roundtrips_any_card() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x1CBE_0002);
    for _ in 0..CASES {
        let eg = rng.uniform(0.9, 1.3);
        let xti = rng.uniform(0.5, 6.0);
        let t1 = rng.uniform(230.0, 270.0);
        let dt = rng.uniform(30.0, 70.0);
        let ic = Ampere::new(1e-6);
        let law = law(eg, xti);
        let p = |t: f64| MeijerPoint {
            temperature: Kelvin::new(t),
            vbe: vbe_for_current(&law, ic, Kelvin::new(t)),
            ic,
        };
        let m = MeijerMeasurement {
            cold: p(t1),
            reference: p(t1 + dt),
            hot: p(t1 + 2.0 * dt),
        };
        let fit = extract(&m).unwrap();
        assert!((fit.eg.value() - eg).abs() < 1e-8);
        assert!((fit.xti - xti).abs() < 1e-5);
    }
}

/// The dVBE thermometer inverts its own forward law at any area ratio and
/// temperature.
#[test]
fn dvbe_thermometer_roundtrips() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x1CBE_0003);
    for _ in 0..CASES {
        let ratio = rng.uniform(1.5, 64.0);
        let t = rng.uniform(150.0, 450.0);
        let t_ref = rng.uniform(250.0, 350.0);
        let pair = PtatPair::new(ratio).unwrap();
        let computed = temperature_from_dvbe(
            pair.ideal_dvbe(Kelvin::new(t)),
            pair.ideal_dvbe(Kelvin::new(t_ref)),
            Kelvin::new(t_ref),
        )
        .unwrap();
        assert!((computed.value() - t).abs() < 1e-9);
    }
}

/// LU solve satisfies A x = b for random well-conditioned systems.
#[test]
fn lu_solves_random_diagonally_dominant_systems() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x1CBE_0004);
    for _ in 0..CASES {
        let n = 2 + rng.below(6) as usize;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                let v = rng.uniform(-1.0, 1.0);
                a[(i, j)] = v;
                row_sum += v.abs();
            }
            a[(i, i)] += row_sum + 1.0; // diagonal dominance
        }
        let b: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let x = lu::solve(&a, &b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (p, q) in ax.iter().zip(&b) {
            assert!((p - q).abs() < 1e-9);
        }
    }
}

/// limexp is finite, positive, monotone and has a monotone derivative for
/// every argument.
#[test]
fn limexp_is_well_behaved() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x1CBE_0005);
    for _ in 0..CASES {
        let x = rng.uniform(-700.0, 1e6);
        let (v, d) = limexp(x);
        assert!(v.is_finite() && d.is_finite());
        assert!(v > 0.0 && d > 0.0);
        let (v2, _) = limexp(x + 1.0);
        assert!(v2 > v);
    }
}

/// Celsius/Kelvin conversions round-trip.
#[test]
fn temperature_conversions_roundtrip() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x1CBE_0006);
    for _ in 0..CASES {
        let c = rng.uniform(-273.0, 1000.0);
        let t = Celsius::new(c).to_kelvin().to_celsius();
        assert!((t.value() - c).abs() < 1e-9);
    }
}

/// Eq.-1 saturation current is monotone in temperature for physical
/// parameters.
#[test]
fn is_law_is_monotone() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x1CBE_0007);
    for _ in 0..CASES {
        let eg = rng.uniform(0.5, 1.5);
        let xti = rng.uniform(0.0, 6.0);
        let t = rng.uniform(200.0, 400.0);
        let l = law(eg, xti);
        let a = l.is_at(Kelvin::new(t)).value();
        let b = l.is_at(Kelvin::new(t + 1.0)).value();
        assert!(b > a, "IS not increasing at {t} K (eg {eg}, xti {xti})");
    }
}

/// VBE curves reject unphysical data regardless of values.
#[test]
fn vbe_curve_rejects_nonpositive_currents() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x1CBE_0008);
    for _ in 0..CASES {
        let ic = rng.uniform(-1.0, 0.0);
        let r = VbeCurve::from_points([
            (Kelvin::new(250.0), Volt::new(0.7), Ampere::new(1e-6)),
            (Kelvin::new(300.0), Volt::new(0.6), Ampere::new(ic)),
            (Kelvin::new(350.0), Volt::new(0.5), Ampere::new(1e-6)),
        ]);
        assert!(r.is_err());
    }
}
