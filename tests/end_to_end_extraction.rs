//! End-to-end integration: virtual die → virtual bench → temperature
//! computation → analytical extraction.

use icvbe::core::meijer::{extract, MeijerMeasurement, MeijerPoint};
use icvbe::core::tempcomp::{temperature_from_dvbe_corrected, PairCurrents};
use icvbe::instrument::bench::{PairCampaignPoint, TestStructureBench};
use icvbe::instrument::montecarlo::{DieSample, SampleFactory};
use icvbe::units::{Ampere, Celsius, Kelvin};

fn campaign(bench: &mut TestStructureBench, sample: &DieSample) -> Vec<PairCampaignPoint> {
    bench
        .run_pair_campaign(
            sample,
            Ampere::new(1e-6),
            &[-25.0, 25.0, 75.0].map(Celsius::new),
        )
        .expect("campaign must complete")
}

fn computed_temps(pts: &[PairCampaignPoint]) -> (Kelvin, Kelvin) {
    let refp = &pts[1];
    let compute = |p: &PairCampaignPoint| {
        let x = PairCurrents {
            ica_t: p.ic_a,
            icb_t: p.ic_b,
            ica_ref: refp.ic_a,
            icb_ref: refp.ic_b,
        }
        .x_factor()
        .expect("positive currents");
        temperature_from_dvbe_corrected(p.dvbe, refp.dvbe, refp.sensor_temperature, x)
            .expect("valid dvbe")
    };
    (compute(&pts[0]), compute(&pts[2]))
}

fn meijer_of(pts: &[PairCampaignPoint], temps: [Kelvin; 3]) -> MeijerMeasurement {
    let mk = |p: &PairCampaignPoint, t: Kelvin| MeijerPoint {
        temperature: t,
        vbe: p.vbe_a,
        ic: p.ic_a,
    };
    MeijerMeasurement {
        cold: mk(&pts[0], temps[0]),
        reference: mk(&pts[1], temps[1]),
        hot: mk(&pts[2], temps[2]),
    }
}

#[test]
fn ideal_bench_recovers_ground_truth_exactly() {
    // No self-heating, no instrument error, nominal die: the analytical
    // method must land on the card parameters to high precision.
    let mut bench = TestStructureBench::ideal(7);
    let sample = DieSample::nominal(0);
    let pts = campaign(&mut bench, &sample);
    let m = meijer_of(
        &pts,
        [
            pts[0].sensor_temperature,
            pts[1].sensor_temperature,
            pts[2].sensor_temperature,
        ],
    );
    let fit = extract(&m).expect("extraction");
    assert!(
        (fit.eg.value() - sample.card.eg.value()).abs() < 2e-4,
        "EG {} vs truth {}",
        fit.eg.value(),
        sample.card.eg.value()
    );
    assert!(
        (fit.xti - sample.card.xti).abs() < 0.05,
        "XTI {} vs truth {}",
        fit.xti,
        sample.card.xti
    );
}

#[test]
fn computed_temperatures_track_the_die_modulo_common_scale() {
    // On the paper bench, the dVBE-computed extremes must be proportional
    // to the true die temperatures with the single common factor
    // sensor(T2)/die(T2).
    let mut bench = TestStructureBench::paper_bench(11);
    let sample = SampleFactory::seeded(4).draw(1);
    let pts = campaign(&mut bench, &sample);
    let (t1c, t3c) = computed_temps(&pts);
    let s = pts[1].sensor_temperature.value() / pts[1].die_temperature.value();
    let t1_expected = s * pts[0].die_temperature.value();
    let t3_expected = s * pts[2].die_temperature.value();
    assert!(
        (t1c.value() - t1_expected).abs() < 0.6,
        "T1 computed {} vs {}",
        t1c.value(),
        t1_expected
    );
    assert!(
        (t3c.value() - t3_expected).abs() < 0.6,
        "T3 computed {} vs {}",
        t3c.value(),
        t3_expected
    );
}

#[test]
fn computed_temperature_extraction_keeps_eg_closer_than_its_xti_scale_shift() {
    // Common-mode scale s leaves EG invariant and maps XTI -> XTI / s; the
    // extraction with computed temperatures must show exactly that
    // signature (EG within a few tens of meV, XTI clearly shifted).
    let mut bench = TestStructureBench::paper_bench(23);
    let sample = SampleFactory::seeded(5).draw(1);
    let pts = campaign(&mut bench, &sample);
    let (t1c, t3c) = computed_temps(&pts);
    let fit = extract(&meijer_of(&pts, [t1c, pts[1].sensor_temperature, t3c])).expect("extraction");
    let truth = sample.card;
    assert!(
        (fit.eg.value() - truth.eg.value()).abs() < 0.05,
        "EG {} vs truth {}",
        fit.eg.value(),
        truth.eg.value()
    );
    // The common-scale factor is sensor/die < 1, so XTI moves visibly.
    assert!(
        (fit.xti - truth.xti).abs() > 0.05,
        "XTI should carry the scale shift, got {}",
        fit.xti
    );
}

#[test]
fn extraction_is_deterministic_across_identical_benches() {
    let sample = SampleFactory::seeded(9).draw(1);
    let run = || {
        let mut bench = TestStructureBench::paper_bench(42);
        let pts = campaign(&mut bench, &sample);
        let (t1c, t3c) = computed_temps(&pts);
        extract(&meijer_of(&pts, [t1c, pts[1].sensor_temperature, t3c])).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.eg, b.eg);
    assert_eq!(a.xti, b.xti);
}

#[test]
fn five_sample_lot_produces_five_distinct_extractions() {
    let lot = SampleFactory::seeded(2002).draw_lot(5);
    let mut egs = Vec::new();
    for sample in &lot {
        let mut bench = TestStructureBench::paper_bench(1000 + sample.id as u64);
        let pts = campaign(&mut bench, sample);
        let (t1c, t3c) = computed_temps(&pts);
        let fit = extract(&meijer_of(&pts, [t1c, pts[1].sensor_temperature, t3c])).unwrap();
        egs.push(fit.eg.value());
    }
    assert_eq!(egs.len(), 5);
    for w in egs.windows(2) {
        assert_ne!(w[0], w[1], "two samples extracted identically");
    }
}
