//! Headline-shape assertions across the reproduced evaluation: the "who
//! wins, by roughly what factor" facts of each table and figure.

use icvbe::bandgap::vref::CurveShape;
use icvbe::repro::{fig1, fig2, fig6, fig8, sensitivity, table1};

#[test]
fn fig1_headline_gaps() {
    let r = fig1::run();
    // EG5(0) - EG2(0) ~ 22 meV.
    assert!((r.eg5_eg2_zero_gap * 1e3 - 21.7).abs() < 1.0);
    // The linearized extrapolation overshoots by tens of meV.
    assert!(r.linearization_overshoot * 1e3 > 10.0);
}

#[test]
fn fig2_pair_is_ptat() {
    let r = fig2::run().unwrap();
    assert!(r.r_squared > 0.9999);
    assert!((r.slope / r.ideal_slope - 1.0).abs() < 0.02);
}

#[test]
fn fig6_line_geometry() {
    let r = fig6::run().unwrap();
    // C1 (best fit) and C2 (analytical, same temperatures) coincide...
    assert!(r.c1_c2_offset < 4e-3);
    // ...while C3 (computed die temperatures) is clearly separated.
    assert!(r.c3_c2_offset > 5e-3);
    // All lines are falling EG(XTI) trade-offs.
    assert!(r.c1.slope() < 0.0 && r.c2.slope() < 0.0 && r.c3.slope() < 0.0);
}

#[test]
fn table1_sign_pattern() {
    let r = table1::run().unwrap();
    assert_eq!(r.rows.len(), 5);
    for row in &r.rows {
        assert!(row.gap_cold < 0.0, "cold gap must be negative");
        assert!(row.gap_hot > 0.0, "hot gap must be positive");
        assert!(row.gap_cold.abs() > 1.0 && row.gap_cold.abs() < 9.0);
        assert!(row.gap_hot.abs() > 1.0 && row.gap_hot.abs() < 11.0);
    }
}

#[test]
fn fig8_model_card_ranking() {
    let r = fig8::run().unwrap();
    // The paper's verdict: the analytically extracted card (S1) follows
    // the silicon; the best-fit card (S0) predicts a bell it doesn't have.
    assert_eq!(r.s0_shape, CurveShape::Bell);
    assert!(r.s1_deviation < r.s0_deviation / 2.0);
    // The silicon rises at the hot end.
    let n = r.measured.vref.len();
    assert!(r.measured.vref[n - 1].value() > r.measured.vref[n - 3].value());
}

#[test]
fn sensitivity_claims_hold() {
    let r = sensitivity::run().unwrap();
    // 1% VBE error is amplified into percent-scale EG error.
    assert!(r.vbe_study.eg_relative_error > 0.002);
    // dT2 = 5 K is benign by comparison.
    assert!(r.t2_study.eg_relative_error < r.vbe_study.eg_relative_error);
    // The bias-drift coefficient is sub-millivolt.
    assert!(r.drift_a_volts < 1e-3);
}
