//! Cross-crate physics consistency: the closed forms of `icvbe-devphys`
//! and the circuit solutions of `icvbe-spice` must describe the same
//! device.

use icvbe::bandgap::card::st_bicmos_pnp;
use icvbe::devphys::vbe::{eq13_from_spice_law, vbe_for_current};
use icvbe::spice::bjt::{Bjt, Polarity};
use icvbe::spice::element::CurrentSource;
use icvbe::spice::netlist::Circuit;
use icvbe::spice::solver::{solve_dc, DcOptions};
use icvbe::spice::sweep::{temperature_grid, temperature_sweep};
use icvbe::units::{Ampere, Kelvin, Volt};

/// Builds a diode-connected PNP biased by an ideal current source and
/// returns the solved VEB.
fn circuit_vbe(ic: Ampere, temperature: Kelvin) -> f64 {
    let mut ckt = Circuit::new();
    let gnd = Circuit::ground();
    let e = ckt.node("e");
    ckt.add(CurrentSource::new("IB", gnd, e, ic));
    ckt.add(Bjt::new("Q", gnd, gnd, e, Polarity::Pnp, st_bicmos_pnp()).unwrap());
    let op = solve_dc(&ckt, temperature, &DcOptions::default(), None).unwrap();
    op.voltage(e).value()
}

#[test]
fn solved_vbe_matches_closed_form_within_base_current_error() {
    // The closed form inverts IC = IS e^{v/vt}; the circuit forces the
    // EMITTER current, so the two differ by ~vt/BF plus high-injection
    // terms — a millivolt-scale, well-understood gap.
    let card = st_bicmos_pnp();
    let law = card.is_law();
    for t in [223.15, 298.15, 373.15] {
        let t = Kelvin::new(t);
        let solved = circuit_vbe(Ampere::new(1e-6), t);
        let closed = vbe_for_current(&law, Ampere::new(1e-6), t).value();
        assert!(
            (solved - closed).abs() < 3e-3,
            "at {t}: solved {solved} vs closed {closed}"
        );
    }
}

#[test]
fn eq13_model_predicts_the_circuit_over_the_full_range() {
    // Anchor eq. 13 at 25 °C using the *circuit's* own reference VBE and
    // check the prediction across -50..125 °C.
    let card = st_bicmos_pnp();
    let ic = Ampere::new(1e-6);
    let t0 = Kelvin::new(298.15);
    let mut model = eq13_from_spice_law(&card.is_law(), ic, t0);
    // Re-anchor on the circuit value to absorb the base-current offset.
    let anchor = circuit_vbe(ic, t0);
    model = icvbe::devphys::vbe::Eq13Model::new(model.eg(), model.xti(), t0, Volt::new(anchor));
    for t in [223.15, 248.15, 273.15, 323.15, 348.15, 398.15] {
        let t = Kelvin::new(t);
        let solved = circuit_vbe(ic, t);
        let predicted = model.vbe(t, 1.0).value();
        assert!(
            (solved - predicted).abs() < 1.5e-3,
            "at {t}: solved {solved} vs eq13 {predicted}"
        );
    }
}

#[test]
fn temperature_sweep_matches_pointwise_solves() {
    let mut ckt = Circuit::new();
    let gnd = Circuit::ground();
    let e = ckt.node("e");
    ckt.add(CurrentSource::new("IB", gnd, e, Ampere::new(1e-6)));
    ckt.add(Bjt::new("Q", gnd, gnd, e, Polarity::Pnp, st_bicmos_pnp()).unwrap());
    let temps = temperature_grid(Kelvin::new(223.15), Kelvin::new(398.15), 8);
    let swept = temperature_sweep(&ckt, &temps, &DcOptions::default()).unwrap();
    for (t, op) in temps.iter().zip(&swept) {
        let single = solve_dc(&ckt, *t, &DcOptions::default(), None).unwrap();
        // Both solves satisfy the 1e-9 A residual spec, which allows
        // ~2e-5 V of play at the 1 uA diode conductance.
        assert!(
            (op.voltage(e).value() - single.voltage(e).value()).abs() < 5e-5,
            "warm-started and cold solves disagree at {t}"
        );
    }
}

#[test]
fn spice_is_law_drives_the_circuit_vbe_slope() {
    // dVBE/dT of the solved circuit should match the eq.-13 analytic slope
    // to a few percent.
    let card = st_bicmos_pnp();
    let ic = Ampere::new(1e-6);
    let t0 = Kelvin::new(298.15);
    let model = eq13_from_spice_law(&card.is_law(), ic, t0);
    let h = 5.0;
    let circuit_slope = (circuit_vbe(ic, Kelvin::new(298.15 + h))
        - circuit_vbe(ic, Kelvin::new(298.15 - h)))
        / (2.0 * h);
    let model_slope = model.slope(t0);
    assert!(
        (circuit_slope - model_slope).abs() / model_slope.abs() < 0.05,
        "circuit {circuit_slope} vs model {model_slope}"
    );
}
